"""Command-line interface: ``python -m repro <command>``.

Drives the full pipeline from files on disk, so a site can be managed
without writing Python:

.. code-block:: console

    $ python -m repro build --data pubs.bib --data me.ddl \\
          --query site.struql --templates templates/ --out www/
    $ python -m repro schema --query site.struql [--dot]
    $ python -m repro check  --query site.struql
    $ python -m repro explain --query site.struql --data pubs.bib \\
          [--analyze] [--json]
    $ python -m repro diff   --query site.struql --data pubs.bib \\
          --old-site site.json
    $ python -m repro trace [--quiet] [--metrics-out obs.json] \\
          build --data ...
    $ python -m repro monitor build --data ... --out dash/
    $ python -m repro serve --port 8080 build --data ... \\
          --query site.struql --templates templates/
    $ python -m repro why PersonPage_p1_.html --data pubs.bib \\
          --query site.struql --templates templates/
    $ python -m repro bench compare OLD.json NEW.json
    $ python -m repro slo check serve-snapshot/snapshot.json \\
          [--config slo.toml] [--window 3600]

Data files are wrapped by extension:

=========  ==========================================================
suffix     wrapper
=========  ==========================================================
.ddl       the STRUDEL data-definition language (Fig 2)
.bib       BibTeX
.csv       relational (table named after the file; ``login``/``id``
           columns become row keys when present)
.rec       structured records (collection named after the file)
.xml       XML
.html      HTML page (several ``--data`` pages share one graph)
.json      a serialized graph (``graph_to_json`` output)
=========  ==========================================================

Several ``--data`` files merge into one data graph (shared oids unify).
Template files ``<Name>.tmpl`` register under ``Name`` as pages;
``<Name>.component.tmpl`` register as embedded components.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import sys

from repro.ddl import parse_ddl
from repro.errors import StrudelError
from repro.graph.model import Graph
from repro.graph.serialization import graph_from_json, graph_to_json
from repro.obs import trace as obs
from repro.site.schema import build_site_schema
from repro.site.verify import ReachableFromRoot, Verifier
from repro.struql.analysis import analyze
from repro.struql.evaluator import QueryEngine
from repro.struql.parser import parse_query
from repro.templates.generator import TemplateSet
from repro.wrappers.bibtex import BibTexWrapper
from repro.wrappers.html_wrapper import HtmlWrapper
from repro.wrappers.relational import RelationalWrapper
from repro.wrappers.structured_file import StructuredFileWrapper
from repro.wrappers.xml_wrapper import XmlWrapper


def _table_name(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0].capitalize()


#: File suffix -> wrapper kind recorded in source provenance stamps.
_SUFFIX_KINDS = {
    ".ddl": "ddl", ".strudel": "ddl", ".bib": "bibtex",
    ".csv": "relational", ".rec": "structured-file", ".xml": "xml",
    ".html": "html", ".htm": "html", ".json": "graph-json",
}


def _stamp_file_source(path: str, graph: Graph) -> None:
    """Record a fetch stamp (and lineage membership) for one file."""
    from repro.mediator.sources import record_fetch
    from repro.obs.lineage import get_lineage
    name = os.path.basename(path)
    suffix = os.path.splitext(path)[1].lower()
    try:
        with open(path, "rb") as handle:
            digest = hashlib.sha1(handle.read()).hexdigest()[:16]
    except OSError:
        digest = ""
    record_fetch(name, _SUFFIX_KINDS.get(suffix, "file"), digest,
                 graph.node_count, graph.edge_count)
    lineage = get_lineage()
    if lineage.enabled:
        lineage.record_source_nodes(name, graph)


def load_data_file(path: str) -> Graph:
    """Wrap one data file by extension."""
    suffix = os.path.splitext(path)[1].lower()
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    name = _table_name(path)
    if suffix in (".ddl", ".strudel"):
        return parse_ddl(text, name)
    if suffix == ".bib":
        return BibTexWrapper().wrap(text, name)
    if suffix == ".csv":
        header = text.splitlines()[0].split(",") if text.strip() else []
        key = next((c for c in ("login", "id", "key")
                    if c in [h.strip() for h in header]), None)
        wrapper = RelationalWrapper(
            key_columns={name: key} if key else {})
        return wrapper.wrap_tables({name: text}, name)
    if suffix == ".rec":
        return StructuredFileWrapper(collection=name).wrap(text, name)
    if suffix == ".xml":
        return XmlWrapper().wrap(text, name)
    if suffix in (".html", ".htm"):
        return HtmlWrapper().wrap_pages(
            {os.path.basename(path): text}, name)
    if suffix == ".json":
        return graph_from_json(text)
    raise StrudelError(f"no wrapper for {path!r} (suffix {suffix!r})")


def load_data(paths: list[str], graph_name: str) -> Graph:
    """Wrap and merge all ``--data`` files into one graph."""
    recorder = obs.get_recorder()
    merged = Graph(graph_name)
    html_pages: dict[str, str] = {}
    with recorder.span("mediator.load", files=len(paths)) as span:
        for path in paths:
            if os.path.splitext(path)[1].lower() in (".html", ".htm"):
                with open(path, encoding="utf-8") as handle:
                    html_pages[os.path.basename(path)] = handle.read()
                continue
            with recorder.span("mediator.fetch",
                               source=os.path.basename(path)):
                wrapped = load_data_file(path)
                merged.import_graph(wrapped)
                _stamp_file_source(path, wrapped)
                obs.emit_event("info", "mediator.fetch",
                               source=os.path.basename(path))
        if html_pages:
            from repro.mediator.sources import record_fetch
            from repro.obs.lineage import get_lineage, \
                graph_content_hash
            with recorder.span("mediator.fetch", source="html-pages"):
                wrapped = HtmlWrapper().wrap_pages(html_pages)
                merged.import_graph(wrapped)
                record_fetch("html-pages", "html",
                             graph_content_hash(wrapped),
                             wrapped.node_count, wrapped.edge_count)
                lineage = get_lineage()
                if lineage.enabled:
                    lineage.record_source_nodes("html-pages", wrapped)
        span.set(nodes=merged.node_count, edges=merged.edge_count)
    return merged


def load_templates(directory: str) -> TemplateSet:
    """Register every ``*.tmpl`` file in ``directory``."""
    templates = TemplateSet()
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".tmpl"):
            continue
        stem = filename[:-len(".tmpl")]
        as_page = True
        if stem.endswith(".component"):
            stem = stem[:-len(".component")]
            as_page = False
        with open(os.path.join(directory, filename),
                  encoding="utf-8") as handle:
            templates.add(stem, handle.read(), as_page=as_page)
    return templates


def _read_query(path: str):
    with open(path, encoding="utf-8") as handle:
        return parse_query(handle.read())


# --------------------------------------------------------------------------
# Commands


def cmd_build(args: argparse.Namespace) -> int:
    from repro.obs.lineage import (
        disable_lineage,
        enable_lineage,
        freshness_report,
        update_freshness_gauges,
    )
    from repro.obs.lineage import get_lineage as _get_lineage
    lineage_on = bool(getattr(args, "lineage", False)
                      or getattr(args, "max_age", None) is not None)
    # An outer command (repro monitor --max-age ...) may already be
    # recording; stamp into its index and leave its lifetime alone.
    already_on = _get_lineage().enabled
    if lineage_on and not already_on:
        enable_lineage()
    try:
        return _run_build(args)
    finally:
        if lineage_on:
            if args.max_age is not None:
                report = freshness_report(max_age=args.max_age)
                update_freshness_gauges(
                    obs.get_recorder().metrics, max_age=args.max_age)
                stale = report["stale_pages"]
                print(f"freshness: {len(report['sources'])} sources, "
                      f"{len(stale)} stale page(s) past "
                      f"{args.max_age:.0f}s")
                for url in stale[:10]:
                    print(f"  stale: {url}")
            if not already_on:
                disable_lineage()


def _run_build(args: argparse.Namespace) -> int:
    query = _read_query(args.query)
    data = load_data(args.data, query.input_name)
    engine = QueryEngine(optimizer=args.optimizer)
    result = engine.evaluate(query, data)
    site = result.output
    print(f"data graph: {data.node_count} objects, "
          f"{data.edge_count} edges")
    print(f"site graph: {site.node_count} nodes, {site.edge_count} links")
    if args.verify_root:
        report = Verifier([ReachableFromRoot(args.verify_root)]).verify(
            graph=site, schema=build_site_schema(query))
        print(report)
        if not report.ok:
            return 1
    if args.site_json:
        with open(args.site_json, "w", encoding="utf-8") as handle:
            handle.write(graph_to_json(site))
        print(f"site graph saved to {args.site_json}")
    if args.site_dot:
        from repro.graph.dot import graph_to_dot
        with open(args.site_dot, "w", encoding="utf-8") as handle:
            handle.write(graph_to_dot(site, max_nodes=200))
        print(f"site graph (dot) saved to {args.site_dot}")
    if args.templates:
        from repro.site.buildcache import (
            BuildCache,
            DEFAULT_CACHE_DIRNAME,
            cached_generate,
            resolve_jobs,
        )
        from repro.templates.generator import HtmlGenerator
        templates = load_templates(args.templates)
        generator = HtmlGenerator(site, templates)
        jobs = resolve_jobs(args.jobs)
        cache = None
        if args.cache_dir or args.incremental:
            cache_dir = args.cache_dir or os.path.join(
                args.out, DEFAULT_CACHE_DIRNAME)
            cache = BuildCache(cache_dir)
        report = cached_generate(
            site, generator, templates, args.out, cache=cache,
            jobs=jobs, options={"optimizer": args.optimizer})
        print(f"{report.summary()} to {args.out}")
    return 0


def cmd_why(args: argparse.Namespace) -> int:
    """Print the backward derivation tree of one page (or oid).

    Rebuilds the site graph with lineage recording on, so every layer
    of the chain is resolvable: source record (file stamp or mediator
    source) -> mediator rule / query block -> Skolem function and
    binding args -> template.  ``TARGET`` is a page URL
    (``PersonPage_p1_.html``) or an oid display name
    (``PersonPage(p1)``); ``--list`` prints every page URL instead.
    """
    from repro.obs.lineage import lineage_recording, render_why
    from repro.site.builder import Website
    query = _read_query(args.query)
    with lineage_recording() as lineage:
        data = load_data(args.data, query.input_name)
        templates = load_templates(args.templates) \
            if args.templates else None
        site = Website(data, query, templates=templates,
                       engine=QueryEngine(optimizer=args.optimizer))
        site.build()
        site.generator().record_lineage()
        if args.list:
            try:
                for record in lineage.page_records():
                    print(f"{record.url}\t{record.oid}\t"
                          f"{record.template}")
            except BrokenPipeError:  # `repro why --list | head`
                devnull = os.open(os.devnull, os.O_WRONLY)
                os.dup2(devnull, sys.stdout.fileno())
            return 0
        if not args.target:
            print("error: why needs a TARGET page url or oid "
                  "(or --list)", file=sys.stderr)
            return 2
        document = site.why(args.target, max_age=args.max_age)
        if document is None:
            print(f"error: no lineage for {args.target!r} — not a "
                  "generated page url or known oid", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(document, indent=2))
        else:
            print(render_why(document))
        return 0


def cmd_schema(args: argparse.Namespace) -> int:
    schema = build_site_schema(_read_query(args.query))
    print(schema.to_dot(include_ns=args.ns) if args.dot
          else schema.render(include_ns=args.ns))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    query = _read_query(args.query)  # parse errors raise already
    warnings = analyze(query)
    if not warnings:
        print("query is range restricted: meaning is independent of "
              "the active domain")
        return 0
    for warning in warnings:
        print(f"warning: {warning}")
    return 2


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.site.diff import diff_graphs
    query = _read_query(args.query)
    data = load_data(args.data, query.input_name)
    with open(args.old_site, encoding="utf-8") as handle:
        old_site = graph_from_json(handle.read())
    new_site = QueryEngine().evaluate(query, data).output
    diff = diff_graphs(old_site, new_site)
    print(diff.summary())
    for node in sorted(diff.added_nodes, key=str):
        print(f"  + {node}")
    for node in sorted(diff.removed_nodes, key=str):
        print(f"  - {node}")
    return 0 if diff.empty else 3


def cmd_explain(args: argparse.Namespace) -> int:
    """EXPLAIN (and EXPLAIN ANALYZE) a StruQL query.

    Without ``--analyze`` the query is planned but never executed: each
    block shows its operator pipeline annotated with the chosen access
    path and estimated cardinality, plus the optimizer's step-by-step
    decision trace.  With ``--analyze`` the query runs and every
    operator reports estimated vs actual rows, wall milliseconds and
    index hits; est/actual divergences beyond 10x are flagged and
    emitted as ``struql.misestimate`` events.  ``--json`` prints the
    machine-readable document instead (the CI smoke-test shape).
    """
    from repro.obs.queries import explain_document, render_explain
    query = _read_query(args.query)
    data = load_data(args.data or [], query.input_name)
    engine = QueryEngine(optimizer=args.optimizer, decision_trace=True)
    if args.analyze:
        if query.params:
            print("error: --analyze cannot run a query with declared "
                  f"params ({', '.join(query.params)}); omit --analyze "
                  "for the plan", file=sys.stderr)
            return 2
        result = engine.evaluate(query, data)
    else:
        result = engine.plan_only(query, data)
    if args.json:
        print(json.dumps(explain_document(result, analyze=args.analyze),
                         indent=2))
    else:
        print(render_explain(result, analyze=args.analyze))
    return 0


def _check_wrapped(rest: list[str], name: str) -> str | None:
    """Validate a wrapped-command argument list; an error string or
    ``None``."""
    if not rest:
        return (f"error: {name} needs a command to run, e.g. "
                f"'repro {name} build ...'")
    if rest[0] in ("trace", "monitor", "serve"):
        return f"error: {name} cannot wrap {rest[0]!r}"
    return None


def cmd_trace(args: argparse.Namespace) -> int:
    """Run another command with the observability layer enabled.

    Prints the span tree, the hotspot profile and a metrics digest
    afterwards (``--quiet``: metrics digest only; ``--profile``:
    hotspot profile only; ``--json``: a machine-readable document —
    printed after the wrapped command's own output — holding the
    profile, plus metrics and events unless ``--profile`` narrows it).
    ``--metrics-out`` additionally writes the full JSON document
    (bench-compatible: the same shape ``BENCH_obs.json`` uses).  The
    wrapped command's exit code is propagated.
    """
    from repro.obs.export import (
        render_metrics,
        render_profile,
        render_tree,
        write_json,
    )
    from repro.obs.promexport import write_prometheus
    from repro.obs.trace import aggregate_profile
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    error = _check_wrapped(rest, "trace")
    if error:
        print(error, file=sys.stderr)
        return 2
    with obs.recording() as recorder:
        code = main(rest)
    print()
    if args.json:
        document: dict = {"profile": [
            entry.to_dict() for entry in aggregate_profile(recorder)]}
        if not args.profile:
            document["metrics"] = recorder.metrics.as_dict()
            document["events"] = recorder.events.to_dicts()
        print(json.dumps(document, indent=2))
    elif args.profile:
        print("== hotspots " + "=" * 51)
        print(render_profile(recorder))
    else:
        if not args.quiet:
            print("== trace " + "=" * 54)
            print(render_tree(recorder))
            print()
            print("== hotspots " + "=" * 51)
            print(render_profile(recorder))
            print()
        print("== metrics " + "=" * 52)
        print(render_metrics(recorder.metrics))
    try:
        if args.metrics_out:
            write_json(recorder, args.metrics_out)
            print(f"\nobservability JSON saved to {args.metrics_out}")
        if args.prom_out:
            write_prometheus(recorder.metrics, args.prom_out)
            print(f"Prometheus exposition saved to {args.prom_out}")
        if args.events_out:
            count = recorder.events.write_jsonl(args.events_out)
            print(f"{count} events saved to {args.events_out}")
    except OSError as exc:
        print(f"error: cannot write output: {exc}", file=sys.stderr)
        return code or 1
    return code


def _claim_last_flag(rest: list[str], flag: str) -> str | None:
    """Remove the last ``flag VALUE`` pair from ``rest``; the value."""
    for i in range(len(rest) - 2, -1, -1):
        if rest[i] == flag:
            value = rest[i + 1]
            del rest[i:i + 2]
            return value
    return None


def cmd_monitor(args: argparse.Namespace) -> int:
    """Run a command under observation, then publish the telemetry as a
    STRUDEL-generated dashboard site.

    The dashboard directory is ``--out`` given before the wrapped
    command; otherwise the *last* ``--out DIR`` pair anywhere in the
    command line is claimed for the dashboard (so
    ``repro monitor build --data ... --out DIR`` puts the dashboard in
    ``DIR``).  Alongside the HTML the directory gets ``metrics.prom``
    (Prometheus exposition) and ``events.jsonl``.  The wrapped
    command's exit code is propagated.
    """
    from repro.obs.promexport import write_prometheus
    from repro.sites.monitor import build_monitor_site
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    out_dir = args.out or _claim_last_flag(rest, "--out") or "monitor-www"
    error = _check_wrapped(rest, "monitor")
    if error:
        print(error, file=sys.stderr)
        return 2
    # With --max-age the wrapped command runs under lineage recording so
    # the dashboard's Freshness page can count stale pages, not just
    # source ages.
    lineage_on = args.max_age is not None
    if lineage_on:
        from repro.obs.lineage import enable_lineage
        enable_lineage()
    try:
        with obs.recording() as recorder:
            code = main(rest)
        site = build_monitor_site(recorder, max_age=args.max_age)
    finally:
        if lineage_on:
            from repro.obs.lineage import disable_lineage
            disable_lineage()
    os.makedirs(out_dir, exist_ok=True)
    pages = site.generate(out_dir)
    write_prometheus(recorder.metrics,
                     os.path.join(out_dir, "metrics.prom"))
    recorder.events.write_jsonl(os.path.join(out_dir, "events.jsonl"))
    print(f"\nmonitoring dashboard: {len(pages)} pages in {out_dir} "
          f"(start at Dashboard__.html)")
    return code


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a site dynamically behind the live telemetry HTTP plane.

    Wraps ``build``-style arguments the way ``trace``/``monitor`` wrap
    commands, but instead of materializing pages it mounts a
    :class:`~repro.site.server.DynamicSiteServer` behind a threaded
    HTTP front end (:mod:`repro.obs.http`): pages are computed at click
    time while ``/metrics``, ``/healthz``, ``/readyz`` and the
    ``/debug/*`` endpoints expose the live telemetry.  The socket is
    bound (and ``/healthz`` answers) before the data graph loads;
    ``/readyz`` flips to 200 once the site query is warmed.  A
    :class:`~repro.obs.slo.CanaryProber` then exercises a known page
    every ``--canary-interval`` seconds and each probe ticks the SLO
    evaluator (objectives from ``--slo-config`` or the stock set), so
    burn-rate alerts fire with zero organic traffic.  SIGINT or
    SIGTERM drain in-flight requests and flush a final metrics/events
    snapshot (including alert state) to ``--snapshot-dir``.
    """
    from repro.obs.http import TelemetryHTTPServer, serving_recorder
    from repro.site.server import DynamicSiteServer
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    error = _check_wrapped(rest, "serve")
    if error:
        print(error, file=sys.stderr)
        return 2
    if rest[0] != "build":
        print("error: serve wraps 'build' arguments (the command that "
              "names --data/--query/--templates), got "
              f"{rest[0]!r}", file=sys.stderr)
        return 2
    build_args = make_parser().parse_args(rest)
    if not build_args.templates:
        print("error: serve needs --templates to render pages",
              file=sys.stderr)
        return 2
    from repro.obs.lineage import disable_lineage, enable_lineage
    from repro.obs.slo import (CanaryProber, SLOConfig, SLOEvaluator,
                               load_slo_config, set_slo_evaluator)
    try:
        slo_config = (load_slo_config(args.slo_config)
                      if args.slo_config else SLOConfig())
    except (OSError, ValueError) as exc:
        print(f"error: bad --slo-config: {exc}", file=sys.stderr)
        return 2
    recorder = obs.enable(serving_recorder())
    enable_lineage()  # serve is the lineage plane's natural home
    try:
        plane = TelemetryHTTPServer(recorder, host=args.host,
                                    port=args.port,
                                    max_age=args.max_age)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        disable_lineage()
        obs.disable()
        return 1
    evaluator = SLOEvaluator(recorder, slos=slo_config.slos,
                             step=slo_config.step_s,
                             for_ticks=slo_config.for_ticks,
                             clear_ticks=slo_config.clear_ticks)
    plane.slo_evaluator = evaluator
    set_slo_evaluator(evaluator)
    print(f"serving on http://{args.host}:{plane.port}", flush=True)
    print("telemetry: /metrics /healthz /readyz /debug/traces "
          "/debug/events /debug/profile /debug/queries "
          "/debug/lineage /debug/matviews /debug/slo /debug/alerts",
          flush=True)
    thread = plane.start_background()
    plane.install_signal_handlers()
    try:
        query = _read_query(build_args.query)
        data = load_data(build_args.data, query.input_name)
        templates = load_templates(build_args.templates)
        site_server = DynamicSiteServer(
            query, data, templates,
            engine=QueryEngine(optimizer=build_args.optimizer))
        site_server.log.slow_warn_seconds = args.slow_ms / 1000.0
        plane.mount(site_server)
        roots = site_server.warm()
        plane.set_ready()
        interval = (slo_config.canary_interval_s
                    if args.canary_interval is None
                    else args.canary_interval)
        if interval > 0:
            # Each probe ends by ticking the evaluator, so alerting
            # works with zero organic traffic.
            canary = CanaryProber(site_server, recorder,
                                  interval=interval,
                                  evaluator=evaluator)
            plane.canary = canary
            canary.start()
            print(f"canary: probing every {interval:g}s "
                  f"({len(evaluator.slos)} SLOs)", flush=True)
        else:
            canary = None
            evaluator.start_background()
            print(f"canary: disabled (SLOs evaluated every "
                  f"{evaluator.series.step:g}s)", flush=True)
        print(f"ready: {roots} root page(s) over {data.node_count} "
              "objects", flush=True)
    except (StrudelError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        plane.request_shutdown()
        while thread.is_alive():
            thread.join(0.2)
        plane.server_close()
        set_slo_evaluator(None)
        disable_lineage()
        obs.disable()
        return 1
    # join() in a loop so SIGINT/SIGTERM handlers run in the main
    # thread while the accept loop owns the background thread.
    while thread.is_alive():
        thread.join(0.2)
    if canary is not None:
        canary.stop()
    evaluator.stop()
    evaluator.evaluate()  # one last judgement for the snapshot
    plane.server_close()  # drains in-flight handler threads
    plane.write_snapshot(args.snapshot_dir)
    print(f"shutdown: final snapshot in {args.snapshot_dir}",
          flush=True)
    set_slo_evaluator(None)
    disable_lineage()
    obs.disable()
    return 0


def _slo_document_from_prometheus(text: str, slos) -> dict:
    """Reconstruct a cumulative metrics document from a Prometheus
    dump, keyed back to the SLOs' flat metric names.

    Only the metrics the objectives actually read are recovered:
    counters from ``<name>_total`` samples, histograms from their
    ``_bucket``/``_count``/``_sum`` families.
    """
    from repro.obs.promexport import parse_prometheus, sanitize_name
    parsed = parse_prometheus(text)
    flat: dict[str, float] = {}
    bucket_families: dict[str, list] = {}
    for name, labels, value in parsed["samples"]:
        if name.endswith("_bucket") and "le" in labels:
            bucket_families.setdefault(
                name[: -len("_bucket")], []).append(
                    (labels["le"], value))
        else:
            flat[name] = value
    wanted = set()
    for slo in slos:
        for metric in (slo.total_metric, slo.bad_metric,
                       slo.latency_metric):
            if metric:
                wanted.add(metric)
    counters: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for metric in wanted:
        base = sanitize_name(metric)
        if f"{base}_total" in flat:
            counters[metric] = flat[f"{base}_total"]
        elif base in flat:
            counters[metric] = flat[base]
        family = bucket_families.get(base)
        if family:
            pairs = sorted(
                ((math.inf if le == "+Inf" else float(le), value)
                 for le, value in family),
                key=lambda pair: pair[0])
            histograms[metric] = {
                "count": int(flat.get(f"{base}_count",
                                      pairs[-1][1])),
                "sum": flat.get(f"{base}_sum", 0.0),
                "buckets": [
                    ["+Inf" if math.isinf(bound) else bound, value]
                    for bound, value in pairs],
            }
    return {"counters": counters, "gauges": {},
            "histograms": histograms}


def cmd_slo_check(args: argparse.Namespace) -> int:
    """Judge service-level objectives against a telemetry dump.

    ``DUMP`` is autodetected: a ``snapshot.json`` written on graceful
    drain (gates on the alert/violation state the server recorded), an
    observability JSON export (``repro trace --metrics-out``; the
    cumulative run is treated as one ``--window`` seconds long), or a
    ``metrics.prom`` Prometheus exposition.  Exit 0 when every
    objective holds, 1 on any violation or firing alert, 2 on
    unreadable input — the CI gate for "did the run meet its SLOs".
    """
    from repro.obs.slo import (check_document, default_slos,
                               load_slo_config)
    try:
        with open(args.dump, encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        slos = (load_slo_config(args.config).slos
                if args.config else default_slos())
    except (OSError, ValueError) as exc:
        print(f"error: bad --config: {exc}", file=sys.stderr)
        return 2
    document = None
    try:
        document = json.loads(raw)
    except json.JSONDecodeError:
        pass
    if document is not None and not isinstance(document, dict):
        print(f"error: {args.dump}: expected a JSON object",
              file=sys.stderr)
        return 2
    if document is not None and "slo" in document:
        return _check_snapshot(document, args.dump)
    if document is not None:
        metrics = document.get("metrics", document)
        if not isinstance(metrics, dict) or not (
                "counters" in metrics or "histograms" in metrics):
            print(f"error: {args.dump}: neither a snapshot.json nor "
                  "a metrics export", file=sys.stderr)
            return 2
    else:
        metrics = _slo_document_from_prometheus(raw, slos)
        if not metrics["counters"] and not metrics["histograms"]:
            print(f"error: {args.dump}: no SLO-relevant Prometheus "
                  "samples found", file=sys.stderr)
            return 2
    status = check_document(slos, metrics, window_s=args.window)
    return _report_slo_status(status)


def _check_snapshot(document: dict, path: str) -> int:
    """Gate on the judgement state a draining server wrote."""
    # Snapshots from before the materialized-view layer have no
    # "matviews" section; the summary is informational either way, so
    # a missing or disabled section must never fail the check.
    matviews = document.get("matviews")
    if isinstance(matviews, dict) and matviews.get("enabled"):
        print(f"matviews: {matviews.get('views', 0)} views, "
              f"{matviews.get('hits', 0)} hits / "
              f"{matviews.get('misses', 0)} misses, "
              f"{matviews.get('invalidations', 0)} invalidations "
              f"({matviews.get('views_dropped', 0)} views dropped)")
    slo_state = document.get("slo")
    if not slo_state:
        print(f"{path}: server ran without SLO evaluation; "
              "nothing to check")
        return 0
    firing = [alert for alert in slo_state.get("alerts", [])
              if alert.get("state") == "firing"]
    violated = [entry for entry in slo_state.get("slos", [])
                if entry.get("violated")]
    for entry in slo_state.get("slos", []):
        burn = entry.get("burn_rate")
        burn_text = "no data" if burn is None else f"burn {burn:.2f}x"
        flag = "VIOLATED" if entry.get("violated") else "ok"
        print(f"{flag:>8}  {entry['name']}: {entry['objective']} "
              f"({burn_text})")
    for alert in firing:
        print(f"  FIRING  {alert['name']} "
              f"(long {alert.get('long_burn')}x / "
              f"short {alert.get('short_burn')}x, "
              f"threshold {alert.get('factor')}x)")
    if firing or violated:
        print(f"slo check: FAIL ({len(violated)} violated, "
              f"{len(firing)} firing)")
        return 1
    print("slo check: ok")
    return 0


def _report_slo_status(status: list[dict]) -> int:
    """Print one line per objective; exit 1 when any is violated."""
    violated = [entry for entry in status if entry["violated"]]
    for entry in status:
        burn = entry.get("burn_rate")
        burn_text = "no data" if burn is None else f"burn {burn:.2f}x"
        flag = "VIOLATED" if entry["violated"] else "ok"
        print(f"{flag:>8}  {entry['name']}: {entry['objective']} "
              f"({burn_text})")
    if violated:
        print(f"slo check: FAIL ({len(violated)} violated)")
        return 1
    print("slo check: ok")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Diff two committed benchmark documents; non-zero on regression.

    Compares every ``*_p50_s`` metric of two ``BENCH_core.json``-format
    files and fails (exit 1) when any grew more than
    ``--max-regress-pct`` percent — the CI perf gate.
    """
    from repro.obs.benchdiff import compare_documents, load_document
    try:
        old = load_document(args.old)
        new = load_document(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    comparison = compare_documents(old, new, args.max_regress_pct)
    print(comparison.render())
    return 0 if comparison.ok else 1


def make_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STRUDEL: declarative Web-site management")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a site from files")
    build.add_argument("--data", action="append", required=True,
                       help="data file (repeatable; wrapped by suffix)")
    build.add_argument("--query", required=True,
                       help="StruQL site-definition file")
    build.add_argument("--templates", help="directory of *.tmpl files")
    build.add_argument("--out", default="www",
                       help="output directory for HTML")
    build.add_argument("--optimizer", default="cost",
                       choices=("naive", "heuristic", "cost"))
    build.add_argument("--jobs", type=int, default=None,
                       help="parallel page-render threads "
                            "(default: one per CPU core)")
    build.add_argument("--cache-dir",
                       help="persistent build-cache directory: "
                            "unchanged pages are skipped on rebuilds")
    build.add_argument("--incremental", action="store_true",
                       help="shorthand for --cache-dir OUT/"
                            ".buildcache")
    build.add_argument("--verify-root",
                       help="check all pages reachable from this "
                            "Skolem function")
    build.add_argument("--site-json",
                       help="also save the site graph as JSON")
    build.add_argument("--site-dot",
                       help="also save a GraphViz view of the site graph")
    build.add_argument("--lineage", action="store_true",
                       help="record provenance while building (saved "
                            "as lineage.json next to the build-cache "
                            "manifest when --cache-dir is set)")
    build.add_argument("--max-age", type=float, default=None,
                       help="freshness threshold in seconds: report "
                            "pages whose newest contributing source "
                            "is older (implies --lineage)")
    build.set_defaults(fn=cmd_build)

    why = sub.add_parser(
        "why",
        help="print a page's backward derivation tree "
             "(source -> query block -> Skolem fn -> template)")
    why.add_argument("target", nargs="?",
                     help="page url (PersonPage_p1_.html) or oid "
                          "display name (PersonPage(p1))")
    why.add_argument("--data", action="append", required=True,
                     help="data file (repeatable; wrapped by suffix)")
    why.add_argument("--query", required=True,
                     help="StruQL site-definition file")
    why.add_argument("--templates",
                     help="directory of *.tmpl files (adds the "
                          "template layer to the chain)")
    why.add_argument("--optimizer", default="cost",
                     choices=("naive", "heuristic", "cost"))
    why.add_argument("--max-age", type=float, default=None,
                     help="flag the page stale when its newest "
                          "contributing source is older (seconds)")
    why.add_argument("--json", action="store_true",
                     help="machine-readable JSON output")
    why.add_argument("--list", action="store_true",
                     help="list every generated page url instead")
    why.set_defaults(fn=cmd_why)

    schema = sub.add_parser("schema", help="print a query's site schema")
    schema.add_argument("--query", required=True)
    schema.add_argument("--dot", action="store_true",
                        help="GraphViz output")
    schema.add_argument("--ns", action="store_true",
                        help="include N_S edges")
    schema.set_defaults(fn=cmd_schema)

    check = sub.add_parser("check",
                           help="static checks: parse + range restriction")
    check.add_argument("--query", required=True)
    check.set_defaults(fn=cmd_check)

    diff = sub.add_parser("diff",
                          help="diff a saved site graph against a rebuild")
    diff.add_argument("--data", action="append", required=True)
    diff.add_argument("--query", required=True)
    diff.add_argument("--old-site", required=True,
                      help="JSON site graph from a previous build")
    diff.set_defaults(fn=cmd_diff)

    trace = sub.add_parser(
        "trace", help="run a command with tracing + metrics enabled")
    trace.add_argument("--metrics-out",
                       help="write the spans+metrics JSON document here")
    trace.add_argument("--prom-out",
                       help="write Prometheus exposition text here")
    trace.add_argument("--events-out",
                       help="write the event log (JSONL) here")
    trace.add_argument("--quiet", action="store_true",
                       help="suppress the span tree and hotspot table "
                            "(metrics digest only)")
    trace.add_argument("--profile", action="store_true",
                       help="print only the hotspot profile")
    trace.add_argument("--json", action="store_true",
                       help="machine-readable JSON output (profile, "
                            "plus metrics and events unless --profile)")
    trace.add_argument("rest", nargs=argparse.REMAINDER,
                       help="the command to run, e.g. build --data ...")
    trace.set_defaults(fn=cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="show a query's plan, estimates and optimizer decisions "
             "(EXPLAIN), optionally executing it (EXPLAIN ANALYZE)")
    explain.add_argument("--query", required=True,
                         help="StruQL query file to explain")
    explain.add_argument("--data", action="append",
                         help="data file (repeatable; optional — "
                              "without data the plan uses empty "
                              "statistics)")
    explain.add_argument("--optimizer", default="cost",
                         choices=("naive", "heuristic", "cost"))
    explain.add_argument("--analyze", action="store_true",
                         help="execute the query and show estimated vs "
                              "actual rows, time and index hits per "
                              "operator")
    explain.add_argument("--json", action="store_true",
                         help="machine-readable JSON output")
    explain.set_defaults(fn=cmd_explain)

    monitor = sub.add_parser(
        "monitor",
        help="run a command, then generate the telemetry dashboard site")
    monitor.add_argument("--out", default=None,
                         help="dashboard output directory (may also be "
                              "given as the last --out after the "
                              "wrapped command; default monitor-www)")
    monitor.add_argument("--max-age", type=float, default=None,
                         help="staleness threshold (seconds) for the "
                              "dashboard's Freshness page")
    monitor.add_argument("rest", nargs=argparse.REMAINDER,
                         help="the command to run, e.g. build --data ...")
    monitor.set_defaults(fn=cmd_monitor)

    serve = sub.add_parser(
        "serve",
        help="serve a site dynamically with live telemetry endpoints")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks an ephemeral one")
    serve.add_argument("--snapshot-dir", default="serve-snapshot",
                       help="where the final metrics/events snapshot "
                            "is flushed on shutdown")
    serve.add_argument("--slow-ms", type=float, default=0.0,
                       help="server.slow_request warn threshold in "
                            "milliseconds (default 0: warn on every "
                            "slowest-heap entry)")
    serve.add_argument("--max-age", type=float, default=None,
                       help="freshness threshold in seconds for "
                            "lineage.pages_stale_total on /metrics")
    serve.add_argument("--slo-config", default=None,
                       help="slo.toml defining objectives and alert "
                            "knobs (default: the stock server+canary "
                            "SLOs)")
    serve.add_argument("--canary-interval", type=float, default=None,
                       help="seconds between self-probes (default 5; "
                            "0 disables the canary and evaluates "
                            "SLOs on a timer instead)")
    serve.add_argument("rest", nargs=argparse.REMAINDER,
                       help="build arguments naming the site, e.g. "
                            "build --data ... --query ... --templates ...")
    serve.set_defaults(fn=cmd_serve)

    bench = sub.add_parser("bench", help="benchmark utilities")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    compare = bench_sub.add_parser(
        "compare",
        help="diff two BENCH_core.json documents; exit 1 on regression")
    compare.add_argument("old", help="baseline BENCH_core.json")
    compare.add_argument("new", help="candidate BENCH_core.json")
    compare.add_argument("--max-regress-pct", type=float, default=25.0,
                         help="fail when a p50 metric grows more than "
                              "this percentage (default 25)")
    compare.set_defaults(fn=cmd_bench_compare)

    slo = sub.add_parser("slo", help="service-level-objective tools")
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    slo_check = slo_sub.add_parser(
        "check",
        help="judge SLOs against a snapshot/metrics dump; "
             "exit 1 on violation")
    slo_check.add_argument(
        "dump",
        help="snapshot.json, an obs JSON export, or metrics.prom")
    slo_check.add_argument(
        "--config", default=None,
        help="slo.toml naming the objectives (default: stock SLOs)")
    slo_check.add_argument(
        "--window", type=float, default=3600.0,
        help="window in seconds a cumulative metrics dump is judged "
             "over (default 3600; ignored for snapshot.json)")
    slo_check.set_defaults(fn=cmd_slo_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except StrudelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
