"""Indexes over schemaless graphs (paper section 2.2).

    Traditional systems rely on schema information to physically organize
    the data on disk, but our data repository cannot.  Without schema
    information, we fully index both the schema and the data.  For
    example, one index contains the names of all the collections and
    attributes in the graph; other indexes contain the extensions for
    each collection and attribute.  In addition, indexes on atomic values
    are global to the graph, not built per collection or attribute.

:class:`GraphIndex` materializes exactly those structures:

* the **schema index** — all attribute labels and collection names;
* **attribute extents** — for each label, every ``(source, target)``;
* **collection extents** — mirrored from the graph for uniform access;
* the **global value index** — atom -> every ``(source, label)`` edge in
  which the atom appears, regardless of collection or attribute;
* forward/backward adjacency by ``(node, label)``.

The index is a snapshot: build it with :meth:`GraphIndex.build` and call
:meth:`refresh` after mutating the graph.  The query processor checks
:attr:`GraphIndex.fresh` and falls back to graph scans when the snapshot
is stale or indexing is disabled (benchmark A1 measures the difference).
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.model import Edge, Graph, GraphObject, Oid
from repro.graph.values import Atom
from repro.obs.trace import emit_event, get_recorder


class GraphIndex:
    """A full schema + data index over one :class:`~repro.graph.Graph`."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._labels: set[str] = set()
        self._collection_names: set[str] = set()
        self._attribute_extent: dict[str, list[tuple[Oid, GraphObject]]] = {}
        self._forward: dict[tuple[Oid, str], list[GraphObject]] = {}
        self._backward: dict[str, dict[GraphObject, list[Oid]]] = {}
        self._value_index: dict[Atom, list[tuple[Oid, str]]] = {}
        self._epoch = -1
        self._built = False

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def build(cls, graph: Graph) -> "GraphIndex":
        """Construct and populate an index for ``graph``."""
        index = cls(graph)
        index.refresh()
        return index

    def refresh(self) -> None:
        """Rebuild every index structure from the current graph state."""
        recorder = get_recorder()
        with recorder.span("index.build", graph=self.graph.name) as span:
            self._labels.clear()
            self._collection_names = set(self.graph.collection_names())
            self._attribute_extent.clear()
            self._forward.clear()
            self._backward.clear()
            self._value_index.clear()
            for edge in self.graph.edges():
                self._insert_edge(edge)
            self._epoch = self._snapshot_key()
            self._built = True
            span.set(labels=len(self._labels),
                     values=len(self._value_index))
            emit_event("info", "index.build", graph=self.graph.name,
                       labels=len(self._labels),
                       values=len(self._value_index))
        recorder.metrics.counter("repository.index.builds").inc()
        recorder.metrics.gauge("repository.index.labels").set(
            len(self._labels))
        recorder.metrics.gauge("repository.index.values").set(
            len(self._value_index))

    def _insert_edge(self, edge: Edge) -> None:
        source, label, target = edge
        self._labels.add(label)
        self._attribute_extent.setdefault(label, []).append((source, target))
        self._forward.setdefault((source, label), []).append(target)
        self._backward.setdefault(label, {}).setdefault(target, []).append(
            source)
        if isinstance(target, Atom):
            self._value_index.setdefault(target, []).append((source, label))

    def _snapshot_key(self) -> int:
        return (self.graph.edge_count << 24) ^ (self.graph.node_count << 8) \
            ^ len(self.graph.collection_names())

    @property
    def fresh(self) -> bool:
        """Whether the snapshot still matches the graph's size signature."""
        return self._built and self._epoch == self._snapshot_key()

    # -- schema index -----------------------------------------------------------

    def labels(self) -> list[str]:
        """All attribute names in the graph (sorted)."""
        return sorted(self._labels)

    def collection_names(self) -> list[str]:
        """All collection names in the graph (sorted)."""
        return sorted(self._collection_names)

    def has_label(self, label: str) -> bool:
        """Whether any edge carries ``label``."""
        return label in self._labels

    # -- extents ------------------------------------------------------------------

    def attribute_extent(self, label: str) -> list[tuple[Oid, GraphObject]]:
        """Every ``(source, target)`` pair connected by ``label``."""
        return list(self._attribute_extent.get(label, ()))

    def collection_extent(self, name: str) -> list[GraphObject]:
        """Members of collection ``name`` (empty for unknown names)."""
        if not self.graph.has_collection(name):
            return []
        return self.graph.collection(name)

    # -- adjacency ---------------------------------------------------------------

    def targets(self, source: Oid, label: str) -> list[GraphObject]:
        """Values of ``label`` on ``source`` via the forward index."""
        return list(self._forward.get((source, label), ()))

    def sources(self, label: str, target: GraphObject) -> list[Oid]:
        """Nodes with an edge ``label`` pointing at ``target``."""
        return list(self._backward.get(label, {}).get(target, ()))

    # -- global value index ----------------------------------------------------------

    def value_occurrences(self, value: Atom) -> list[tuple[Oid, str]]:
        """Every ``(source, label)`` whose edge target coerces equal to
        ``value`` — the paper's global atomic-value index."""
        return list(self._value_index.get(value, ()))

    def atoms(self) -> list[Atom]:
        """Every distinct indexed atomic value."""
        return list(self._value_index)

    # -- sizes (fed to optimizer statistics) ----------------------------------------

    def label_cardinality(self, label: str) -> int:
        """Number of edges labeled ``label``."""
        return len(self._attribute_extent.get(label, ()))

    def collection_cardinality(self, name: str) -> int:
        """Number of members of collection ``name``."""
        if not self.graph.has_collection(name):
            return 0
        return len(self.graph.collection(name))

    def __repr__(self) -> str:
        return (f"GraphIndex(graph={self.graph.name!r}, "
                f"labels={len(self._labels)}, "
                f"values={len(self._value_index)}, fresh={self.fresh})")
