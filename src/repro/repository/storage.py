"""File-backed persistence for repositories.

A repository directory holds one JSON file per graph plus a small
manifest.  The layout is deliberately boring:

.. code-block:: text

    <root>/
      manifest.json          {"name": ..., "graphs": [...]}
      graphs/<name>.json     graph_to_json output

Saving is atomic per file (write to a temp name, then rename), so a
crash mid-save never corrupts a previously saved graph.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.errors import RepositoryError
from repro.graph.serialization import graph_from_json, graph_to_json
from repro.repository.repository import Repository

_MANIFEST = "manifest.json"
_GRAPH_DIR = "graphs"


def _safe_filename(name: str) -> str:
    out = "".join(ch if (ch.isalnum() or ch in "-_") else "_" for ch in name)
    return out or "_"


def save_repository(repo: Repository, root: str) -> None:
    """Persist every graph of ``repo`` under directory ``root``."""
    graph_dir = os.path.join(root, _GRAPH_DIR)
    os.makedirs(graph_dir, exist_ok=True)
    manifest = {"name": repo.database.name, "graphs": []}
    for name in repo.graph_names():
        filename = _safe_filename(name) + ".json"
        manifest["graphs"].append({"name": name, "file": filename})
        _atomic_write(os.path.join(graph_dir, filename),
                      graph_to_json(repo.graph(name)))
    _atomic_write(os.path.join(root, _MANIFEST),
                  json.dumps(manifest, indent=2))


def load_repository(root: str, indexing: bool = True) -> Repository:
    """Load a repository previously saved with :func:`save_repository`."""
    manifest_path = os.path.join(root, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise RepositoryError(f"no repository manifest at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    repo = Repository(manifest.get("name", "strudel"), indexing=indexing)
    for entry in manifest.get("graphs", []):
        path = os.path.join(root, _GRAPH_DIR, entry["file"])
        if not os.path.exists(path):
            raise RepositoryError(f"manifest names missing graph file {path}")
        with open(path, encoding="utf-8") as handle:
            graph = graph_from_json(handle.read())
        graph.name = entry.get("name", graph.name)
        repo.store(graph)
    return repo


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(path)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
