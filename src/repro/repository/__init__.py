"""Indexed data repository for semistructured data (paper section 2.2)."""

from repro.repository.indexes import GraphIndex
from repro.repository.repository import Repository
from repro.repository.stats import GraphStatistics, LabelStats
from repro.repository.storage import load_repository, save_repository

__all__ = [
    "GraphIndex",
    "GraphStatistics",
    "LabelStats",
    "Repository",
    "load_repository",
    "save_repository",
]
