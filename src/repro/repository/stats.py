"""Graph statistics feeding the cost-based query optimizer.

The cost-based optimizer of [FLO 97] (paper section 2.4) chooses among
access paths using cardinalities of collections and attributes and
selectivities of value predicates.  :class:`GraphStatistics` gathers the
numbers a plan's cost formulas need:

* node/edge/atom counts;
* per-label edge counts, distinct source and target counts;
* per-collection sizes;
* fan-out (average targets per source, per label), used to cost forward
  traversals;
* fan-in, used to cost backward traversals;
* distinct-value counts, used to estimate equality selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.model import Graph, Oid
from repro.graph.values import Atom


@dataclass
class LabelStats:
    """Statistics for one attribute label."""

    edges: int = 0
    distinct_sources: int = 0
    distinct_targets: int = 0
    atom_targets: int = 0

    @property
    def fan_out(self) -> float:
        """Average number of targets per distinct source."""
        if self.distinct_sources == 0:
            return 0.0
        return self.edges / self.distinct_sources

    @property
    def fan_in(self) -> float:
        """Average number of sources per distinct target."""
        if self.distinct_targets == 0:
            return 0.0
        return self.edges / self.distinct_targets


@dataclass
class GraphStatistics:
    """Snapshot statistics for a graph, consumed by the cost model."""

    node_count: int = 0
    edge_count: int = 0
    atom_count: int = 0
    labels: dict[str, LabelStats] = field(default_factory=dict)
    collections: dict[str, int] = field(default_factory=dict)

    @classmethod
    def gather(cls, graph: Graph) -> "GraphStatistics":
        """Compute statistics from ``graph`` in one pass over its edges."""
        stats = cls(node_count=graph.node_count)
        sources: dict[str, set[Oid]] = {}
        targets: dict[str, set[object]] = {}
        atoms: set[int] = set()
        for edge in graph.edges():
            stats.edge_count += 1
            label = stats.labels.setdefault(edge.label, LabelStats())
            label.edges += 1
            sources.setdefault(edge.label, set()).add(edge.source)
            targets.setdefault(edge.label, set()).add(
                edge.target if isinstance(edge.target, Oid)
                else ("atom", str(edge.target.type), str(edge.target.value)))
            if isinstance(edge.target, Atom):
                label.atom_targets += 1
                atoms.add(id(edge.target))
        for name, label in stats.labels.items():
            label.distinct_sources = len(sources[name])
            label.distinct_targets = len(targets[name])
        stats.atom_count = len(atoms)
        for cname in graph.collection_names():
            stats.collections[cname] = len(graph.collection(cname))
        return stats

    # -- estimates used by the cost model ------------------------------------

    def label_edges(self, label: str) -> int:
        """Edge count for ``label`` (0 when absent)."""
        stats = self.labels.get(label)
        return stats.edges if stats else 0

    def collection_size(self, name: str) -> int:
        """Member count for collection ``name`` (0 when absent)."""
        return self.collections.get(name, 0)

    def any_label_fan_out(self) -> float:
        """Average out-degree over all nodes; costs wildcard traversal."""
        if self.node_count == 0:
            return 0.0
        return self.edge_count / self.node_count

    def label_fan_out(self, label: str) -> float:
        """Average fan-out of ``label``; 0 when the label is unknown."""
        stats = self.labels.get(label)
        return stats.fan_out if stats else 0.0

    def label_fan_in(self, label: str) -> float:
        """Average fan-in of ``label``; 0 when the label is unknown."""
        stats = self.labels.get(label)
        return stats.fan_in if stats else 0.0

    def equality_selectivity(self, label: str) -> float:
        """Estimated fraction of ``label`` edges surviving ``target = c``.

        Uses the uniform-distribution assumption over distinct targets,
        the classic System-R ``1/V(A)`` estimate.
        """
        stats = self.labels.get(label)
        if not stats or stats.distinct_targets == 0:
            return 1.0
        return 1.0 / stats.distinct_targets
