"""The STRUDEL data repository (paper section 2.2).

The repository stores data graphs and site graphs uniformly, keeps the
full schema/data indexes of :mod:`repro.repository.indexes` for each
graph, serves statistics to the optimizer, and persists everything to
disk via :mod:`repro.repository.storage`.

Indexing can be disabled per repository (``indexing=False``); the query
processor then evaluates by graph scans.  Benchmark A1 uses this switch
to reproduce the paper's "maintaining these indexes is expensive, but
they provide many benefits to our query language" trade-off.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import UnknownGraphError
from repro.graph.model import Database, Graph
from repro.repository.indexes import GraphIndex
from repro.repository.stats import GraphStatistics


class Repository:
    """An indexed store of named graphs.

    Thin by design: a repository is a :class:`~repro.graph.Database` plus
    per-graph index and statistics caches.  Graph mutations go through
    the graph object itself; the caches detect staleness by a size
    signature and rebuild lazily on next access.
    """

    def __init__(self, name: str = "strudel", indexing: bool = True) -> None:
        self.database = Database(name)
        self.indexing = indexing
        self._indexes: dict[str, GraphIndex] = {}
        self._stats: dict[str, GraphStatistics] = {}
        self._stats_epoch: dict[str, tuple[int, int]] = {}

    # -- graph management -------------------------------------------------------

    def store(self, graph: Graph) -> Graph:
        """Add or replace a named graph; returns it for chaining."""
        self.database.add_graph(graph)
        self._indexes.pop(graph.name, None)
        self._stats.pop(graph.name, None)
        return graph

    def new_graph(self, name: str) -> Graph:
        """Create, store and return an empty graph."""
        return self.store(Graph(name))

    def graph(self, name: str) -> Graph:
        """Fetch a stored graph; raises :class:`UnknownGraphError`."""
        if not self.database.has_graph(name):
            raise UnknownGraphError(name)
        return self.database.graph(name)

    def has_graph(self, name: str) -> bool:
        """Whether a graph named ``name`` is stored."""
        return self.database.has_graph(name)

    def drop(self, name: str) -> None:
        """Remove a graph and its caches; missing names are ignored."""
        self.database.remove_graph(name)
        self._indexes.pop(name, None)
        self._stats.pop(name, None)
        self._stats_epoch.pop(name, None)

    def graph_names(self) -> list[str]:
        """Sorted names of stored graphs."""
        return self.database.graph_names()

    def __iter__(self) -> Iterator[Graph]:
        for name in self.graph_names():
            yield self.database.graph(name)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.database.has_graph(name)

    # -- index & statistics access ------------------------------------------------

    def index(self, name: str) -> GraphIndex | None:
        """The (fresh) index for graph ``name``, or ``None`` if indexing
        is disabled for this repository."""
        if not self.indexing:
            return None
        graph = self.graph(name)
        index = self._indexes.get(name)
        if index is None:
            index = GraphIndex.build(graph)
            self._indexes[name] = index
        elif not index.fresh:
            index.refresh()
        return index

    def statistics(self, name: str) -> GraphStatistics:
        """Statistics snapshot for graph ``name`` (rebuilt when stale)."""
        graph = self.graph(name)
        epoch = (graph.node_count, graph.edge_count)
        if self._stats.get(name) is None or self._stats_epoch.get(name) != epoch:
            self._stats[name] = GraphStatistics.gather(graph)
            self._stats_epoch[name] = epoch
        return self._stats[name]

    def invalidate(self, name: str) -> None:
        """Force index/statistics rebuild for graph ``name`` on next use."""
        self._indexes.pop(name, None)
        self._stats.pop(name, None)
        self._stats_epoch.pop(name, None)

    def __repr__(self) -> str:
        return (f"Repository({self.database.name!r}, "
                f"graphs={self.graph_names()}, indexing={self.indexing})")
