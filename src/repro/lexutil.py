"""A small shared lexical scanner used by the DDL and StruQL lexers.

Both languages tokenize the same lexeme families — identifiers, numbers,
quoted strings, punctuation, ``//``/``#`` comments — and differ only in
keyword sets and punctuation tables, so the character-level machinery
lives here once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class Token:
    """One lexical token: a kind tag, its text, and source position."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


#: Token kind constants shared by the language front ends.
IDENT = "IDENT"
STRING = "STRING"
INT = "INT"
FLOAT = "FLOAT"
PUNCT = "PUNCT"
EOF = "EOF"


class ScanError(Exception):
    """Raised on an unlexable character; front ends wrap it."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(message)
        self.line = line
        self.column = column


def scan(text: str, punctuation: tuple[str, ...],
         ident_ok: Callable[[str], bool] = str.isalnum) -> Iterator[Token]:
    """Tokenize ``text``.

    ``punctuation`` lists multi/single-character operators, longest
    first (the scanner greedily matches in the given order).
    ``ident_ok`` decides which characters may continue an identifier
    (the first character must be a letter or underscore).

    Yields a trailing :data:`EOF` token so parsers need no sentinel
    handling.
    """
    i = 0
    line = 1
    col = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#" or text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise ScanError("unterminated comment", line, col)
            skipped = text[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch == '"':
            token, i2 = _scan_string(text, i, line, col)
            col += i2 - i
            i = i2
            yield token
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()
                            and _minus_starts_number(punctuation)):
            token, i2 = _scan_number(text, i, line, col)
            col += i2 - i
            i = i2
            yield token
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (ident_ok(text[i]) or text[i] == "_"):
                i += 1
            yield Token(IDENT, text[start:i], line, col)
            col += i - start
            continue
        matched = False
        for punct in punctuation:
            if text.startswith(punct, i):
                yield Token(PUNCT, punct, line, col)
                i += len(punct)
                col += len(punct)
                matched = True
                break
        if not matched:
            raise ScanError(f"unexpected character {ch!r}", line, col)
    yield Token(EOF, "", line, col)


def _minus_starts_number(punctuation: tuple[str, ...]) -> bool:
    # Languages that use '-' as an operator (e.g. '->') handle negative
    # literals in the parser instead; only lex '-3' as a number when the
    # bare '-' is not an operator.
    return "-" not in punctuation and "->" not in punctuation


def _scan_string(text: str, i: int, line: int, col: int) -> tuple[Token, int]:
    out: list[str] = []
    j = i + 1
    n = len(text)
    while j < n:
        ch = text[j]
        if ch == '"':
            return Token(STRING, "".join(out), line, col), j + 1
        if ch == "\\" and j + 1 < n:
            escape = text[j + 1]
            out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                       .get(escape, escape))
            j += 2
            continue
        if ch == "\n":
            raise ScanError("unterminated string literal", line, col)
        out.append(ch)
        j += 1
    raise ScanError("unterminated string literal", line, col)


def _scan_number(text: str, i: int, line: int, col: int) -> tuple[Token, int]:
    j = i
    n = len(text)
    if text[j] == "-":
        j += 1
    while j < n and text[j].isdigit():
        j += 1
    is_float = False
    if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
        is_float = True
        j += 1
        while j < n and text[j].isdigit():
            j += 1
    # Scientific notation: 2.5e-308, 1E6 — only when the exponent is
    # well-formed, so identifiers following a number stay separate.
    if j < n and text[j] in "eE":
        k = j + 1
        if k < n and text[k] in "+-":
            k += 1
        if k < n and text[k].isdigit():
            while k < n and text[k].isdigit():
                k += 1
            j = k
            is_float = True
    kind = FLOAT if is_float else INT
    return Token(kind, text[i:j], line, col), j
