"""JSON-compatible (de)serialization of graphs and databases.

The repository persists its graphs in this format (section 2.2 describes
a common data-exchange representation between wrappers and the mediator;
the paper mentions an OEM-style DDL and XML as candidates — we provide
the DDL in :mod:`repro.ddl` and this JSON form for machine exchange and
on-disk storage).

The encoding is self-contained and stable:

* oids encode as ``{"oid": name}`` plus optional Skolem provenance;
* atoms encode as ``{"type": ..., "value": ...}``;
* a graph encodes its node list, edge list and collection map.

Round-tripping preserves node identity, edge multiplicity (as a set),
collection membership and insertion order.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import GraphError
from repro.graph.model import Database, Graph, GraphObject, Oid
from repro.graph.values import Atom, AtomType


def object_to_dict(obj: GraphObject) -> dict[str, Any]:
    """Encode an oid or atom as a JSON-compatible dict."""
    if isinstance(obj, Oid):
        out: dict[str, Any] = {"oid": obj.name}
        if obj.is_skolem:
            out["skolem_fn"] = obj.skolem_fn
            out["skolem_args"] = [object_to_dict(a) if isinstance(a, (Oid, Atom))
                                  else a for a in obj.skolem_args]
        return out
    if isinstance(obj, Atom):
        return {"type": obj.type.value, "value": obj.value}
    raise GraphError(f"not a graph object: {obj!r}")


def object_from_dict(data: dict[str, Any]) -> GraphObject:
    """Decode the output of :func:`object_to_dict`."""
    if "oid" in data:
        if "skolem_fn" in data:
            args = tuple(object_from_dict(a) if isinstance(a, dict) else a
                         for a in data.get("skolem_args", []))
            oid = Oid.skolem(data["skolem_fn"], args)
            if oid.name != data["oid"]:
                # Preserve the stored display name verbatim.
                oid = Oid(data["oid"], data["skolem_fn"], args)
            return oid
        return Oid(data["oid"])
    if "type" in data:
        return Atom(AtomType(data["type"]), data["value"])
    raise GraphError(f"cannot decode graph object from {data!r}")


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Encode a :class:`Graph` as a JSON-compatible dict."""
    return {
        "name": graph.name,
        "nodes": [object_to_dict(n) for n in graph.nodes()],
        "edges": [
            {"source": object_to_dict(e.source),
             "label": e.label,
             "target": object_to_dict(e.target)}
            for e in graph.edges()
        ],
        "collections": {
            name: [object_to_dict(m) for m in graph.collection(name)]
            for name in graph.collection_names()
        },
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    """Decode the output of :func:`graph_to_dict`."""
    graph = Graph(data.get("name", ""))
    for node in data.get("nodes", []):
        obj = object_from_dict(node)
        if not isinstance(obj, Oid):
            raise GraphError(f"node entry decodes to a non-node: {node!r}")
        graph.add_node(obj)
    for edge in data.get("edges", []):
        source = object_from_dict(edge["source"])
        target = object_from_dict(edge["target"])
        if not isinstance(source, Oid):
            raise GraphError(f"edge source is not a node: {edge!r}")
        graph.add_edge(source, edge["label"], target)
    for name, members in data.get("collections", {}).items():
        graph.declare_collection(name)
        for member in members:
            graph.add_to_collection(name, object_from_dict(member))
    return graph


def graph_to_json(graph: Graph, indent: int | None = None) -> str:
    """Serialize a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=False)


def graph_from_json(text: str) -> Graph:
    """Deserialize a graph from :func:`graph_to_json` output."""
    return graph_from_dict(json.loads(text))


def database_to_dict(db: Database) -> dict[str, Any]:
    """Encode a :class:`Database` (all its graphs) as a dict."""
    return {
        "name": db.name,
        "graphs": [graph_to_dict(db.graph(name))
                   for name in db.graph_names()],
    }


def database_from_dict(data: dict[str, Any]) -> Database:
    """Decode the output of :func:`database_to_dict`.

    Oids with equal structure unify across graphs, restoring the "graphs
    may share objects" property of the model.
    """
    db = Database(data.get("name", ""))
    for graph_data in data.get("graphs", []):
        db.add_graph(graph_from_dict(graph_data))
    return db


def database_to_json(db: Database, indent: int | None = None) -> str:
    """Serialize a database to a JSON string."""
    return json.dumps(database_to_dict(db), indent=indent)


def database_from_json(text: str) -> Database:
    """Deserialize a database from :func:`database_to_json` output."""
    return database_from_dict(json.loads(text))
