"""Atomic value types of the STRUDEL data model.

The paper (section 2.1) models objects as either *nodes*, identified by a
unique oid, or *atomic values* — integers, strings, and the file-like
types that commonly appear on Web pages: URLs and PostScript, text, image,
and HTML files.  Atomic types are "handled in a uniform fashion, and
values are coerced dynamically when they are compared at run time".

This module implements that value system:

* :class:`Atom` — immutable wrapper pairing a Python payload with an
  :class:`AtomType`.
* :func:`coerce_pair` — the dynamic coercion rule used by comparisons.
* :func:`compare` — three-way comparison with coercion, used by StruQL
  comparison predicates and by the template language's ``ORDER`` sort.
* ``is_*`` type predicates registered as StruQL built-ins elsewhere.

Atoms are hashable and totally ordered *within* a coercible family, so
they can live in sets, serve as dict keys, and be sorted.
"""

from __future__ import annotations

import enum
from functools import total_ordering
from typing import Any

from repro.errors import CoercionError


class AtomType(enum.Enum):
    """The atomic types the paper lists for Web-page content."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STRING = "string"
    URL = "url"
    TEXT_FILE = "text"
    HTML_FILE = "html"
    POSTSCRIPT_FILE = "postscript"
    IMAGE_FILE = "image"

    @property
    def is_file(self) -> bool:
        """Whether values of this type denote file contents, not scalars."""
        return self in _FILE_TYPES

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type participate in numeric coercion."""
        return self in (AtomType.INT, AtomType.FLOAT, AtomType.BOOL)


_FILE_TYPES = frozenset({
    AtomType.TEXT_FILE,
    AtomType.HTML_FILE,
    AtomType.POSTSCRIPT_FILE,
    AtomType.IMAGE_FILE,
})

#: File-name suffixes used to infer a file atom's type, mirroring the
#: paper's wrappers which classify values like ``papers/icde98.ps.gz``.
_SUFFIX_TYPES: tuple[tuple[tuple[str, ...], AtomType], ...] = (
    ((".ps", ".ps.gz", ".ps.z", ".eps"), AtomType.POSTSCRIPT_FILE),
    ((".html", ".htm"), AtomType.HTML_FILE),
    ((".gif", ".jpg", ".jpeg", ".png", ".bmp", ".xbm"), AtomType.IMAGE_FILE),
    ((".txt", ".text", ".abs"), AtomType.TEXT_FILE),
)


@total_ordering
class Atom:
    """An immutable atomic value: a payload tagged with an :class:`AtomType`.

    ``Atom`` instances compare with dynamic coercion: ``Atom.int(3) ==
    Atom.string("3")`` is true because the string coerces to an integer at
    comparison time, exactly as the paper prescribes for run-time
    comparisons.  Values that cannot be coerced to a common type are
    simply unequal (and ordering between them raises
    :class:`~repro.errors.CoercionError`).
    """

    __slots__ = ("type", "value")

    def __init__(self, type: AtomType, value: Any) -> None:
        object.__setattr__(self, "type", type)
        object.__setattr__(self, "value", _validate(type, value))

    # -- constructors ------------------------------------------------------

    @staticmethod
    def int(value: int) -> "Atom":
        """Build an integer atom."""
        return Atom(AtomType.INT, int(value))

    @staticmethod
    def float(value: float) -> "Atom":
        """Build a floating-point atom."""
        return Atom(AtomType.FLOAT, float(value))

    @staticmethod
    def bool(value: bool) -> "Atom":
        """Build a boolean atom."""
        return Atom(AtomType.BOOL, bool(value))

    @staticmethod
    def string(value: str) -> "Atom":
        """Build a string atom."""
        return Atom(AtomType.STRING, str(value))

    @staticmethod
    def url(value: str) -> "Atom":
        """Build a URL atom."""
        return Atom(AtomType.URL, str(value))

    @staticmethod
    def file(path: str, type: AtomType | None = None) -> "Atom":
        """Build a file atom, inferring its type from the suffix.

        ``type`` overrides inference; unknown suffixes default to
        :attr:`AtomType.TEXT_FILE`, matching the paper's default of
        treating unrecognized file attributes as text.
        """
        if type is None:
            type = infer_file_type(path)
        if not type.is_file:
            raise ValueError(f"{type} is not a file type")
        return Atom(type, str(path))

    @staticmethod
    def of(value: Any) -> "Atom":
        """Wrap a plain Python value in the natural atom type.

        Existing atoms pass through unchanged, so ``Atom.of`` is safe to
        apply to values of unknown provenance.
        """
        if isinstance(value, Atom):
            return value
        if isinstance(value, bool):
            return Atom.bool(value)
        if isinstance(value, int):
            return Atom.int(value)
        if isinstance(value, float):
            return Atom.float(value)
        if isinstance(value, str):
            return Atom.string(value)
        raise TypeError(f"cannot make an Atom from {type(value).__name__}")

    # -- immutability ------------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Atom is immutable")

    # -- comparison with dynamic coercion -----------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        pair = _try_coerce_pair(self, other)
        if pair is None:
            return False
        return pair[0] == pair[1]

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        left, right = coerce_pair(self, other)
        return left < right

    def __hash__(self) -> int:
        # Atoms that compare equal under coercion must hash equal: hash the
        # canonical coerced form (numbers by numeric value, the rest by the
        # string payload).
        if self.type.is_numeric:
            return hash(float(self.value))
        text = str(self.value)
        # A string that looks numeric can equal a numeric atom.
        try:
            return hash(float(text))
        except ValueError:
            return hash(text)

    # -- presentation --------------------------------------------------------

    def __repr__(self) -> str:
        return f"Atom({self.type.value}, {self.value!r})"

    def __str__(self) -> str:
        return str(self.value)

    def to_python(self) -> Any:
        """Return the underlying Python payload."""
        return self.value


def _validate(type: AtomType, value: Any) -> Any:
    if type is AtomType.INT and not isinstance(value, int):
        raise TypeError(f"INT atom needs int, got {value!r}")
    if type is AtomType.FLOAT and not isinstance(value, float):
        raise TypeError(f"FLOAT atom needs float, got {value!r}")
    if type is AtomType.BOOL and not isinstance(value, bool):
        raise TypeError(f"BOOL atom needs bool, got {value!r}")
    if type in (AtomType.STRING, AtomType.URL) and not isinstance(value, str):
        raise TypeError(f"{type.value} atom needs str, got {value!r}")
    if type.is_file and not isinstance(value, str):
        raise TypeError(f"file atom needs str path, got {value!r}")
    return value


def infer_file_type(path: str) -> AtomType:
    """Classify a file path into one of the file atom types by suffix."""
    lowered = path.lower()
    for suffixes, atom_type in _SUFFIX_TYPES:
        if lowered.endswith(suffixes):
            return atom_type
    return AtomType.TEXT_FILE


def _coerce_numeric(atom: Atom) -> float | int | None:
    """Try to view an atom as a number; ``None`` if it cannot be."""
    if atom.type is AtomType.INT:
        return atom.value
    if atom.type is AtomType.FLOAT:
        return atom.value
    if atom.type is AtomType.BOOL:
        return int(atom.value)
    if atom.type is AtomType.STRING:
        text = atom.value.strip()
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            return None
    return None


def _try_coerce_pair(a: Atom, b: Atom) -> tuple[Any, Any] | None:
    """Coerce two atoms to a common comparable representation.

    Rules, applied in order:

    1. Same type: compare payloads directly.
    2. Both coercible to numbers (numerics, numeric-looking strings):
       compare numerically.
    3. Both string-like (strings, URLs, file paths): compare as strings.
    4. Otherwise: not coercible (``None``).
    """
    if a.type is b.type:
        return a.value, b.value
    na, nb = _coerce_numeric(a), _coerce_numeric(b)
    if na is not None and nb is not None:
        return na, nb
    a_stringish = not a.type.is_numeric
    b_stringish = not b.type.is_numeric
    if a_stringish and b_stringish:
        return str(a.value), str(b.value)
    return None


def coerce_pair(a: Atom, b: Atom) -> tuple[Any, Any]:
    """Like :func:`_try_coerce_pair` but raising on incoercible pairs."""
    pair = _try_coerce_pair(a, b)
    if pair is None:
        raise CoercionError(f"cannot coerce {a!r} and {b!r} to a common type")
    return pair


def compare(a: Atom, b: Atom) -> int:
    """Three-way comparison with dynamic coercion: -1, 0 or +1."""
    left, right = coerce_pair(a, b)
    if left == right:
        return 0
    return -1 if left < right else 1


# --------------------------------------------------------------------------
# Type predicates (registered as StruQL built-ins by repro.struql.predicates)


def is_int(value: Any) -> bool:
    """True for integer atoms."""
    return isinstance(value, Atom) and value.type is AtomType.INT


def is_float(value: Any) -> bool:
    """True for floating-point atoms."""
    return isinstance(value, Atom) and value.type is AtomType.FLOAT


def is_string(value: Any) -> bool:
    """True for string atoms."""
    return isinstance(value, Atom) and value.type is AtomType.STRING


def is_url(value: Any) -> bool:
    """True for URL atoms."""
    return isinstance(value, Atom) and value.type is AtomType.URL


def is_file(value: Any) -> bool:
    """True for any file atom (text, HTML, PostScript, image)."""
    return isinstance(value, Atom) and value.type.is_file


def is_postscript(value: Any) -> bool:
    """True for PostScript file atoms (the paper's ``isPostScript``)."""
    return isinstance(value, Atom) and value.type is AtomType.POSTSCRIPT_FILE


def is_image_file(value: Any) -> bool:
    """True for image file atoms (the paper's ``isImageFile``)."""
    return isinstance(value, Atom) and value.type is AtomType.IMAGE_FILE


def is_html_file(value: Any) -> bool:
    """True for HTML file atoms."""
    return isinstance(value, Atom) and value.type is AtomType.HTML_FILE


def is_text_file(value: Any) -> bool:
    """True for plain-text file atoms."""
    return isinstance(value, Atom) and value.type is AtomType.TEXT_FILE
