"""GraphViz (dot) export for data graphs and site graphs.

Site schemas already render to dot (:meth:`SiteSchema.to_dot`); this
module does the same for concrete graphs, which is the "visual summary"
companion the paper's iterative site-design workflow wants — inspect the
data graph after wrapping, or a site-graph fragment after a query.

Large graphs are unreadable as pictures, so :func:`graph_to_dot` accepts
a node limit and a ``keep`` predicate; atoms render as boxed leaves and
can be suppressed entirely.
"""

from __future__ import annotations

from typing import Callable

from repro.graph.model import Graph, Oid


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def graph_to_dot(graph: Graph, max_nodes: int | None = None,
                 include_atoms: bool = True,
                 keep: Callable[[Oid], bool] | None = None,
                 rankdir: str = "LR") -> str:
    """Render ``graph`` as GraphViz dot text.

    ``max_nodes`` truncates (breadth of insertion order) with an
    ellipsis node; ``keep`` filters nodes; ``include_atoms`` controls
    whether atomic values appear as boxed leaves (multi-referenced atoms
    are shared).  Collection membership renders as a dashed edge from a
    double-circled collection node.
    """
    nodes = [n for n in graph.nodes() if keep is None or keep(n)]
    truncated = False
    if max_nodes is not None and len(nodes) > max_nodes:
        nodes = nodes[:max_nodes]
        truncated = True
    node_set = set(nodes)

    lines = ["digraph strudel {", f"  rankdir={rankdir};",
             "  node [fontsize=10];"]
    for node in nodes:
        lines.append(f"  {_quote(node.name)} [shape=ellipse];")

    atom_ids: dict[int, str] = {}
    atom_count = 0
    for edge in graph.edges():
        if edge.source not in node_set:
            continue
        if isinstance(edge.target, Oid):
            if edge.target not in node_set:
                continue
            target_id = _quote(edge.target.name)
        else:
            if not include_atoms:
                continue
            key = id(edge.target)
            if key not in atom_ids:
                atom_count += 1
                atom_ids[key] = f"atom{atom_count}"
                text = str(edge.target.value)
                if len(text) > 32:
                    text = text[:29] + "..."
                lines.append(f"  {atom_ids[key]} "
                             f"[shape=box, label={_quote(text)}];")
            target_id = atom_ids[key]
        lines.append(f"  {_quote(edge.source.name)} -> {target_id} "
                     f"[label={_quote(edge.label)}];")

    for name in graph.collection_names():
        members = [m for m in graph.collection(name)
                   if isinstance(m, Oid) and m in node_set]
        if not members:
            continue
        lines.append(f"  {_quote('collection: ' + name)} "
                     f"[shape=doublecircle];")
        for member in members:
            lines.append(f"  {_quote('collection: ' + name)} -> "
                         f"{_quote(member.name)} [style=dashed];")

    if truncated:
        lines.append('  "..." [shape=plaintext];')
    lines.append("}")
    return "\n".join(lines)
