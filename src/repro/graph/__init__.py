"""Semistructured data model: labeled directed graphs (paper section 2.1).

The public surface of the substrate every other subsystem builds on:
atomic values with dynamic coercion, oids, edges, graphs with named
collections, databases of graphs, traversal algorithms and JSON
serialization.
"""

from repro.graph.dot import graph_to_dot
from repro.graph.algorithms import (
    graph_diameter,
    iter_paths,
    reachable,
    reachable_many,
    shortest_path,
    transitive_closure,
    unreachable_from,
    weakly_connected_components,
)
from repro.graph.model import Database, Edge, Graph, GraphObject, Oid, ensure_object
from repro.graph.serialization import (
    database_from_dict,
    database_from_json,
    database_to_dict,
    database_to_json,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)
from repro.graph.values import Atom, AtomType, compare, infer_file_type

__all__ = [
    "Atom",
    "AtomType",
    "Database",
    "Edge",
    "Graph",
    "GraphObject",
    "Oid",
    "compare",
    "database_from_dict",
    "database_from_json",
    "database_to_dict",
    "database_to_json",
    "ensure_object",
    "graph_diameter",
    "graph_from_dict",
    "graph_from_json",
    "graph_to_dict",
    "graph_to_dot",
    "graph_to_json",
    "infer_file_type",
    "iter_paths",
    "reachable",
    "reachable_many",
    "shortest_path",
    "transitive_closure",
    "unreachable_from",
    "weakly_connected_components",
]
