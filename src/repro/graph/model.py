"""The STRUDEL data model: labeled directed graphs in the style of OEM.

Paper, section 2.1:

    A database consists of a set of graphs and each graph consists of a
    set of objects connected by directed edges labeled with string-valued
    attribute names.  Objects are either nodes, identified by a unique
    object identifier (oid), or are atomic values [...].  Objects are
    grouped into named collections, which are used in queries.  Objects
    may belong to multiple collections, and objects in the same
    collection may have different representations.  [...] Graphs of the
    same database may share objects and/or collections.

This module provides:

* :class:`Oid` — an object identifier, optionally recording the Skolem
  function and arguments that created it.
* :class:`Edge` — a ``(source, label, target)`` triple.
* :class:`Graph` — a mutable labeled directed graph with named
  collections, multi-valued attributes, and an immutability fence used by
  StruQL's construction semantics.
* :class:`Database` — a set of named graphs that may share objects.

Both the raw data served by a Web site (the *data graph*) and the site
itself (the *site graph*) are instances of :class:`Graph`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, NamedTuple, Union

from repro.errors import (
    GraphError,
    ImmutableNodeError,
    UnknownCollectionError,
    UnknownObjectError,
)
from repro.graph.values import Atom


class Oid:
    """A unique object identifier for an internal (node) object.

    Plain oids carry just a name (``Oid("pub1")``).  Oids minted by a
    Skolem function additionally record the function name and argument
    tuple (``Oid.skolem("YearPage", (Atom.int(1997),))``), which makes
    Skolem identity (same function + same arguments = same oid) a simple
    structural equality and keeps generated oids human-readable, e.g.
    ``YearPage(1997)``.
    """

    __slots__ = ("name", "skolem_fn", "skolem_args", "_hash")

    def __init__(self, name: str, skolem_fn: str | None = None,
                 skolem_args: tuple[Any, ...] = ()) -> None:
        self.name = name
        self.skolem_fn = skolem_fn
        self.skolem_args = skolem_args
        self._hash = hash((name, skolem_fn, skolem_args))

    @staticmethod
    def skolem(fn: str, args: tuple[Any, ...]) -> "Oid":
        """Mint the oid produced by Skolem function ``fn`` on ``args``."""
        rendered = ",".join(_render_skolem_arg(a) for a in args)
        return Oid(f"{fn}({rendered})", skolem_fn=fn, skolem_args=tuple(args))

    @property
    def is_skolem(self) -> bool:
        """Whether this oid was minted by a Skolem function."""
        return self.skolem_fn is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Oid):
            return NotImplemented
        return (self.name == other.name
                and self.skolem_fn == other.skolem_fn
                and self.skolem_args == other.skolem_args)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Oid({self.name!r})"

    def __str__(self) -> str:
        return self.name


def _render_skolem_arg(arg: Any) -> str:
    if isinstance(arg, Oid):
        return arg.name
    if isinstance(arg, Atom):
        return str(arg.value)
    return str(arg)


#: An object of the data model: an internal node or an atomic value.
GraphObject = Union[Oid, Atom]


class Edge(NamedTuple):
    """A directed edge ``source -> label -> target``.

    ``source`` is always a node; ``target`` may be a node or an atom.
    Labels are the string-valued attribute names of the model.
    """

    source: Oid
    label: str
    target: GraphObject


class Graph:
    """A labeled directed graph with named collections.

    The graph is a *set* of nodes, atoms, and edges: adding the same edge
    twice is a no-op, but an object may carry many edges with the same
    label (multi-valued attributes, e.g. several ``author`` edges).
    Insertion order of edges is preserved, which the template language
    relies on when no explicit ``ORDER`` is requested.

    ``name`` identifies the graph inside a :class:`Database` ("input
    graph" / "output graph" in StruQL queries).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: dict[Oid, None] = {}
        self._out: dict[Oid, list[Edge]] = {}
        self._in: dict[GraphObject, list[Edge]] = {}
        self._edges: set[Edge] = set()
        self._collections: dict[str, dict[GraphObject, None]] = {}
        self._frozen: set[Oid] = set()

    # -- nodes ---------------------------------------------------------------

    def add_node(self, oid: Oid) -> Oid:
        """Add a node; returns the oid for chaining.  Idempotent."""
        if oid not in self._nodes:
            self._nodes[oid] = None
            self._out.setdefault(oid, [])
        return oid

    def has_node(self, oid: Oid) -> bool:
        """Whether the graph contains the node ``oid``."""
        return oid in self._nodes

    def nodes(self) -> Iterator[Oid]:
        """Iterate over all node oids in insertion order."""
        return iter(self._nodes)

    @property
    def node_count(self) -> int:
        """Number of internal (node) objects."""
        return len(self._nodes)

    # -- immutability fence ----------------------------------------------------

    def freeze_existing(self) -> None:
        """Mark every current node immutable.

        StruQL's construction stage may reference input-graph nodes but
        must not add edges out of them ("existing nodes are immutable").
        The construction machinery imports the input nodes and then calls
        this before applying ``link`` clauses.
        """
        self._frozen.update(self._nodes)

    def is_frozen(self, oid: Oid) -> bool:
        """Whether ``oid`` is behind the immutability fence."""
        return oid in self._frozen

    # -- edges ---------------------------------------------------------------

    def add_edge(self, source: Oid, label: str,
                 target: GraphObject) -> Edge:
        """Add ``source -> label -> target``; creates endpoints as needed.

        Raises :class:`ImmutableNodeError` if ``source`` is frozen, and
        :class:`GraphError` on malformed endpoints.
        """
        if not isinstance(source, Oid):
            raise GraphError(f"edge source must be a node, got {source!r}")
        if not isinstance(target, (Oid, Atom)):
            raise GraphError(f"edge target must be a node or atom, "
                             f"got {target!r}")
        if not isinstance(label, str):
            raise GraphError(f"edge label must be a string, got {label!r}")
        if source in self._frozen:
            raise ImmutableNodeError(
                f"cannot add edge out of immutable node {source}")
        self.add_node(source)
        if isinstance(target, Oid):
            self.add_node(target)
        edge = Edge(source, label, target)
        if edge not in self._edges:
            self._edges.add(edge)
            self._out[source].append(edge)
            self._in.setdefault(target, []).append(edge)
        return edge

    def has_edge(self, source: Oid, label: str, target: GraphObject) -> bool:
        """Whether the exact edge is present."""
        return Edge(source, label, target) in self._edges

    def edges(self) -> Iterator[Edge]:
        """Iterate over every edge (grouped by source, insertion order)."""
        for edges in self._out.values():
            yield from edges

    @property
    def edge_count(self) -> int:
        """Number of distinct edges."""
        return len(self._edges)

    def out_edges(self, source: Oid) -> list[Edge]:
        """All edges leaving ``source`` in insertion order."""
        return list(self._out.get(source, ()))

    def in_edges(self, target: GraphObject) -> list[Edge]:
        """All edges arriving at ``target`` in insertion order."""
        return list(self._in.get(target, ()))

    def get(self, source: Oid, label: str) -> list[GraphObject]:
        """Values of attribute ``label`` on ``source`` (possibly many)."""
        return [e.target for e in self._out.get(source, ())
                if e.label == label]

    def get_one(self, source: Oid, label: str,
                default: GraphObject | None = None) -> GraphObject | None:
        """First value of attribute ``label`` on ``source``, or ``default``."""
        for edge in self._out.get(source, ()):
            if edge.label == label:
                return edge.target
        return default

    def labels_of(self, source: Oid) -> list[str]:
        """Distinct attribute names on ``source`` in first-seen order."""
        seen: dict[str, None] = {}
        for edge in self._out.get(source, ()):
            seen.setdefault(edge.label, None)
        return list(seen)

    # -- schema-level views (the model is schemaless; the schema is data) ------

    def labels(self) -> list[str]:
        """All distinct edge labels in the graph (the *attribute schema*)."""
        seen: dict[str, None] = {}
        for edge in self._edges:
            seen.setdefault(edge.label, None)
        return sorted(seen)

    def atoms(self) -> Iterator[Atom]:
        """Iterate over every distinct atomic value appearing as a target."""
        seen: set[int] = set()
        for edge in self.edges():
            if isinstance(edge.target, Atom):
                key = id(edge.target)
                if key not in seen:
                    seen.add(key)
                    yield edge.target

    def objects(self) -> Iterator[GraphObject]:
        """Iterate over all objects: nodes first, then atom targets."""
        yield from self.nodes()
        yield from self.atoms()

    # -- collections ------------------------------------------------------------

    def add_to_collection(self, name: str, obj: GraphObject) -> None:
        """Add ``obj`` to collection ``name``, creating it if absent."""
        if isinstance(obj, Oid):
            self.add_node(obj)
        self._collections.setdefault(name, {})[obj] = None

    def declare_collection(self, name: str) -> None:
        """Ensure collection ``name`` exists (possibly empty)."""
        self._collections.setdefault(name, {})

    def collection(self, name: str) -> list[GraphObject]:
        """Members of collection ``name`` in insertion order.

        Raises :class:`UnknownCollectionError` for undeclared names.
        """
        try:
            return list(self._collections[name])
        except KeyError:
            raise UnknownCollectionError(name) from None

    def has_collection(self, name: str) -> bool:
        """Whether collection ``name`` is declared."""
        return name in self._collections

    def in_collection(self, name: str, obj: GraphObject) -> bool:
        """Whether ``obj`` is a member of collection ``name``."""
        return obj in self._collections.get(name, {})

    def collection_names(self) -> list[str]:
        """All declared collection names, sorted."""
        return sorted(self._collections)

    def collections_of(self, obj: GraphObject) -> list[str]:
        """Names of the collections ``obj`` belongs to, sorted."""
        return sorted(name for name, members in self._collections.items()
                      if obj in members)

    def detach_node(self, source: Oid) -> int:
        """Remove ``source``'s outgoing edges and collection memberships.

        The node itself stays — incoming links from other nodes remain
        valid — which makes this the primitive for *un-materializing* a
        derived page so it can be recomputed lazily.  Returns the number
        of edges removed.  Containers are replaced rather than mutated
        in place, so lists handed out earlier stay iterable.
        """
        removed = list(self._out.get(source, ()))
        if removed:
            self._out[source] = []
            self._edges.difference_update(removed)
            for target in {edge.target for edge in removed}:
                kept = [e for e in self._in.get(target, ())
                        if e.source != source]
                if kept:
                    self._in[target] = kept
                else:
                    self._in.pop(target, None)
        for name, members in list(self._collections.items()):
            if source in members:
                replaced = dict(members)
                del replaced[source]
                self._collections[name] = replaced
        return len(removed)

    # -- bulk operations ----------------------------------------------------------

    def import_graph(self, other: "Graph",
                     include_collections: bool = True) -> None:
        """Copy every node, edge and (optionally) collection of ``other``.

        Shared oids unify: importing does not rename anything, mirroring
        the paper's "graphs of the same database may share objects".
        Frozen status is *not* imported; callers decide what to freeze.
        """
        for node in other.nodes():
            self.add_node(node)
        for edge in other.edges():
            self.add_edge(edge.source, edge.label, edge.target)
        if include_collections:
            for name in other.collection_names():
                self.declare_collection(name)
                for member in other.collection(name):
                    self.add_to_collection(name, member)

    def copy(self, name: str | None = None) -> "Graph":
        """A structural copy of this graph (no frozen state)."""
        out = Graph(name if name is not None else self.name)
        out.import_graph(self)
        return out

    def subgraph(self, keep: Callable[[Oid], bool],
                 name: str = "") -> "Graph":
        """The induced subgraph on nodes satisfying ``keep``.

        Edges whose source survives are kept when their target is an atom
        or a surviving node.  Collection memberships of surviving objects
        are preserved.
        """
        out = Graph(name or self.name)
        for node in self.nodes():
            if keep(node):
                out.add_node(node)
        for edge in self.edges():
            if not keep(edge.source):
                continue
            if isinstance(edge.target, Oid) and not keep(edge.target):
                continue
            out.add_edge(edge.source, edge.label, edge.target)
        for cname in self.collection_names():
            for member in self.collection(cname):
                if isinstance(member, Atom) or keep(member):
                    out.declare_collection(cname)
                    out.add_to_collection(cname, member)
        return out

    # -- dunder ---------------------------------------------------------------

    def __contains__(self, obj: object) -> bool:
        if isinstance(obj, Oid):
            return obj in self._nodes
        if isinstance(obj, Edge):
            return obj in self._edges
        return False

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (f"Graph({self.name!r}, nodes={self.node_count}, "
                f"edges={self.edge_count}, "
                f"collections={len(self._collections)})")


class Database:
    """A set of named graphs that may share objects and collections.

    The repository (section 2.2) stores databases; StruQL queries name
    their input and output graphs, which this class resolves.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._graphs: dict[str, Graph] = {}

    def add_graph(self, graph: Graph) -> Graph:
        """Register ``graph`` under its own name; replaces any previous."""
        if not graph.name:
            raise GraphError("a database graph must be named")
        self._graphs[graph.name] = graph
        return graph

    def new_graph(self, name: str) -> Graph:
        """Create, register and return an empty graph called ``name``."""
        return self.add_graph(Graph(name))

    def graph(self, name: str) -> Graph:
        """Fetch graph ``name``; raises :class:`UnknownObjectError` if absent."""
        try:
            return self._graphs[name]
        except KeyError:
            raise UnknownObjectError(name) from None

    def has_graph(self, name: str) -> bool:
        """Whether a graph called ``name`` is registered."""
        return name in self._graphs

    def graph_names(self) -> list[str]:
        """Sorted names of all registered graphs."""
        return sorted(self._graphs)

    def remove_graph(self, name: str) -> None:
        """Drop graph ``name``; missing names are ignored."""
        self._graphs.pop(name, None)

    def __contains__(self, name: object) -> bool:
        return name in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    def __repr__(self) -> str:
        return f"Database({self.name!r}, graphs={sorted(self._graphs)})"


def ensure_object(value: Any) -> GraphObject:
    """Coerce a Python value to a :data:`GraphObject` (oid or atom)."""
    if isinstance(value, (Oid, Atom)):
        return value
    return Atom.of(value)
