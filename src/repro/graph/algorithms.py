"""Graph algorithms over the STRUDEL data model.

These are the traversal primitives the rest of the system builds on:

* regular-path evaluation needs label-filtered breadth-first search and
  transitive closure (:func:`reachable`, :func:`transitive_closure`);
* integrity-constraint verification needs reachability from roots and
  unreachable-node detection (:func:`unreachable_from`);
* the site layer uses :func:`shortest_path` to produce witness paths in
  constraint-violation reports and :func:`weakly_connected_components`
  for connectedness checks.

All functions treat atoms as sinks: edges may end in atoms, and an atom
can be a traversal target, but traversal never continues out of one.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator

from repro.graph.model import Edge, Graph, GraphObject, Oid

#: Predicate over edge labels used to restrict traversals.
LabelFilter = Callable[[str], bool]


def _any_label(label: str) -> bool:
    return True


def reachable(graph: Graph, start: Oid,
              label_ok: LabelFilter = _any_label,
              include_start: bool = True,
              include_atoms: bool = False) -> set[GraphObject]:
    """Objects reachable from ``start`` along edges whose label passes.

    ``include_start`` controls whether ``start`` itself is reported;
    ``include_atoms`` controls whether atom targets are reported (they
    are never expanded either way).
    """
    seen: set[GraphObject] = {start}
    out: set[GraphObject] = {start} if include_start else set()
    queue: deque[Oid] = deque([start])
    while queue:
        node = queue.popleft()
        for edge in graph.out_edges(node):
            if not label_ok(edge.label):
                continue
            target = edge.target
            if target in seen:
                continue
            seen.add(target)
            if isinstance(target, Oid):
                out.add(target)
                queue.append(target)
            elif include_atoms:
                out.add(target)
    return out


def reachable_many(graph: Graph, starts: Iterable[Oid],
                   label_ok: LabelFilter = _any_label) -> set[GraphObject]:
    """Union of :func:`reachable` over several start nodes."""
    out: set[GraphObject] = set()
    for start in starts:
        out |= reachable(graph, start, label_ok)
    return out


def unreachable_from(graph: Graph, roots: Iterable[Oid]) -> set[Oid]:
    """Nodes of ``graph`` not reachable from any of ``roots``.

    This is the check behind the paper's canonical integrity constraint
    "all pages are reachable from the root".
    """
    covered = reachable_many(graph, roots)
    return {node for node in graph.nodes() if node not in covered}


def shortest_path(graph: Graph, start: Oid, goal: GraphObject,
                  label_ok: LabelFilter = _any_label) -> list[Edge] | None:
    """A shortest edge path from ``start`` to ``goal``, or ``None``.

    Breadth-first, so the returned path has the minimum number of edges.
    """
    if start == goal:
        return []
    parent: dict[GraphObject, Edge] = {}
    seen: set[GraphObject] = {start}
    queue: deque[Oid] = deque([start])
    while queue:
        node = queue.popleft()
        for edge in graph.out_edges(node):
            if not label_ok(edge.label):
                continue
            target = edge.target
            if target in seen:
                continue
            seen.add(target)
            parent[target] = edge
            if target == goal:
                return _unwind(parent, start, target)
            if isinstance(target, Oid):
                queue.append(target)
    return None


def _unwind(parent: dict[GraphObject, Edge], start: Oid,
            goal: GraphObject) -> list[Edge]:
    path: list[Edge] = []
    cursor: GraphObject = goal
    while cursor != start:
        edge = parent[cursor]
        path.append(edge)
        cursor = edge.source
    path.reverse()
    return path


def transitive_closure(graph: Graph,
                       label_ok: LabelFilter = _any_label
                       ) -> dict[Oid, set[GraphObject]]:
    """Map each node to everything reachable from it (excluding itself
    unless it lies on a cycle)."""
    closure: dict[Oid, set[GraphObject]] = {}
    for node in graph.nodes():
        hits = reachable(graph, node, label_ok, include_start=False)
        if _on_cycle(graph, node, label_ok):
            hits.add(node)
        closure[node] = hits
    return closure


def _on_cycle(graph: Graph, node: Oid, label_ok: LabelFilter) -> bool:
    for edge in graph.out_edges(node):
        if not label_ok(edge.label):
            continue
        if edge.target == node:
            return True
        if isinstance(edge.target, Oid):
            if node in reachable(graph, edge.target, label_ok):
                return True
    return False


def weakly_connected_components(graph: Graph) -> list[set[Oid]]:
    """Weakly connected components over the node set.

    Atom targets tie their sources together: two nodes pointing at the
    same atom land in the same component, matching the intuition that
    shared content connects pages.
    """
    index: dict[GraphObject, int] = {}
    components: list[set[Oid]] = []
    for node in graph.nodes():
        if node in index:
            continue
        component: set[Oid] = set()
        queue: deque[GraphObject] = deque([node])
        index[node] = len(components)
        while queue:
            current = queue.popleft()
            if isinstance(current, Oid):
                component.add(current)
                neighbours: list[GraphObject] = (
                    [e.target for e in graph.out_edges(current)]
                    + [e.source for e in graph.in_edges(current)])
            else:
                neighbours = [e.source for e in graph.in_edges(current)]
            for other in neighbours:
                if other not in index:
                    index[other] = len(components)
                    queue.append(other)
        components.append(component)
    return components


def iter_paths(graph: Graph, start: Oid, max_length: int,
               label_ok: LabelFilter = _any_label) -> Iterator[list[Edge]]:
    """Yield every simple edge path from ``start`` up to ``max_length``.

    Used by the template language's bounded attribute-path traversal and
    by tests; paths never revisit a node, so the enumeration terminates
    on cyclic graphs.
    """
    def walk(node: Oid, path: list[Edge], visited: set[Oid]
             ) -> Iterator[list[Edge]]:
        if len(path) >= max_length:
            return
        for edge in graph.out_edges(node):
            if not label_ok(edge.label):
                continue
            yield path + [edge]
            target = edge.target
            if isinstance(target, Oid) and target not in visited:
                yield from walk(target, path + [edge], visited | {target})

    yield from walk(start, [], {start})


def graph_diameter(graph: Graph) -> int:
    """Longest shortest-path (in edges) between any reachable node pair.

    Infinite graphs cannot occur (the model is finite); disconnected
    pairs are ignored.  Used by site-structure metrics in the benchmark
    harness (the Fig 8 "complexity of structure" axis).
    """
    best = 0
    for start in graph.nodes():
        depths = _bfs_depths(graph, start)
        if depths:
            best = max(best, max(depths.values()))
    return best


def _bfs_depths(graph: Graph, start: Oid) -> dict[Oid, int]:
    depths: dict[Oid, int] = {}
    queue: deque[tuple[Oid, int]] = deque([(start, 0)])
    seen: set[Oid] = {start}
    while queue:
        node, depth = queue.popleft()
        for edge in graph.out_edges(node):
            target = edge.target
            if isinstance(target, Oid) and target not in seen:
                seen.add(target)
                depths[target] = depth + 1
                queue.append((target, depth + 1))
    return depths
