"""A dynamic page server simulation over click-time evaluation.

The paper notes STRUDEL's prototype precomputes sites and that
supporting dynamic generation "requires significant systems-design
effort"; this module provides the in-process equivalent: a
:class:`DynamicSiteServer` that answers page requests by computing the
requested page's query at click time (through
:class:`~repro.site.incremental.DynamicSite` /
:class:`~repro.site.incremental.LazySiteGraph`) and rendering it with
the ordinary HTML generator.  Request latencies are recorded, so the
materialized-vs-dynamic trade-off of benchmark A3 can be measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import PageNotFoundError
from repro.graph.model import Graph, Oid
from repro.site.incremental import DynamicSite, LazySiteGraph
from repro.struql.ast import Query
from repro.struql.evaluator import QueryEngine
from repro.templates.generator import HtmlGenerator, TemplateSet


@dataclass
class Response:
    """One served page."""

    oid: Oid
    status: int
    body: str
    seconds: float


@dataclass
class ServerLog:
    """Aggregated request statistics."""

    requests: int = 0
    errors: int = 0
    total_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        """Mean per-request seconds (0 when nothing served)."""
        return self.total_seconds / self.requests if self.requests else 0.0


class DynamicSiteServer:
    """Serves one site's pages, computing each at click time."""

    def __init__(self, query: Query | str, data: Graph,
                 templates: TemplateSet,
                 engine: QueryEngine | None = None,
                 cache: bool = True, loader=None) -> None:
        self.site = DynamicSite(query, data, engine=engine, cache=cache)
        self.graph = LazySiteGraph(self.site)
        self.generator = HtmlGenerator(self.graph, templates, loader=loader)
        self.log = ServerLog()

    # -- routing -------------------------------------------------------------

    def roots(self) -> list[Oid]:
        """The site's precomputed entry points."""
        return self.site.roots()

    def resolve_path(self, path: str) -> Oid | None:
        """Map a URL path back to a page oid (inverse of ``url_for``)."""
        wanted = path.lstrip("/")
        for node in list(self.graph.nodes()):
            if self.generator.url_for(node) == wanted:
                return node
        return None

    def request(self, page: Oid | str) -> Response:
        """Serve one page by oid or URL path."""
        started = time.perf_counter()
        self.log.requests += 1
        oid = page if isinstance(page, Oid) else self.resolve_path(page)
        try:
            if oid is None:
                raise PageNotFoundError(page)
            self.graph.ensure(oid)
            if not self.graph.has_node(oid):
                raise PageNotFoundError(oid)
            body = self.generator.render(oid)
            status = 200
        except PageNotFoundError:
            body = "<h1>404 Not Found</h1>"
            status = 404
            self.log.errors += 1
        elapsed = time.perf_counter() - started
        self.log.total_seconds += elapsed
        self.log.latencies.append(elapsed)
        return Response(oid if isinstance(oid, Oid) else Oid("<unknown>"),
                        status, body, elapsed)

    def crawl(self, start: Oid | None = None,
              limit: int | None = None) -> list[Response]:
        """Breadth-first crawl following page links (a synthetic user).

        Serves ``start`` (default: the first root) and every page
        reachable from it, up to ``limit`` pages.
        """
        roots = [start] if start is not None else self.roots()[:1]
        if not roots:
            return []
        out: list[Response] = []
        queue: list[Oid] = list(roots)
        seen: set[Oid] = set(queue)
        while queue:
            if limit is not None and len(out) >= limit:
                break
            oid = queue.pop(0)
            response = self.request(oid)
            out.append(response)
            for edge in self.graph.out_edges(oid):
                target = edge.target
                if isinstance(target, Oid) and target not in seen \
                        and target.skolem_fn is not None \
                        and self.generator.is_page(target):
                    seen.add(target)
                    queue.append(target)
        return out

    def invalidate(self) -> None:
        """Propagate a data-graph update: drop caches and lazily rebuild."""
        self.site.invalidate()
        fresh = LazySiteGraph(self.site)
        self.graph = fresh
        self.generator = HtmlGenerator(fresh, self.generator.templates,
                                       loader=self.generator.loader)
