"""A dynamic page server simulation over click-time evaluation.

The paper notes STRUDEL's prototype precomputes sites and that
supporting dynamic generation "requires significant systems-design
effort"; this module provides the in-process equivalent: a
:class:`DynamicSiteServer` that answers page requests by computing the
requested page's query at click time (through
:class:`~repro.site.incremental.DynamicSite` /
:class:`~repro.site.incremental.LazySiteGraph`) and rendering it with
the ordinary HTML generator.  Request latencies are recorded through
the shared observability layer (:mod:`repro.obs`), so the
materialized-vs-dynamic trade-off of benchmark A3 can be measured and
long crawls no longer grow an unbounded latency list.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
from dataclasses import dataclass

from repro.errors import PageNotFoundError, StrudelError
from repro.graph.model import Graph, Oid
from repro.obs.lineage import get_lineage
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.obs.trace import TimedResult, emit_event, get_recorder, timed
from repro.site.incremental import DynamicSite, LazySiteGraph
from repro.struql.ast import Query
from repro.struql.evaluator import QueryEngine
from repro.struql.matview import ChangeSummary, MatViewRegistry
from repro.templates.generator import HtmlGenerator, TemplateSet

#: Histogram bucket bounds (seconds) for request latencies — the shared
#: per-request defaults (100 µs .. 10 s, roughly geometric).
SERVER_LATENCY_BUCKETS: tuple[float, ...] = DEFAULT_BUCKETS

#: Reservoir size for the raw-latency sample: large enough for stable
#: percentile sanity checks, small enough to stay O(1) per crawl.
SERVER_RESERVOIR_SIZE = 512

#: Fixed seed for the reservoir's RNG so crawls sample reproducibly.
SERVER_RESERVOIR_SEED = 0x5EED

#: How many slowest requests the log keeps for the dashboard.
SERVER_SLOWEST_KEPT = 16

#: Default ``server.slow_request`` warn threshold, in seconds.  At 0
#: every request that enters the slowest-requests heap emits the WARN
#: event, so the event log and the heap tell the same story; raise it
#: (``ServerLog.slow_warn_seconds``, or ``repro serve --slow-ms``) to
#: warn only on genuinely slow requests.
SERVER_SLOW_WARN_SECONDS = 0.0


def classify_error(exc: BaseException) -> tuple[int, str]:
    """Map an exception raised while serving to ``(status, kind)``.

    ``PageNotFoundError`` is the client's fault (404, ``not_found``);
    any other library error is a server-side failure (500) classified
    by subsystem so error counters stay diagnosable.
    """
    if isinstance(exc, PageNotFoundError):
        return 404, "not_found"
    if isinstance(exc, StrudelError):
        return 500, type(exc).__name__
    return 500, "internal"


@dataclass
class Response(TimedResult):
    """One served page; ``seconds`` comes from its request span."""

    oid: Oid
    status: int
    body: str
    request_id: str = ""


class ServerLog:
    """Aggregated request statistics.

    Latencies feed a fixed-bucket :class:`~repro.obs.metrics.Histogram`
    (bounded memory, percentile summaries) plus a small reservoir
    sample.  The old unbounded ``latencies`` list is deprecated: the
    property now exposes the reservoir as a read-only tuple, capped at
    :data:`SERVER_RESERVOIR_SIZE` entries however long the crawl.  The
    log also keeps the :data:`SERVER_SLOWEST_KEPT` slowest requests
    (id, page, status, seconds) for the monitoring dashboard, and
    :meth:`snapshot` returns the whole picture as a plain dict.
    """

    #: Back-compat alias of :data:`SERVER_RESERVOIR_SIZE`.
    MAX_SAMPLES = SERVER_RESERVOIR_SIZE

    def __init__(self,
                 slow_warn_seconds: float = SERVER_SLOW_WARN_SECONDS
                 ) -> None:
        self.requests = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.slow_warn_seconds = slow_warn_seconds
        self.histogram = Histogram("server.request_seconds",
                                   SERVER_LATENCY_BUCKETS)
        self._samples: list[float] = []
        self._rng = random.Random(SERVER_RESERVOIR_SEED)
        self._request_ids = itertools.count(1)
        # Min-heap of (seconds, tiebreak, entry) keeping the slowest.
        self._slowest: list[tuple[float, int, dict]] = []
        self._slowest_seq = itertools.count()
        # Guards requests/errors/total_seconds/samples/slowest so the
        # threaded HTTP front end never loses an update; the histogram
        # and the metrics registry carry their own locks.
        self._lock = threading.Lock()

    def next_request_id(self) -> str:
        """A fresh stable request id (``req-1``, ``req-2``, ...)."""
        return f"req-{next(self._request_ids)}"

    def count_request(self) -> None:
        """Account one request arrival (atomic under concurrency)."""
        with self._lock:
            self.requests += 1

    def count_error(self) -> None:
        """Account one failed request (atomic under concurrency)."""
        with self._lock:
            self.errors += 1

    def record(self, seconds: float, request_id: str = "",
               page: str = "", status: int | None = None) -> None:
        """Account one served request's latency.

        ``request_id``/``page``/``status`` are optional context; when
        given, the request competes for the slowest-requests table, and
        landing there at or above :attr:`slow_warn_seconds` emits a
        ``server.slow_request`` WARN event — the event log and the heap
        tell the same story.
        """
        self.histogram.observe(seconds)
        get_recorder().metrics.histogram(
            "server.request_seconds").observe(seconds)
        entered_slowest = False
        with self._lock:
            self.total_seconds += seconds
            if len(self._samples) < self.MAX_SAMPLES:
                self._samples.append(seconds)
            else:
                slot = self._rng.randrange(self.histogram.count)
                if slot < self.MAX_SAMPLES:
                    self._samples[slot] = seconds
            if request_id or page:
                entry = {"id": request_id, "page": page,
                         "status": status, "seconds": seconds}
                item = (seconds, next(self._slowest_seq), entry)
                if len(self._slowest) < SERVER_SLOWEST_KEPT:
                    heapq.heappush(self._slowest, item)
                    entered_slowest = True
                elif seconds > self._slowest[0][0]:
                    heapq.heapreplace(self._slowest, item)
                    entered_slowest = True
        if entered_slowest and seconds >= self.slow_warn_seconds:
            get_recorder().metrics.counter("server.slow_requests").inc()
            emit_event("warning", "server.slow_request",
                       f"{request_id or page} took "
                       f"{seconds * 1000:.1f} ms",
                       request=request_id, page=page, status=status,
                       ms=round(seconds * 1000, 3))

    @property
    def slowest(self) -> list[dict]:
        """The slowest recorded requests, slowest first."""
        with self._lock:
            items = list(self._slowest)
        return [entry for _, _, entry in sorted(items, reverse=True)]

    def snapshot(self) -> dict:
        """The full request-log state as a plain dict (dashboard food)."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "total_seconds": self.total_seconds,
            "mean_latency": self.mean_latency,
            "p50_latency": self.p50_latency,
            "p95_latency": self.p95_latency,
            "histogram": self.histogram.summary(),
            "samples": list(self.latencies),
            "slowest": self.slowest,
        }

    @property
    def latencies(self) -> tuple[float, ...]:
        """A bounded reservoir sample of per-request seconds.

        Deprecated as a mutable list; kept as a read-only view for
        existing consumers.
        """
        with self._lock:
            return tuple(self._samples)

    @property
    def mean_latency(self) -> float:
        """Mean per-request seconds (0 when nothing served)."""
        return self.total_seconds / self.requests if self.requests else 0.0

    @property
    def p50_latency(self) -> float:
        """Median request seconds, from the histogram."""
        return self.histogram.percentile(0.50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile request seconds, from the histogram."""
        return self.histogram.percentile(0.95)


#: Default bound on concurrent page computations per server (the
#: admission guard of the body materialized-view registry).
SERVER_MAX_INFLIGHT = 8


class DynamicSiteServer:
    """Serves one site's pages, computing each at click time.

    Rendered page bodies are materialized views
    (:class:`~repro.struql.matview.MatViewRegistry`): a hit serves
    bytes without touching the site graph or holding any site lock,
    and a miss computes once per page however many threads ask
    (single-flight), with at most :data:`SERVER_MAX_INFLIGHT`
    computations running at a time.  Each body's view records the
    Skolem functions its render actually read, so
    :meth:`invalidate` with a
    :class:`~repro.struql.matview.ChangeSummary` drops only the
    bodies whose footprint the change intersects.
    """

    def __init__(self, query: Query | str, data: Graph,
                 templates: TemplateSet,
                 engine: QueryEngine | None = None,
                 cache: bool = True, loader=None,
                 max_inflight: int = SERVER_MAX_INFLIGHT) -> None:
        self.site = DynamicSite(query, data, engine=engine, cache=cache)
        self.graph = LazySiteGraph(self.site)
        self.generator = HtmlGenerator(self.graph, templates, loader=loader)
        self.log = ServerLog()
        self.matviews = MatViewRegistry(max_views=self.site.max_pages,
                                        max_inflight=max_inflight)
        self._body_cache_enabled = cache
        self._url_map: dict[str, Oid] | None = None
        self._url_map_size = -1

    # -- routing -------------------------------------------------------------

    def roots(self) -> list[Oid]:
        """The site's precomputed entry points."""
        return self.site.roots()

    def resolve_path(self, path: str) -> Oid | None:
        """Map a URL path back to a page oid (inverse of ``url_for``).

        Backed by a url->oid map rebuilt only when the lazy graph has
        materialized new nodes, so steady-state resolution is O(1)
        instead of a linear scan over every page per request.
        """
        wanted = path.lstrip("/")
        # Rebuild under the site lock: concurrent handler threads must
        # not iterate the lazy graph while another one materializes.
        # The map is merged, never rebuilt from scratch: a page's URL
        # is a pure function of its oid and the data graph is additive,
        # so routes learned before an invalidation stay valid after it
        # (the fresh lazy graph re-materializes the page on demand).
        # Rebuilding from only-materialized nodes would 404 every deep
        # URL after a full flush until something re-requested it by oid.
        with self.site.lock:
            if self._url_map is None or \
                    self._url_map_size != self.graph.node_count:
                url_map: dict[str, Oid] = dict(self._url_map or {})
                for node in list(self.graph.nodes()):
                    url_map.setdefault(self.generator.url_for(node),
                                       node)
                self._url_map = url_map
                self._url_map_size = self.graph.node_count
            return self._url_map.get(wanted)

    def _remember_route(self, oid: Oid) -> None:
        """Register a served page's URL in the route map.

        Serving by oid (priming, crawling, link traversal) teaches the
        router the page's URL immediately, so a URL request never
        depends on a prior ``resolve_path`` scan having seen the page
        materialized — in particular, routes learned here survive a
        full invalidation that swaps in an empty lazy graph.
        """
        with self.site.lock:
            if self._url_map is None:
                self._url_map = {}
            self._url_map.setdefault(self.generator.url_for(oid), oid)

    def warm(self) -> int:
        """Compute the site query and materialize every root page.

        The readiness gate of the HTTP front end: once this returns,
        the data graph is loaded and the site query has produced its
        entry points, so click-time requests can be answered.  Returns
        the number of roots warmed.
        """
        roots = self.roots()
        for oid in roots:
            self.graph.ensure(oid)
        return len(roots)

    def _serve_body(self, oid: Oid) -> str:
        """One page's HTML, served from the body view cache.

        A miss renders through :meth:`LazySiteGraph.collecting_deps`,
        so the stored view's footprint is the union of the footprints
        of every page view the render touched — templates traverse
        links, so a body can depend on more pages than its own.  Only
        successful renders are cached; errors propagate uncached.
        """
        graph = self.graph
        generator = self.generator
        site = self.site
        deps: set[str] = set()

        def compute() -> str:
            with graph.collecting_deps() as touched:
                graph.ensure(oid)
                if not graph.has_node(oid):
                    raise PageNotFoundError(oid)
                rendered = generator.render(oid)
            deps.update(touched)
            return rendered

        if not self._body_cache_enabled:
            return compute()
        return self.matviews.get_or_compute(
            str(oid), compute,
            fingerprint=site.fingerprint,
            footprint=lambda: site.footprint_for_fns(deps),
            sources=(site.data.name,))

    def request(self, page: Oid | str,
                request_id: str | None = None) -> Response:
        """Serve one page by oid or URL path.

        Every request gets a stable id (``req-N``) stamped onto its
        span, its :class:`Response`, and the events it emits, so one
        request's records correlate across the span tree, the event
        log and the slowest-requests table.  A front end that already
        assigned an id (the HTTP plane's ``X-Request-Id``) passes it as
        ``request_id`` so all layers tell one story.

        Failures are classified (:func:`classify_error`): unknown pages
        are 404s; any other error is answered as a 500 whose span gains
        an ``error`` attribute, which keeps the trace in the tail
        sampler's error ring.
        """
        self.log.count_request()
        if request_id is None:
            request_id = self.log.next_request_id()
        with timed("server.request", request=request_id) as span:
            oid = page if isinstance(page, Oid) else self.resolve_path(page)
            try:
                if oid is None:
                    raise PageNotFoundError(page)
                body = self._serve_body(oid)
                status = 200
                self._remember_route(oid)
                lineage = get_lineage()
                if lineage.enabled:
                    # Served pages join the lineage index as they are
                    # clicked, so /debug/lineage?page= answers for any
                    # page a visitor has actually seen.
                    lineage.record_page(
                        self.generator.url_for(oid), oid,
                        self.generator.template_for(oid) or "")
            except Exception as exc:
                status, kind = classify_error(exc)
                self.log.count_error()
                get_recorder().metrics.counter("server.errors").inc()
                get_recorder().metrics.counter(
                    f"server.errors.{kind}").inc()
                if status == 404:
                    body = "<h1>404 Not Found</h1>"
                    emit_event("warning", "server.not_found",
                               f"no page for {page}",
                               request=request_id, page=str(page))
                else:
                    body = (f"<h1>500 Internal Server Error</h1>"
                            f"<p>{kind}</p>")
                    span.set(error=kind)
                    emit_event("error", "server.error", str(exc),
                               request=request_id, page=str(page),
                               kind=kind)
            span.set(page=str(page), status=status)
            # Emit before the span closes so the event carries its ids.
            emit_event("info", "server.request", request=request_id,
                       page=str(page), status=status,
                       ms=round(span.seconds * 1000, 3))
        self.log.record(span.seconds, request_id=request_id,
                        page=str(page), status=status)
        get_recorder().metrics.counter("server.requests").inc()
        return Response(oid if isinstance(oid, Oid) else Oid("<unknown>"),
                        status, body, span=span, request_id=request_id)

    def crawl(self, start: Oid | None = None,
              limit: int | None = None) -> list[Response]:
        """Breadth-first crawl following page links (a synthetic user).

        Serves ``start`` (default: the first root) and every page
        reachable from it, up to ``limit`` pages.
        """
        roots = [start] if start is not None else self.roots()[:1]
        if not roots:
            return []
        out: list[Response] = []
        queue: list[Oid] = list(roots)
        seen: set[Oid] = set(queue)
        while queue:
            if limit is not None and len(out) >= limit:
                break
            oid = queue.pop(0)
            response = self.request(oid)
            out.append(response)
            for edge in self.graph.out_edges(oid):
                target = edge.target
                if isinstance(target, Oid) and target not in seen \
                        and target.skolem_fn is not None \
                        and self.generator.is_page(target):
                    seen.add(target)
                    queue.append(target)
        return out

    def cache_snapshot(self) -> dict:
        """The click-time cache statistics, reconciled.

        One consistent read of :meth:`DynamicSite.stats_snapshot` —
        page-cache and bindings-cache hit/miss/eviction counters stay
        distinct so the totals add up (``page_cache_hits +
        page_cache_misses`` equals page lookups; ``pages_computed ==
        page_cache_misses``).
        """
        return self.site.stats_snapshot()

    def invalidate(self, change: ChangeSummary | None = None) -> None:
        """Propagate a data-graph update: drop caches and lazily rebuild.

        Without a :class:`~repro.struql.matview.ChangeSummary` this
        flushes everything — the pre-matview behavior and the sound
        fallback when the caller cannot describe what changed.  With
        one, only the page views, bindings and rendered bodies whose
        footprint intersects the change are dropped: the rest keep
        serving from cache.
        """
        with self.site.lock:
            affected = self.site.invalidate(change)
            if affected is None:
                fresh = LazySiteGraph(self.site)
                self.graph = fresh
                self.generator = HtmlGenerator(
                    fresh, self.generator.templates,
                    loader=self.generator.loader)
                # Known routes survive the flush (see resolve_path);
                # only the size watermark resets so the next resolve
                # merges whatever the fresh graph has materialized.
                self._url_map_size = -1
                self.matviews.invalidate()
            else:
                self.graph.unmaterialize(affected)
                self.matviews.invalidate(change)

    def update(self, mutate, change: ChangeSummary | None = None):
        """Apply a data mutation and propagate invalidation atomically.

        ``mutate(data_graph)`` runs under the site lock, so concurrent
        page computes never observe a half-applied change; ``change``
        then drives :meth:`invalidate` before the lock is released.
        When ``change`` is omitted and ``mutate`` returns a
        :class:`~repro.struql.matview.ChangeSummary`, that summary
        drives the invalidation; any other return value falls back to
        the full flush.  Returns whatever ``mutate`` returned.
        """
        with self.site.lock:
            result = mutate(self.site.data)
            if change is None and isinstance(result, ChangeSummary):
                change = result
            self.invalidate(change)
            return result
