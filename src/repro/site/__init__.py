"""Site layer: builder pipeline, site schemas, verification, dynamics."""

from repro.site.builder import SiteMetrics, Website
from repro.site.buildcache import (
    BuildCache,
    BuildPlan,
    BuildReport,
    cached_generate,
    hash_templates,
    page_fingerprint,
)
from repro.site.diff import RefreshResult, SiteDiff, diff_graphs, refresh_site
from repro.site.forms import FormHandler, FormResponse, register_string_predicates
from repro.site.incremental import DynamicSite, LazySiteGraph, PageView
from repro.site.schema import NS, SchemaEdge, SiteSchema, build_site_schema
from repro.site.server import DynamicSiteServer, Response, ServerLog
from repro.site.verify import (
    Connected,
    PathReachability,
    Constraint,
    Finding,
    ForbiddenContent,
    ForbiddenLink,
    ReachableFromRoot,
    RequiredLink,
    VerificationReport,
    Verifier,
)

__all__ = [
    "BuildCache",
    "BuildPlan",
    "BuildReport",
    "Connected",
    "Constraint",
    "DynamicSite",
    "DynamicSiteServer",
    "Finding",
    "ForbiddenContent",
    "FormHandler",
    "FormResponse",
    "ForbiddenLink",
    "LazySiteGraph",
    "NS",
    "PageView",
    "PathReachability",
    "ReachableFromRoot",
    "RefreshResult",
    "RequiredLink",
    "Response",
    "SchemaEdge",
    "ServerLog",
    "SiteDiff",
    "SiteMetrics",
    "SiteSchema",
    "VerificationReport",
    "Verifier",
    "Website",
    "build_site_schema",
    "cached_generate",
    "diff_graphs",
    "hash_templates",
    "page_fingerprint",
    "refresh_site",
    "register_string_predicates",
]
