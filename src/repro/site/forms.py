"""Form-driven dynamic pages (paper section 1).

    Web pages that depend on user input, e.g., from forms, cannot be
    materialized statically, but must be created dynamically.

A :class:`FormHandler` pairs a *parameterized* StruQL query (declared
form parameters are bound at request time) with a template set.  Each
request evaluates the query over the data graph with the submitted
parameters, renders the query's result page, and returns the HTML —
exactly the click-time path, but for pages whose identity includes user
input.  Results are cached per parameter tuple ("cache query results to
reduce click time for future queries").

String-matching built-ins useful in form queries (``contains``,
``startsWith``, ``endsWith``) are registered on the handler's engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SiteError
from repro.graph.model import Graph, Oid
from repro.graph.values import Atom
from repro.obs.trace import TimedResult, emit_event, get_recorder, timed
from repro.struql.ast import Query
from repro.struql.bindings import Binding
from repro.struql.evaluator import QueryEngine
from repro.struql.parser import parse_query
from repro.struql.predicates import PredicateRegistry, default_registry
from repro.templates.formats import FileLoader
from repro.templates.generator import HtmlGenerator, TemplateSet


def _text(value) -> str:
    if isinstance(value, Atom):
        return str(value.value)
    return str(value)


def register_string_predicates(registry: PredicateRegistry) -> None:
    """Add ``contains``/``startsWith``/``endsWith``/``iequals``."""
    registry.register(
        "contains", lambda hay, needle:
        _text(needle).lower() in _text(hay).lower())
    registry.register(
        "startsWith", lambda hay, prefix:
        _text(hay).lower().startswith(_text(prefix).lower()))
    registry.register(
        "endsWith", lambda hay, suffix:
        _text(hay).lower().endswith(_text(suffix).lower()))
    registry.register(
        "iequals", lambda a, b: _text(a).lower() == _text(b).lower())


@dataclass
class FormResponse(TimedResult):
    """One answered form submission; ``seconds`` comes from its
    ``form.submit`` span."""

    html: str
    page: Oid
    from_cache: bool


class FormHandler:
    """Answers form submissions by parameterized query evaluation.

    ``query`` must declare its parameters (``parse_query(text,
    params=(...))`` or the ``params`` argument here), and its result
    page — the page rendered as the response — is the Skolem function
    named by ``result_fn`` applied to the parameters in declaration
    order.
    """

    def __init__(self, query: Query | str, data: Graph,
                 templates: TemplateSet, result_fn: str,
                 params: tuple[str, ...] = (),
                 engine: QueryEngine | None = None,
                 loader: FileLoader | None = None,
                 cache: bool = True) -> None:
        if isinstance(query, str):
            query = parse_query(query, params=params)
        if not query.params:
            raise SiteError("a form query must declare parameters")
        self.query = query
        self.data = data
        self.templates = templates
        self.result_fn = result_fn
        if engine is None:
            registry = default_registry()
            register_string_predicates(registry)
            engine = QueryEngine(predicates=registry)
        self.engine = engine
        self.loader = loader
        self._cache_enabled = cache
        self._cache: dict[tuple, FormResponse] = {}
        self.stats = {"requests": 0, "cache_hits": 0, "evaluations": 0}

    def submit(self, **params) -> FormResponse:
        """Answer one submission; parameter names must match the
        query's declared parameters."""
        self.stats["requests"] += 1
        metrics = get_recorder().metrics
        metrics.counter("forms.requests").inc()
        missing = [p for p in self.query.params if p not in params]
        if missing:
            raise SiteError(f"missing form parameter(s): "
                            f"{', '.join(missing)}")
        extra = [p for p in params if p not in self.query.params]
        if extra:
            raise SiteError(f"unknown form parameter(s): "
                            f"{', '.join(extra)}")
        values = tuple(Atom.of(params[p]) if not isinstance(
            params[p], (Atom, Oid)) else params[p]
            for p in self.query.params)
        key = values
        with timed("form.submit") as span:
            if self._cache_enabled and key in self._cache:
                self.stats["cache_hits"] += 1
                metrics.counter("forms.cache_hits").inc()
                span.set(cached=True)
                emit_event("info", "form.submit", cached=True,
                           result_fn=self.result_fn)
                cached = self._cache[key]
                return FormResponse(cached.html, cached.page, True,
                                    span=span)
            span.set(cached=False)
            initial: Binding = dict(zip(self.query.params, values))
            result = self.engine.evaluate(self.query, self.data,
                                          initial=initial)
            self.stats["evaluations"] += 1
            metrics.counter("forms.evaluations").inc()
            page = Oid.skolem(self.result_fn, values)
            if not result.output.has_node(page):
                raise SiteError(
                    f"form query did not create result page {page}")
            generator = HtmlGenerator(result.output, self.templates,
                                      loader=self.loader)
            html = generator.render(page)
            response = FormResponse(html, page, False, span=span)
            emit_event("info", "form.submit", cached=False,
                       result_fn=self.result_fn, page=str(page))
        metrics.histogram("forms.submit_seconds").observe(span.seconds)
        if self._cache_enabled:
            self._cache[key] = response
        return response

    def invalidate(self) -> None:
        """Drop cached responses after a data update."""
        self._cache.clear()
