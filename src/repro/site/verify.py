"""Integrity-constraint verification on Web sites [FER 98b].

The paper's motivating constraints (section 1): "all pages are reachable
from the root, every organization homepage points to the homepages of
its suborganization, or proprietary data is not displayed on the
external version of the site".  Site schemas are "the basic tool used
for verifying integrity constraints on the structure of a site".

Each constraint here verifies at two levels where both make sense:

* **schema level** — a static check over the :class:`SiteSchema`, i.e.
  over *all* sites the query can generate (sound necessary conditions);
* **graph level** — a check over one concrete site graph, producing
  witness nodes for violations.

:class:`Verifier` runs a constraint set and returns a
:class:`VerificationReport`; :meth:`Verifier.verify_or_raise` raises
:class:`~repro.errors.ConstraintViolation` on the first failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ConstraintViolation
from repro.graph.algorithms import unreachable_from
from repro.graph.model import Graph, GraphObject, Oid
from repro.graph.values import Atom
from repro.site.schema import NS, SiteSchema


@dataclass
class Finding:
    """One verification outcome for one constraint."""

    constraint: str
    level: str                  # "schema" | "graph"
    ok: bool
    witnesses: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "ok" if self.ok else "VIOLATED"
        detail = f" ({'; '.join(self.witnesses[:3])})" if self.witnesses \
            else ""
        return f"[{self.level}] {self.constraint}: {status}{detail}"


@dataclass
class VerificationReport:
    """All findings from one verification run."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every constraint held."""
        return all(f.ok for f in self.findings)

    def violations(self) -> list[Finding]:
        """The failed findings."""
        return [f for f in self.findings if not f.ok]

    def __str__(self) -> str:
        return "\n".join(str(f) for f in self.findings) or "(no constraints)"


class Constraint:
    """Base class for site constraints."""

    name = "constraint"

    def check_schema(self, schema: SiteSchema) -> Finding | None:
        """Static check; ``None`` when the constraint has no schema form."""
        return None

    def check_graph(self, graph: Graph) -> Finding | None:
        """Concrete-site check; ``None`` when not applicable."""
        return None


class ReachableFromRoot(Constraint):
    """"All pages are reachable from the root."

    Schema level: every schema node is reachable from the root Skolem
    function's node.  Graph level: every site-graph node is reachable
    from the root function's pages.
    """

    def __init__(self, root_fn: str) -> None:
        self.root_fn = root_fn
        self.name = f"reachable-from-{root_fn}"

    def check_schema(self, schema: SiteSchema) -> Finding:
        if self.root_fn not in schema.nodes:
            return Finding(self.name, "schema", False,
                           [f"no Skolem function {self.root_fn!r} in schema"])
        reachable = schema.reachable_from(self.root_fn)
        missing = [n for n in schema.nodes
                   if n not in reachable and n != NS]
        return Finding(self.name, "schema", not missing,
                       [f"unreachable schema node {n}" for n in missing])

    def check_graph(self, graph: Graph) -> Finding:
        roots = [n for n in graph.nodes() if n.skolem_fn == self.root_fn]
        if not roots:
            return Finding(self.name, "graph", False,
                           [f"no pages created by {self.root_fn!r}"])
        missing = unreachable_from(graph, roots)
        return Finding(self.name, "graph", not missing,
                       [f"unreachable page {n}" for n in sorted(
                           missing, key=str)])


class RequiredLink(Constraint):
    """"Every F page points to a G page via label L" — e.g. "every
    organization homepage points to the homepages of its
    suborganizations"."""

    def __init__(self, source_fn: str, label: str,
                 target_fn: str | None = None) -> None:
        self.source_fn = source_fn
        self.label = label
        self.target_fn = target_fn
        goal = target_fn or "*"
        self.name = f"required-link-{source_fn}-{label}->{goal}"

    def check_schema(self, schema: SiteSchema) -> Finding:
        for edge in schema.out_edges(self.source_fn):
            if edge.label == self.label and not edge.label_is_var:
                if self.target_fn is None or edge.target == self.target_fn:
                    return Finding(self.name, "schema", True)
        # An arc-variable edge may carry any label at run time: only a
        # graph-level check can decide, so report "possible" as ok=True
        # when one exists, else a definite schema violation.
        if any(e.label_is_var for e in schema.out_edges(self.source_fn)):
            return Finding(self.name, "schema", True,
                           ["satisfied only via arc-variable edge; "
                            "confirm at graph level"])
        return Finding(self.name, "schema", False,
                       [f"no {self.label!r} link out of {self.source_fn}"])

    def check_graph(self, graph: Graph) -> Finding:
        witnesses = []
        for node in graph.nodes():
            if node.skolem_fn != self.source_fn:
                continue
            targets = graph.get(node, self.label)
            if self.target_fn is not None:
                targets = [t for t in targets if isinstance(t, Oid)
                           and t.skolem_fn == self.target_fn]
            if not targets:
                witnesses.append(f"page {node} lacks {self.label!r} link")
        return Finding(self.name, "graph", not witnesses, witnesses)


class ForbiddenLink(Constraint):
    """"No F page carries an L link" — structural exclusion."""

    def __init__(self, source_fn: str, label: str) -> None:
        self.source_fn = source_fn
        self.label = label
        self.name = f"forbidden-link-{source_fn}-{label}"

    def check_schema(self, schema: SiteSchema) -> Finding:
        hits = [e for e in schema.out_edges(self.source_fn)
                if e.label == self.label and not e.label_is_var]
        maybe = [e for e in schema.out_edges(self.source_fn)
                 if e.label_is_var]
        witnesses = [f"schema edge {e}" for e in hits]
        witnesses += [f"possible via arc variable: {e}" for e in maybe]
        return Finding(self.name, "schema", not hits, witnesses)

    def check_graph(self, graph: Graph) -> Finding:
        witnesses = []
        for node in graph.nodes():
            if node.skolem_fn == self.source_fn and \
                    graph.get(node, self.label):
                witnesses.append(f"page {node} has {self.label!r} link")
        return Finding(self.name, "graph", not witnesses, witnesses)


class ForbiddenContent(Constraint):
    """"Proprietary data is not displayed on the external version."

    Fails for every atom in the site graph satisfying ``predicate``
    (e.g. membership in a proprietary-values set).
    """

    def __init__(self, name: str,
                 predicate: Callable[[Atom], bool]) -> None:
        self.name = f"forbidden-content-{name}"
        self.predicate = predicate

    def check_graph(self, graph: Graph) -> Finding:
        witnesses = []
        for edge in graph.edges():
            if isinstance(edge.target, Atom) and self.predicate(edge.target):
                witnesses.append(
                    f"{edge.source} -{edge.label}-> {edge.target}")
        return Finding(self.name, "graph", not witnesses, witnesses)


class PathReachability(Constraint):
    """"Every F page is reachable from some G page via path R."

    The paper: regular path expressions "can express integrity
    constraints on a site graph, e.g. [...] 'every department member is
    reachable from a department page'".  ``path_text`` is a regular
    path expression in StruQL's surface syntax (e.g. ``"Member" |
    "Org"."Member"`` or ``*``).
    """

    def __init__(self, source_fn: str, path_text: str,
                 target_fn: str) -> None:
        self.source_fn = source_fn
        self.target_fn = target_fn
        self.path_text = path_text
        self.name = (f"path-reach-{source_fn}-({path_text})->"
                     f"{target_fn}")
        # Parse the expression through a tiny wrapper query.
        from repro.struql.parser import parse_query
        probe = parse_query(
            f"input G where x -> {path_text} -> y create F(x) output O")
        condition = next(c for b in probe.blocks() for c in b.conditions)
        if condition.path is None:
            raise ValueError(
                f"{path_text!r} is an arc variable, not a path "
                f"expression; quote constant labels")
        self._expr = condition.path

    def check_graph(self, graph: Graph) -> Finding:
        from repro.struql.paths import PathEvaluator
        from repro.struql.predicates import default_registry
        evaluator = PathEvaluator(self._expr, default_registry())
        sources = [n for n in graph.nodes()
                   if n.skolem_fn == self.source_fn]
        witnesses = []
        for node in graph.nodes():
            if node.skolem_fn != self.target_fn:
                continue
            reachers = evaluator.backward(graph, node)
            if not any(isinstance(r, Oid)
                       and r.skolem_fn == self.source_fn
                       for r in reachers):
                witnesses.append(
                    f"{node} unreachable from any {self.source_fn} "
                    f"page via {self.path_text}")
        if not sources:
            witnesses.insert(0, f"no {self.source_fn} pages exist")
        return Finding(self.name, "graph", not witnesses, witnesses)


class Connected(Constraint):
    """The site graph is one weakly connected component."""

    name = "connected"

    def check_graph(self, graph: Graph) -> Finding:
        from repro.graph.algorithms import weakly_connected_components
        components = weakly_connected_components(graph)
        ok = len(components) <= 1
        witnesses = []
        if not ok:
            for component in components[1:]:
                sample = sorted(component, key=str)[:2]
                witnesses.append(
                    f"separate component containing "
                    f"{', '.join(str(s) for s in sample)}")
        return Finding(self.name, "graph", ok, witnesses)


class Verifier:
    """Runs a constraint set against a schema and/or a site graph."""

    def __init__(self, constraints: Iterable[Constraint]) -> None:
        self.constraints = list(constraints)

    def verify(self, graph: Graph | None = None,
               schema: SiteSchema | None = None) -> VerificationReport:
        """Check every constraint at every applicable level."""
        report = VerificationReport()
        for constraint in self.constraints:
            if schema is not None:
                finding = constraint.check_schema(schema)
                if finding is not None:
                    report.findings.append(finding)
            if graph is not None:
                finding = constraint.check_graph(graph)
                if finding is not None:
                    report.findings.append(finding)
        return report

    def verify_or_raise(self, graph: Graph | None = None,
                        schema: SiteSchema | None = None) -> None:
        """Raise :class:`ConstraintViolation` on the first violation."""
        report = self.verify(graph=graph, schema=schema)
        for finding in report.violations():
            raise ConstraintViolation(finding.constraint, finding.witnesses)
