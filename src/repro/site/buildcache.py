"""Content-hash build cache + rebuild planner for site generation.

STRUDEL's core promise is cheap regeneration: "multiple versions of a
site can be generated from the same data".  Regenerating a large site
from scratch on every data edit throws that away, so this module makes
``Website.build_site`` / ``repro build`` *incremental*:

* :class:`BuildCache` — a persistent cache directory holding a
  manifest (per-page content fingerprints, the template-set hash, the
  generator options) plus the previous build's site graph.  A page is
  skipped when its fingerprint, the templates, the options **and** its
  output file are all unchanged.
* the **rebuild planner** (:meth:`BuildCache.plan`) — diffs the old
  site graph against the new one (:func:`repro.site.diff.diff_graphs`)
  and invalidates only the pages reachable from changed data-graph
  nodes (:meth:`~repro.site.diff.SiteDiff.dirty_pages`'s conservative
  reverse closure); clean pages skip without even being fingerprinted.
* :func:`cached_generate` — the one-call pipeline used by both
  :meth:`repro.site.builder.Website.build_site` and ``repro build
  --cache-dir/--incremental``: plan, render only the dirty pages
  (optionally in parallel), delete removed pages' files, persist the
  updated manifest.

Fingerprints are content hashes over a page's *forward-reachable*
subgraph (its bindings: every node, edge, atom and collection
membership its template can possibly traverse), so they are sound for
the template language's forward-only attribute paths.  Template edits
hash into ``templates_hash`` and invalidate everything — the safe
interpretation of "the same templates are used in both sites".

Known limitation: external file contents referenced through
``Atom.file`` and resolved by a :class:`~repro.templates.formats
.FileLoader` are not fingerprinted; touch the cache directory (or pass
a fresh one) after editing referenced files.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.graph.model import Graph, Oid
from repro.graph.serialization import graph_from_json, graph_to_json
from repro.obs.lineage import get_lineage, lineage_path
from repro.obs.trace import get_recorder
from repro.site.diff import diff_graphs
from repro.templates.generator import HtmlGenerator, TemplateSet

#: Manifest schema version; bump on incompatible layout changes.
CACHE_SCHEMA = 1

#: File names inside a cache directory.
MANIFEST_NAME = "manifest.json"
SITE_GRAPH_NAME = "site.json"

#: Default cache directory name when ``--incremental`` is given
#: without ``--cache-dir`` (created inside the output directory).
DEFAULT_CACHE_DIRNAME = ".buildcache"


def _sha(*parts: str) -> str:
    digest = hashlib.sha1()
    for part in parts:
        digest.update(part.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def hash_templates(templates: TemplateSet) -> str:
    """A stable content hash of a whole template set.

    Covers names, sources and page-ness, so editing, adding, removing
    or re-flagging any template changes the hash (and invalidates the
    cache — templates select dynamically per object, so per-template
    dependency tracking would be unsound).
    """
    parts: list[str] = []
    for name in templates.names():
        template = templates.get(name)
        source = template.source if template is not None else ""
        parts.append(f"{name}\x01{int(templates.is_page_template(name))}"
                     f"\x01{source}")
    return _sha(*parts)


def hash_options(options: dict | None) -> str:
    """A stable hash of generator options (sorted-key JSON)."""
    return _sha(json.dumps(options or {}, sort_keys=True, default=str))


def _object_key(obj) -> str:
    """A collision-averse string form of a graph object (type-tagged)."""
    return f"{type(obj).__name__}:{obj!r}"


def _local_hash(graph: Graph, node: Oid) -> str:
    """Hash of one node's own content: identity, out-edges, collections."""
    edges = sorted((edge.label, _object_key(edge.target))
                   for edge in graph.out_edges(node))
    return _sha(_object_key(node),
                *(f"{label}\x01{target}" for label, target in edges),
                *sorted(graph.collections_of(node)))


def site_content_hash(graph: Graph,
                      local_hashes: dict[Oid, str] | None = None) -> str:
    """One hash over the whole site graph's content.

    A warm rebuild whose site hash matches the manifest skips every
    page immediately — no old-graph deserialization, no diff, no
    per-page fingerprints.  Combines every node's local hash (which
    already covers out-edges and collection memberships).
    """
    if local_hashes is None:
        local_hashes = {}
    parts = []
    for node in graph.nodes():
        cached = local_hashes.get(node)
        if cached is None:
            cached = local_hashes[node] = _local_hash(graph, node)
        parts.append(cached)
    return _sha(*sorted(parts))


def page_fingerprint(graph: Graph, page: Oid,
                     local_hashes: dict[Oid, str] | None = None) -> str:
    """Content fingerprint of everything ``page``'s HTML can depend on.

    The rendered page is a function of the forward-reachable subgraph
    (templates only traverse outgoing attribute paths, embed successors,
    and select on collections), so the fingerprint combines the *local*
    hashes — node identity, out-edges, atom values, collection
    memberships — of every node reachable from the page.  ``local_hashes``
    memoizes per-node work across the pages of one build.
    """
    if local_hashes is None:
        local_hashes = {}
    reached: list[str] = []
    frontier = [page]
    seen = {page}
    while frontier:
        node = frontier.pop()
        cached = local_hashes.get(node)
        if cached is None:
            cached = local_hashes[node] = _local_hash(graph, node)
        reached.append(cached)
        for edge in graph.out_edges(node):
            target = edge.target
            if isinstance(target, Oid) and target not in seen:
                seen.add(target)
                frontier.append(target)
    return _sha(*sorted(reached))


@dataclass
class BuildPlan:
    """What one cache-aware build will actually do."""

    #: Pages to render, in deterministic (sorted) order.
    render: list[Oid] = field(default_factory=list)
    #: Pages skipped because cache + diff prove them unchanged.
    skipped: list[Oid] = field(default_factory=list)
    #: Output file names (relative to ``out_dir``) of removed pages.
    stale_files: list[str] = field(default_factory=list)
    #: Why the plan shaped up this way: ``cold``, ``templates-changed``,
    #: ``options-changed``, ``schema-changed`` or ``incremental``.
    reason: str = "cold"
    #: Fingerprints already computed while planning (reused by record).
    fingerprints: dict[str, str] = field(default_factory=dict)
    #: True when the site-hash fast path proved the cache state is
    #: already exact — recording would rewrite identical files.
    unchanged: bool = False

    @property
    def total_pages(self) -> int:
        return len(self.render) + len(self.skipped)

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of pages served from cache (0 when no pages)."""
        total = self.total_pages
        return len(self.skipped) / total if total else 0.0


class BuildCache:
    """A persistent, content-hash-keyed site build cache.

    One directory holds a JSON manifest — per-page fingerprints keyed
    by oid, the template-set hash and the generator-options hash — and
    the previous build's site graph for the diff-based rebuild planner.
    Corrupt or mismatched state degrades to a cold build, never to a
    wrong one.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)
        self.site_graph_path = os.path.join(directory, SITE_GRAPH_NAME)
        self.manifest: dict | None = None
        self._old_site: Graph | None = None

    # -- persistence -----------------------------------------------------------

    def load(self) -> bool:
        """Read the manifest; ``False`` (cold) when absent or corrupt."""
        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.manifest = None
            return False
        if not isinstance(manifest, dict) \
                or manifest.get("schema") != CACHE_SCHEMA \
                or not isinstance(manifest.get("pages"), dict):
            self.manifest = None
            return False
        self.manifest = manifest
        return True

    def old_site_graph(self) -> Graph | None:
        """The previous build's site graph, if it deserializes."""
        if self._old_site is None:
            try:
                with open(self.site_graph_path,
                          encoding="utf-8") as handle:
                    self._old_site = graph_from_json(handle.read())
            except (OSError, ValueError, KeyError,
                    json.JSONDecodeError):
                return None
        return self._old_site

    # -- planning --------------------------------------------------------------

    def plan(self, site: Graph, generator: HtmlGenerator,
             templates: TemplateSet, out_dir: str,
             options: dict | None = None) -> BuildPlan:
        """Decide which pages must render and which can be skipped."""
        pages = sorted(generator.pages(), key=str)
        templates_hash = hash_templates(templates)
        options_hash = hash_options(options)
        plan = BuildPlan()
        if self.manifest is None:
            self.load()
        manifest = self.manifest
        if manifest is None:
            plan.reason = "cold"
        elif manifest.get("templates_hash") != templates_hash:
            plan.reason = "templates-changed"
        elif manifest.get("options_hash") != options_hash:
            plan.reason = "options-changed"
        else:
            plan.reason = "incremental"
        if plan.reason != "incremental":
            plan.render = pages
            return plan

        assert manifest is not None
        old_pages: dict[str, dict] = manifest["pages"]
        local_hashes: dict[Oid, str] = {}
        dirty: set[Oid] | None = None  # None = fingerprint everything
        # Fast path: an identical site hash proves nothing changed
        # without loading the old graph or diffing at all.
        if manifest.get("site_hash") == site_content_hash(site,
                                                          local_hashes):
            dirty = set()
            plan.unchanged = True
        else:
            old_site = self.old_site_graph()
            if old_site is not None:
                diff = diff_graphs(old_site, site)
                if diff.empty:
                    dirty = set()
                elif not diff.collection_changes:
                    dirty = diff.dirty_pages(site, generator)
                # Collection-membership changes can affect template
                # selection without any edge delta; fall back to
                # fingerprinting every page (dirty = None) — still no
                # re-render unless content truly changed.
        current = {str(page) for page in pages}
        for page in pages:
            key = str(page)
            entry = old_pages.get(key)
            url = generator.url_for(page)
            out_path = os.path.join(out_dir, url)
            if entry is None or not os.path.exists(out_path):
                plan.render.append(page)
                continue
            if dirty is not None and page not in dirty:
                plan.skipped.append(page)
                plan.fingerprints[key] = entry["fingerprint"]
                continue
            fp = page_fingerprint(site, page, local_hashes)
            plan.fingerprints[key] = fp
            if fp == entry["fingerprint"]:
                plan.skipped.append(page)
            else:
                plan.render.append(page)
        plan.stale_files = sorted(
            entry["url"] for key, entry in old_pages.items()
            if key not in current and entry.get("url"))
        plan.unchanged = (plan.unchanged and not plan.render
                          and not plan.stale_files)
        return plan

    # -- recording -------------------------------------------------------------

    def record(self, site: Graph, generator: HtmlGenerator,
               templates: TemplateSet, plan: BuildPlan,
               options: dict | None = None) -> None:
        """Persist the post-build state: manifest + site graph."""
        os.makedirs(self.directory, exist_ok=True)
        local_hashes: dict[Oid, str] = {}
        entries: dict[str, dict] = {}
        for page in plan.render + plan.skipped:
            key = str(page)
            fp = plan.fingerprints.get(key)
            if fp is None:
                fp = page_fingerprint(site, page, local_hashes)
            entries[key] = {"url": generator.url_for(page),
                            "fingerprint": fp}
        manifest = {
            "schema": CACHE_SCHEMA,
            "templates_hash": hash_templates(templates),
            "options_hash": hash_options(options),
            "site_hash": site_content_hash(site, local_hashes),
            "pages": entries,
        }
        with open(self.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        with open(self.site_graph_path, "w", encoding="utf-8") as handle:
            handle.write(graph_to_json(site))
        self.manifest = manifest
        self._old_site = site


@dataclass
class BuildReport:
    """The outcome of one (possibly cached, possibly parallel) build."""

    written: dict[Oid, str]
    skipped: list[Oid] = field(default_factory=list)
    removed_files: list[str] = field(default_factory=list)
    reason: str = "full"
    jobs: int = 1
    seconds: float = 0.0

    @property
    def pages_rendered(self) -> int:
        return len(self.written)

    @property
    def pages_skipped(self) -> int:
        return len(self.skipped)

    @property
    def cache_hit_ratio(self) -> float:
        total = self.pages_rendered + self.pages_skipped
        return self.pages_skipped / total if total else 0.0

    def summary(self) -> str:
        """One-line human summary (the CLI's build report line)."""
        return (f"wrote {self.pages_rendered} pages "
                f"({self.pages_skipped} cached, jobs={self.jobs}, "
                f"{self.reason})")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/0 means every core."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def cached_generate(site: Graph, generator: HtmlGenerator,
                    templates: TemplateSet, out_dir: str,
                    cache: BuildCache | str | None = None,
                    jobs: int | None = 1,
                    options: dict | None = None) -> BuildReport:
    """Plan, render (in parallel), clean up, and persist one build.

    Without ``cache`` this is a plain full build through
    :meth:`HtmlGenerator.generate_site`.  With one, only the pages the
    planner proves dirty are rendered, files of pages that left the
    site are deleted, and the manifest is updated for the next run.
    Emits the ``site.build.*`` metrics either way.
    """
    import time

    jobs = resolve_jobs(jobs)
    if isinstance(cache, str):
        cache = BuildCache(cache)
    recorder = get_recorder()
    started = time.perf_counter()
    with recorder.span("site.generate", out_dir=out_dir,
                       jobs=jobs) as span:
        if cache is None:
            written = generator.generate_site(out_dir, jobs=jobs)
            report = BuildReport(written, reason="full", jobs=jobs)
        else:
            plan = cache.plan(site, generator, templates, out_dir,
                              options=options)
            written = generator.generate_site(out_dir, jobs=jobs,
                                              pages=plan.render)
            removed: list[str] = []
            for name in plan.stale_files:
                path = os.path.join(out_dir, name)
                if os.path.exists(path):
                    os.unlink(path)
                    removed.append(path)
            if not plan.unchanged:  # a no-op plan leaves the exact state
                cache.record(site, generator, templates, plan,
                             options=options)
            report = BuildReport(written, skipped=list(plan.skipped),
                                 removed_files=removed,
                                 reason=plan.reason, jobs=jobs)
        report.seconds = time.perf_counter() - started
        span.set(pages=report.pages_rendered,
                 skipped=report.pages_skipped, reason=report.reason)
    metrics = recorder.metrics
    metrics.counter("site.build.pages_rendered").inc(
        report.pages_rendered)
    metrics.counter("site.build.pages_skipped").inc(
        report.pages_skipped)
    metrics.gauge("site.build.cache_hit_ratio").set(
        report.cache_hit_ratio)
    metrics.gauge("site.build.jobs").set(jobs)
    metrics.histogram("site.build.seconds").observe(report.seconds)
    metrics.counter("site.pages_built").inc(report.pages_rendered)
    lineage = get_lineage()
    if lineage.enabled and cache is not None:
        # Serialize lineage next to the manifest so provenance survives
        # incremental rebuilds: merge the previous build's file first
        # (fresh records win), then rewrite it.
        path = lineage_path(cache.directory)
        lineage.load(path)
        lineage.save(path)
    return report
