"""The site-building pipeline: STRUDEL's top-level facade.

A :class:`Website` bundles the three separated concerns —

1. the **data graph** (possibly mediated from several sources),
2. one or more **site-definition queries** in StruQL,
3. an HTML **template set** —

and materializes the site graph, the site schema, the verification
report, and the browsable HTML site, mirroring Fig 1's architecture
end to end.  :meth:`Website.metrics` reports the measures the paper uses
throughout section 5: query lines, link-clause count (structural
complexity, Fig 8's vertical axis), template counts/lines, and the
generated site's size (Fig 8's horizontal axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SiteError
from repro.graph.model import Graph, Oid
from repro.obs.lineage import get_lineage
from repro.obs.trace import get_recorder
from repro.site.buildcache import (
    BuildCache,
    BuildReport,
    cached_generate,
)
from repro.site.schema import SiteSchema, build_site_schema
from repro.site.verify import Constraint, VerificationReport, Verifier
from repro.struql.ast import Query
from repro.struql.evaluator import QueryEngine, QueryResult
from repro.struql.parser import parse_query
from repro.struql.rewriter import compose
from repro.templates.generator import HtmlGenerator, TemplateSet


@dataclass
class SiteMetrics:
    """The paper's site-complexity measures for one built site."""

    query_lines: int
    link_clauses: int
    skolem_functions: int
    template_count: int
    template_lines: int
    data_nodes: int
    data_edges: int
    site_nodes: int
    site_edges: int
    pages: int

    def as_row(self) -> dict[str, int]:
        """Dict form for tabular reports."""
        return {
            "query_lines": self.query_lines,
            "link_clauses": self.link_clauses,
            "skolem_functions": self.skolem_functions,
            "templates": self.template_count,
            "template_lines": self.template_lines,
            "data_nodes": self.data_nodes,
            "data_edges": self.data_edges,
            "site_nodes": self.site_nodes,
            "site_edges": self.site_edges,
            "pages": self.pages,
        }


class Website:
    """One declaratively specified Web site."""

    def __init__(self, data: Graph,
                 queries: list[Query | str] | Query | str,
                 templates: TemplateSet | None = None,
                 engine: QueryEngine | None = None,
                 loader=None) -> None:
        if not isinstance(queries, list):
            queries = [queries]
        if not queries:
            raise SiteError("a Website needs at least one query")
        self.data = data
        self.queries: list[Query] = [
            parse_query(q) if isinstance(q, str) else q for q in queries]
        self.templates = templates or TemplateSet()
        self.engine = engine or QueryEngine()
        self.loader = loader
        self._result: QueryResult | None = None
        self._generator: HtmlGenerator | None = None

    # -- pipeline stages -----------------------------------------------------------

    def build(self) -> "Website":
        """Evaluate the site-definition queries; idempotent."""
        if self._result is None:
            with get_recorder().span("site.build",
                                     queries=len(self.queries)) as span:
                self._result = compose(list(self.queries), self.data,
                                       engine=self.engine)
                span.set(site_nodes=self._result.output.node_count,
                         site_edges=self._result.output.edge_count)
        return self

    @property
    def site_graph(self) -> Graph:
        """The materialized site graph (builds on first access)."""
        self.build()
        assert self._result is not None
        return self._result.output

    @property
    def result(self) -> QueryResult:
        """The final query result with evaluation traces."""
        self.build()
        assert self._result is not None
        return self._result

    def schema(self, query_index: int = -1) -> SiteSchema:
        """The site schema of one defining query (default: the last)."""
        return build_site_schema(self.queries[query_index])

    def generator(self) -> HtmlGenerator:
        """The HTML generator over the built site graph."""
        if self._generator is None:
            self._generator = HtmlGenerator(self.site_graph, self.templates,
                                            loader=self.loader)
        return self._generator

    def generate(self, out_dir: str, jobs: int = 1,
                 cache_dir: str | None = None) -> dict[Oid, str]:
        """Materialize the browsable site under ``out_dir``.

        Returns the written ``{oid: path}`` mapping — with a cache
        directory, only the pages that actually re-rendered.  See
        :meth:`build_site` for the full report.
        """
        return self.build_site(out_dir, jobs=jobs,
                               cache_dir=cache_dir).written

    def build_site(self, out_dir: str, jobs: int = 1,
                   cache_dir: str | None = None) -> BuildReport:
        """The parallel, cache-aware build pipeline.

        ``jobs`` renders pages on that many threads (``None``/0: one
        per core); ``cache_dir`` enables the persistent build cache —
        unchanged pages are skipped, pages that left the site have
        their files deleted, and a rebuild of an unchanged site renders
        nothing at all.
        """
        cache = BuildCache(cache_dir) if cache_dir else None
        return cached_generate(
            self.site_graph, self.generator(), self.templates, out_dir,
            cache=cache, jobs=jobs, options=self._build_options())

    def _build_options(self) -> dict:
        """The generator options that key the build cache."""
        return {"loader": type(self.loader).__name__
                if self.loader is not None else None}

    def why(self, target: str,
            max_age: float | None = None) -> dict | None:
        """The backward derivation tree for one page url or oid name.

        Only meaningful when lineage recording was enabled
        (:func:`repro.obs.lineage.enable_lineage`) *before* the site
        was built — ``repro why`` arranges that.  Page -> template
        edges are recorded on demand so the tree reaches the template
        layer even without an HTML build.
        """
        lineage = get_lineage()
        if not lineage.enabled:
            return None
        self.build()
        self.generator().record_lineage()
        return lineage.why(target, max_age=max_age)

    def verify(self, constraints: list[Constraint],
               schema_level: bool = True,
               graph_level: bool = True) -> VerificationReport:
        """Run integrity constraints against schema and/or site graph."""
        verifier = Verifier(constraints)
        return verifier.verify(
            graph=self.site_graph if graph_level else None,
            schema=self.schema() if schema_level else None)

    # -- metrics ---------------------------------------------------------------------

    def metrics(self) -> SiteMetrics:
        """The section 5 / Fig 8 measures for this site."""
        site = self.site_graph
        query_lines = sum(
            len([ln for ln in q.text.splitlines() if ln.strip()])
            if q.text else 0
            for q in self.queries)
        link_clauses = sum(q.link_count() for q in self.queries)
        skolems = len({fn for q in self.queries
                       for fn in q.skolem_functions()})
        return SiteMetrics(
            query_lines=query_lines,
            link_clauses=link_clauses,
            skolem_functions=skolems,
            template_count=len(self.templates.names()),
            template_lines=self.templates.total_lines(),
            data_nodes=self.data.node_count,
            data_edges=self.data.edge_count,
            site_nodes=site.node_count,
            site_edges=site.edge_count,
            pages=len(self.generator().pages()),
        )
