"""Incremental site-graph updates [FER 98c] / paper section 6.

    To support large-scale sites, we need to solve the problem of
    incremental view updates for semistructured data.

This module provides the materialized-site half of that problem:

* :func:`diff_graphs` — a structural diff between two site graphs
  (pages added/removed, edges added/removed, collection changes);
* :meth:`SiteDiff.dirty_pages` — the pages whose HTML can change: pages
  with edge deltas, plus every page that *embeds* a dirty page or
  renders an attribute path through one (computed against the template
  set's reference structure, conservatively via reverse reachability
  over embedding edges);
* :func:`refresh_site` — rebuild the site graph after a data update and
  rewrite **only** the affected HTML files, returning the diff and the
  regenerated page list.

Benchmark-visible consequence: after a small data change, the number of
rewritten pages is proportional to the change, not the site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.model import Edge, Graph, GraphObject, Oid
from repro.struql.ast import Query
from repro.struql.evaluator import QueryEngine
from repro.templates.generator import HtmlGenerator, TemplateSet


@dataclass
class SiteDiff:
    """The structural difference between two site graphs."""

    added_nodes: set[Oid] = field(default_factory=set)
    removed_nodes: set[Oid] = field(default_factory=set)
    added_edges: set[Edge] = field(default_factory=set)
    removed_edges: set[Edge] = field(default_factory=set)
    collection_changes: dict[str, tuple[set[GraphObject],
                                        set[GraphObject]]] = field(
        default_factory=dict)

    @property
    def empty(self) -> bool:
        """Whether the two graphs are structurally identical."""
        return not (self.added_nodes or self.removed_nodes
                    or self.added_edges or self.removed_edges
                    or self.collection_changes)

    def touched_sources(self) -> set[Oid]:
        """Nodes whose *own* content changed: endpoints of edge deltas
        plus added nodes."""
        touched = set(self.added_nodes)
        for edge in self.added_edges | self.removed_edges:
            touched.add(edge.source)
        return touched

    def dirty_pages(self, new_graph: Graph,
                    generator: HtmlGenerator) -> set[Oid]:
        """Pages whose rendered HTML may differ in the new site.

        Starts from the touched nodes and closes backwards over the new
        graph's edges: a page that links to or embeds a dirty object may
        render differently (link text comes from the target's title; an
        embedded component inlines entirely), so conservatively every
        predecessor is dirty too.  Removed pages are reported by
        :attr:`removed_nodes`, not here.
        """
        dirty = {n for n in self.touched_sources()
                 if new_graph.has_node(n)}
        # Reverse closure: predecessors of dirty objects become dirty.
        frontier = list(dirty)
        seen = set(dirty)
        while frontier:
            node = frontier.pop()
            for edge in new_graph.in_edges(node):
                if edge.source not in seen:
                    seen.add(edge.source)
                    frontier.append(edge.source)
        return {node for node in seen if generator.is_page(node)}

    def summary(self) -> str:
        """One-line human summary."""
        return (f"+{len(self.added_nodes)}/-{len(self.removed_nodes)} "
                f"nodes, +{len(self.added_edges)}/"
                f"-{len(self.removed_edges)} edges, "
                f"{len(self.collection_changes)} collections changed")


def diff_graphs(old: Graph, new: Graph) -> SiteDiff:
    """Structural diff from ``old`` to ``new``."""
    old_nodes = set(old.nodes())
    new_nodes = set(new.nodes())
    old_edges = set(old.edges())
    new_edges = set(new.edges())
    diff = SiteDiff(
        added_nodes=new_nodes - old_nodes,
        removed_nodes=old_nodes - new_nodes,
        added_edges=new_edges - old_edges,
        removed_edges=old_edges - new_edges,
    )
    names = set(old.collection_names()) | set(new.collection_names())
    for name in sorted(names):
        old_members = set(old.collection(name)) \
            if old.has_collection(name) else set()
        new_members = set(new.collection(name)) \
            if new.has_collection(name) else set()
        added = new_members - old_members
        removed = old_members - new_members
        if added or removed:
            diff.collection_changes[name] = (added, removed)
    return diff


@dataclass
class RefreshResult:
    """What :func:`refresh_site` did."""

    diff: SiteDiff
    new_site: Graph
    regenerated: dict[Oid, str]
    removed_files: list[str]

    @property
    def pages_rewritten(self) -> int:
        """Number of HTML files rewritten."""
        return len(self.regenerated)


def refresh_site(query: Query | str, data: Graph, old_site: Graph,
                 templates: TemplateSet, out_dir: str,
                 engine: QueryEngine | None = None,
                 loader=None) -> RefreshResult:
    """Incrementally update a generated site after a data change.

    Re-evaluates the site-definition query over the updated ``data``
    (site-graph recomputation is cheap relative to rendering and I/O for
    content-heavy sites), diffs against ``old_site``, and rewrites only
    the dirty pages' HTML files.  Files of removed pages are deleted.
    """
    import os

    engine = engine or QueryEngine()
    new_site = engine.evaluate(query, data).output
    diff = diff_graphs(old_site, new_site)
    generator = HtmlGenerator(new_site, templates, loader=loader)
    regenerated: dict[Oid, str] = {}
    removed_files: list[str] = []
    if not diff.empty:
        for page in sorted(diff.dirty_pages(new_site, generator), key=str):
            path = os.path.join(out_dir, generator.url_for(page))
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(generator.render(page))
            regenerated[page] = path
        old_generator = HtmlGenerator(old_site, templates, loader=loader)
        for page in sorted(diff.removed_nodes, key=str):
            if not old_generator.is_page(page):
                continue
            path = os.path.join(out_dir, old_generator.url_for(page))
            if os.path.exists(path):
                os.unlink(path)
                removed_files.append(path)
    return RefreshResult(diff=diff, new_site=new_site,
                         regenerated=regenerated,
                         removed_files=removed_files)
