"""Incremental / "click-time" evaluation of Web sites [FER 98c].

    Another approach is to precompute the root(s) of a Web site, then
    compute at click time the query that obtains the information
    required to display the next page.  (paper, section 1)

The decomposition: for each Skolem function ``F``, the query's flattened
units contribute *page queries* — every ``link F(X) -> L -> T`` governed
by conjunction ``Q`` becomes, for a concrete page ``F(a)``, the query
``Q[X := a]`` whose rows yield the page's ``L`` attributes.  Computing a
page therefore never materializes the whole site, only the bindings its
own links need.

:class:`DynamicSite` serves pages this way, with an optional result
cache ("our optimization techniques cache query results to reduce click
time for future queries").  :class:`LazySiteGraph` wraps a dynamic site
behind the :class:`~repro.graph.Graph` interface so the HTML generator
can render dynamic pages without a materialized site graph — the state
the paper says must live "in a client-side browser and/or a server-side
query processor" lives in the wrapper's materialized-page set.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import PageNotFoundError
from repro.graph.model import Graph, GraphObject, Oid
from repro.graph.values import Atom
from repro.obs.lineage import get_lineage
from repro.obs.queries import fingerprint, get_query_registry
from repro.obs.trace import get_recorder
from repro.struql.analysis import ANY_FOOTPRINT, Footprint, unit_footprint
from repro.struql.ast import AggregateCond, Const, Query, SkolemTerm, Var
from repro.struql.bindings import Binding, RuntimeValue, as_label
from repro.struql.evaluator import QueryEngine, _enforce_aggregate_order
from repro.struql.parser import parse_query
from repro.struql.plan import ExecutionContext, Plan
from repro.struql.rewriter import ConjunctiveUnit, flatten
from repro.struql.skolem import SkolemRegistry


#: Default LRU bound for the click-time page and bindings caches: a
#: long-running ``repro serve`` must not grow memory with the number of
#: distinct pages ever visited (same discipline as
#: :class:`~repro.obs.queries.QueryStatsRegistry`).
DEFAULT_MAX_PAGES = 4096


@dataclass
class PageView:
    """One dynamically computed page: its outgoing edges and
    collection memberships."""

    oid: Oid
    edges: list[tuple[str, GraphObject]] = field(default_factory=list)
    collections: list[str] = field(default_factory=list)


class DynamicSite:
    """Serves site pages computed at click time from the data graph.

    Thread-safe: the page cache, the bindings cache and :attr:`stats`
    are guarded by one reentrant :attr:`lock`, and
    :meth:`invalidate` is atomic with respect to in-flight
    :meth:`get_page` calls — the threaded HTTP plane
    (:class:`~repro.obs.http.TelemetryHTTPServer`) serves click-time
    pages from many handler threads at once.  Both caches are LRU
    rings capped at ``max_pages`` entries (``site.page_cache_evictions``
    / ``site.bindings_cache_evictions`` count what falls out).
    """

    def __init__(self, query: Query | str, data: Graph,
                 engine: QueryEngine | None = None,
                 cache: bool = True,
                 max_pages: int = DEFAULT_MAX_PAGES) -> None:
        if isinstance(query, str):
            query = parse_query(query)
        self.query = query
        self.data = data
        self.engine = engine or QueryEngine()
        self.units = flatten(query)
        #: Static read footprint of each flattened unit (keyed by the
        #: unit's identity, which is also the bindings-cache key head).
        self.unit_footprints: dict[int, Footprint] = {
            id(unit): unit_footprint(unit) for unit in self.units}
        #: Skolem function -> union of the footprints of every unit
        #: that contributes links or collections to its pages: the data
        #: a page of that function may read when computed.
        self.fn_footprints = self._compute_fn_footprints()
        self.skolem = SkolemRegistry()
        #: The site query's fingerprint, also used as the lineage query
        #: context for click-time Skolem mints.
        self.fingerprint = fingerprint(query)
        self._cache_enabled = cache
        self.max_pages = max(int(max_pages), 1)
        self._page_cache: "OrderedDict[Oid, PageView]" = OrderedDict()
        self._bindings_cache: "OrderedDict[tuple, list[Binding]]" = \
            OrderedDict()
        self._index = None
        #: Guards the caches, the index and ``stats``; reentrant so
        #: ``get_page`` -> ``_unit_rows`` nests, and exposed so
        #: :class:`LazySiteGraph` can serialize materialization with
        #: cache invalidation.
        self.lock = threading.RLock()
        #: Click-time statistics for benchmarking.  Hit/miss totals
        #: reconcile by construction: ``page_cache_hits +
        #: page_cache_misses`` equals ``get_page`` calls and
        #: ``pages_computed == page_cache_misses``; the bindings-cache
        #: counters tally the inner per-unit query cache separately
        #: (they used to be folded into one ``cache_hits`` number,
        #: which double-counted bindings hits inside page misses).
        self.stats = {"pages_computed": 0, "unit_evaluations": 0,
                      "page_cache_hits": 0, "page_cache_misses": 0,
                      "page_cache_evictions": 0,
                      "bindings_cache_hits": 0,
                      "bindings_cache_misses": 0,
                      "bindings_cache_evictions": 0,
                      "full_invalidations": 0,
                      "partial_invalidations": 0,
                      "pages_invalidated": 0,
                      "bindings_invalidated": 0}

    def _compute_fn_footprints(self) -> dict[str, Footprint]:
        out: dict[str, Footprint] = {
            fn: Footprint() for fn in self.query.skolem_functions()}
        for unit in self.units:
            footprint = self.unit_footprints[id(unit)]
            touched = {link.source.fn for link in unit.links}
            touched.update(c.term.fn for c in unit.collects
                           if isinstance(c.term, SkolemTerm))
            for fn in touched:
                out[fn] = out.get(fn, Footprint()).union(footprint)
        return out

    def footprint_for(self, fn: str | None) -> Footprint:
        """Read footprint of pages minted by Skolem function ``fn``."""
        if fn is None:
            return ANY_FOOTPRINT
        return self.fn_footprints.get(fn, ANY_FOOTPRINT)

    def footprint_for_fns(self, fns) -> Footprint:
        """Union footprint over several Skolem functions."""
        out = Footprint()
        for fn in fns:
            out = out.union(self.footprint_for(fn))
        return out

    def affected_fns(self, change) -> set[str] | None:
        """Skolem functions whose pages ``change`` may affect.

        ``None`` means "all of them" — returned for a full change, an
        unknown change, or a change naming this site's data source
        (source-level granularity cannot be narrowed further here).
        """
        if change is None or getattr(change, "full", False):
            return None
        sources = getattr(change, "sources", frozenset())
        if sources and self.data.name in sources:
            return None
        return {fn for fn, footprint in self.fn_footprints.items()
                if footprint.intersects(change)}

    # -- roots -----------------------------------------------------------------

    def roots(self) -> list[Oid]:
        """The precomputable root pages: zero-argument Skolem creates."""
        roots: dict[Oid, None] = {}
        lineage = get_lineage()
        for unit in self.units:
            for term in unit.creates:
                if not term.args and not unit.conditions:
                    with lineage.query_context(
                            fingerprint=self.fingerprint,
                            block=unit.label, input=self.data.name):
                        roots.setdefault(
                            self.skolem.apply(term.fn, ()), None)
        return list(roots)

    # -- page computation ------------------------------------------------------------

    def get_page(self, oid: Oid) -> PageView:
        """Compute (or fetch from cache) one page's view.

        Holds :attr:`lock` across lookup *and* compute, so a concurrent
        :meth:`invalidate` never interleaves with a half-done compute
        (a page computed from pre-update data can otherwise be cached
        after the post-update flush).
        """
        recorder = get_recorder()
        with self.lock:
            if self._cache_enabled and oid in self._page_cache:
                self.stats["page_cache_hits"] += 1
                self._page_cache.move_to_end(oid)
                recorder.metrics.counter("site.page_cache_hits").inc()
                return self._page_cache[oid]
            if oid.skolem_fn is None:
                raise PageNotFoundError(oid)
            started = time.perf_counter()
            with recorder.span("site.compute_page",
                               page=str(oid)) as span:
                view = self._compute(oid)
                span.set(edges=len(view.edges))
            seconds = time.perf_counter() - started
            if self._cache_enabled:
                self._page_cache[oid] = view
                while len(self._page_cache) > self.max_pages:
                    self._page_cache.popitem(last=False)
                    self.stats["page_cache_evictions"] += 1
                    recorder.metrics.counter(
                        "site.page_cache_evictions").inc()
            self.stats["pages_computed"] += 1
            self.stats["page_cache_misses"] += 1
        # Click-time computes are partial evaluations of the one site
        # query, so they aggregate under its fingerprint: the registry's
        # p50/p95 become the site's live page-compute latency.
        get_query_registry().observe(
            self.query, seconds=seconds,
            rows=len(view.edges),
            optimizer=getattr(self.engine.optimizer, "name",
                              str(self.engine.optimizer)))
        recorder.metrics.counter("site.page_cache_misses").inc()
        return view

    def invalidate(self, change=None) -> set[str] | None:
        """Drop cached results affected by a data-graph update.

        With no ``change`` (or a full/unknown one) this flushes
        everything, exactly as before.  Given a
        :class:`~repro.struql.matview.ChangeSummary`, only pages whose
        function footprint intersects the change and bindings whose
        unit footprint intersects it are dropped; the graph index is
        always discarded (the data did change).  Returns the affected
        Skolem functions, or ``None`` for a full flush.

        Atomic with in-flight :meth:`get_page` calls: waits for any
        compute holding :attr:`lock`, then flushes at once.
        """
        with self.lock:
            self._index = None
            affected = self.affected_fns(change)
            if affected is None:
                self._page_cache.clear()
                self._bindings_cache.clear()
                self.stats["full_invalidations"] += 1
                return None
            pages = [oid for oid in self._page_cache
                     if oid.skolem_fn in affected]
            for oid in pages:
                del self._page_cache[oid]
            bindings = [key for key in self._bindings_cache
                        if self.unit_footprints.get(
                            key[0], ANY_FOOTPRINT).intersects(change)]
            for key in bindings:
                del self._bindings_cache[key]
            self.stats["partial_invalidations"] += 1
            self.stats["pages_invalidated"] += len(pages)
            self.stats["bindings_invalidated"] += len(bindings)
            return affected

    def stats_snapshot(self) -> dict:
        """A consistent copy of :attr:`stats` plus cache occupancy."""
        with self.lock:
            snapshot = dict(self.stats)
            snapshot["page_cache_size"] = len(self._page_cache)
            snapshot["bindings_cache_size"] = len(self._bindings_cache)
            snapshot["max_pages"] = self.max_pages
            snapshot["cache_enabled"] = self._cache_enabled
        return snapshot

    # -- internals ---------------------------------------------------------------

    def _compute(self, oid: Oid) -> PageView:
        fn = oid.skolem_fn
        assert fn is not None
        view = PageView(oid)
        seen_edges: set[tuple[str, GraphObject]] = set()
        for unit in self.units:
            initial = None
            relevant = False
            for link in unit.links:
                if link.source.fn == fn and \
                        len(link.source.args) == len(oid.skolem_args):
                    relevant = True
            collecting = [c for c in unit.collects
                          if isinstance(c.term, SkolemTerm)
                          and c.term.fn == fn
                          and len(c.term.args) == len(oid.skolem_args)]
            if not relevant and not collecting:
                continue
            lineage = get_lineage()
            with lineage.query_context(fingerprint=self.fingerprint,
                                       block=unit.label,
                                       input=self.data.name):
                for link in unit.links:
                    if link.source.fn != fn or \
                            len(link.source.args) != len(oid.skolem_args):
                        continue
                    for row in self._unit_rows(unit, link.source, oid):
                        label_value = self._resolve(link.label, row)
                        label = as_label(label_value) \
                            if label_value is not None else None
                        target = self._resolve(link.target, row)
                        if label is None or target is None:
                            continue
                        if isinstance(target, str):
                            target = Atom.string(target)
                        key = (label, target)
                        if key not in seen_edges:
                            seen_edges.add(key)
                            view.edges.append(key)
                            if lineage.enabled:
                                lineage.record_dep(oid, target)
                for collect in collecting:
                    assert isinstance(collect.term, SkolemTerm)
                    for row in self._unit_rows(unit, collect.term, oid):
                        if collect.name not in view.collections:
                            view.collections.append(collect.name)
        return view

    def _unit_rows(self, unit: ConjunctiveUnit, source: SkolemTerm,
                   oid: Oid) -> list[Binding]:
        """Bindings of the unit's conditions consistent with ``oid``'s
        Skolem arguments bound into the source term's variables."""
        seed: Binding = {}
        for arg_term, arg_value in zip(source.args, oid.skolem_args):
            if isinstance(arg_term, Var):
                seed[arg_term.name] = arg_value
            elif isinstance(arg_term, Const):
                from repro.struql.bindings import runtime_eq
                if not runtime_eq(arg_term.value, arg_value):
                    return []
        key = (id(unit), tuple(sorted(seed.items(),
                                      key=lambda kv: kv[0])),
               tuple(str(v) for _, v in sorted(seed.items())))
        with self.lock:
            if self._cache_enabled and key in self._bindings_cache:
                self.stats["bindings_cache_hits"] += 1
                self._bindings_cache.move_to_end(key)
                get_recorder().metrics.counter(
                    "site.bindings_cache_hits").inc()
                return self._bindings_cache[key]
            self.stats["bindings_cache_misses"] += 1
        if self._index is None or not self._index.fresh:
            from repro.repository.indexes import GraphIndex
            self._index = GraphIndex.build(self.data)
        ctx = ExecutionContext(self.data, index=self._index,
                               predicates=self.engine.predicates)
        # Aggregates partition the FULL binding relation.  Seeding the
        # page's Skolem arguments before an aggregate whose group does
        # not cover them would aggregate over the restricted rows and
        # disagree with the materialized site, so such units evaluate
        # unseeded and filter afterwards.
        seeded = seed
        post_filter: Binding = {}
        for condition in unit.conditions:
            if isinstance(condition, AggregateCond):
                group_names = {g.name for g in condition.group}
                if not set(seed) <= group_names:
                    seeded, post_filter = {}, seed
                    break
        ordered = self.engine.optimizer.order(
            unit.conditions, set(seeded), self.data, ctx.predicates, None)
        ordered = _enforce_aggregate_order(ordered)
        rows = Plan.from_conditions(ordered).execute(ctx, [dict(seeded)])
        if post_filter:
            from repro.struql.bindings import runtime_eq
            rows = [row for row in rows
                    if all(name in row and runtime_eq(row[name], value)
                           for name, value in post_filter.items())]
        with self.lock:
            self.stats["unit_evaluations"] += 1
            if self._cache_enabled:
                self._bindings_cache[key] = rows
                while len(self._bindings_cache) > self.max_pages:
                    self._bindings_cache.popitem(last=False)
                    self.stats["bindings_cache_evictions"] += 1
                    get_recorder().metrics.counter(
                        "site.bindings_cache_evictions").inc()
        get_recorder().metrics.counter("site.unit_evaluations").inc()
        return rows

    def _resolve(self, term, row: Binding) -> RuntimeValue | None:
        if isinstance(term, Const):
            return term.value
        if isinstance(term, Var):
            return row.get(term.name)
        if isinstance(term, SkolemTerm):
            args = []
            for arg in term.args:
                value = self._resolve(arg, row)
                if value is None:
                    return None
                args.append(value)
            return self.skolem.apply(term.fn, args)
        raise TypeError(f"not a term: {term!r}")


class LazySiteGraph(Graph):
    """A :class:`Graph` facade over a :class:`DynamicSite`.

    Pages materialize into the underlying graph structures on first
    access, so the HTML generator (which only reads outgoing edges and
    collection memberships) renders against it unmodified.  Incoming
    edges are complete only for already-materialized pages — sufficient
    for serving, by construction of the template language's bounded
    forward traversals.
    """

    def __init__(self, site: DynamicSite) -> None:
        super().__init__(site.query.output_name)
        self._site = site
        self._materialized: set[Oid] = set()
        self._local = threading.local()
        for root in site.roots():
            self.add_node(root)

    @contextmanager
    def collecting_deps(self):
        """Record the Skolem functions touched by reads in this thread.

        Yields a set that :meth:`ensure` adds every touched page's
        function to — including pages that were already materialized.
        A renderer wrapped in this context learns exactly which page
        views its output depends on, which becomes the rendered body's
        invalidation footprint.
        """
        previous = getattr(self._local, "deps", None)
        deps: set[str] = set()
        self._local.deps = deps
        try:
            yield deps
        finally:
            self._local.deps = previous

    def ensure(self, oid: Oid) -> None:
        """Materialize ``oid``'s page if it is dynamic and not yet done.

        Serialized on the site's lock: concurrent handler threads must
        not interleave graph mutation (or materialize the same page
        twice), and materialization must not overlap an
        :meth:`DynamicSite.invalidate` flush.
        """
        if oid.skolem_fn is None:
            return
        deps = getattr(self._local, "deps", None)
        if deps is not None:
            deps.add(oid.skolem_fn)
        with self._site.lock:
            if oid in self._materialized:
                return
            self._materialized.add(oid)
            view = self._site.get_page(oid)
            self.add_node(oid)
            for label, target in view.edges:
                self.add_edge(oid, label, target)
            for name in view.collections:
                self.add_to_collection(name, oid)

    def unmaterialize(self, fns: set[str] | None = None) -> int:
        """Forget materialized pages so they recompute on next access.

        ``fns`` restricts the flush to pages minted by those Skolem
        functions (``None`` flushes every materialized page).  Nodes
        stay in the graph — links from other pages and the URL map
        remain valid — but their outgoing edges and collection
        memberships are detached, so the next read recomputes the page
        view against the updated data.
        """
        with self._site.lock:
            victims = [oid for oid in self._materialized
                       if fns is None or oid.skolem_fn in fns]
            for oid in victims:
                self._materialized.discard(oid)
                self.detach_node(oid)
            return len(victims)

    # -- read paths used by the HTML generator ------------------------------------
    #
    # Each read holds the site lock across ensure + read so a concurrent
    # unmaterialize/invalidate never interleaves mid-read; the serving
    # hot path (materialized-view hits) bypasses this graph entirely.

    def out_edges(self, source: Oid):  # type: ignore[override]
        with self._site.lock:
            self.ensure(source)
            return super().out_edges(source)

    def get(self, source: Oid, label: str):  # type: ignore[override]
        with self._site.lock:
            self.ensure(source)
            return super().get(source, label)

    def get_one(self, source: Oid, label: str, default=None):  # type: ignore[override]
        with self._site.lock:
            self.ensure(source)
            return super().get_one(source, label, default)

    def labels_of(self, source: Oid):  # type: ignore[override]
        with self._site.lock:
            self.ensure(source)
            return super().labels_of(source)

    def collections_of(self, obj):  # type: ignore[override]
        with self._site.lock:
            if isinstance(obj, Oid):
                self.ensure(obj)
            return super().collections_of(obj)

    @property
    def materialized_count(self) -> int:
        """How many pages have been computed so far."""
        return len(self._materialized)
