"""Exception hierarchy for the STRUDEL reproduction.

Every error raised by the library derives from :class:`StrudelError`, so
callers can catch one type at the top of a pipeline.  Sub-hierarchies
mirror the subsystems: the data model, the DDL, the repository, the
wrappers and mediator, the StruQL processor, the template language, and
the site layer.
"""

from __future__ import annotations


class StrudelError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Data model


class GraphError(StrudelError):
    """A structural violation in a labeled directed graph."""


class UnknownObjectError(GraphError):
    """An oid was referenced that does not exist in the graph."""

    def __init__(self, oid: object) -> None:
        super().__init__(f"unknown object: {oid!r}")
        self.oid = oid


class UnknownCollectionError(GraphError):
    """A collection name was referenced that the graph does not define."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown collection: {name!r}")
        self.name = name


class ImmutableNodeError(GraphError):
    """An edge was added out of a node the query is not allowed to mutate.

    StruQL's construction semantics (paper section 3) forbid adding edges
    out of nodes of the *input* graph: existing nodes are immutable, only
    Skolem-created nodes may gain edges.
    """


class CoercionError(GraphError):
    """Two atomic values could not be coerced to a comparable type."""


# --------------------------------------------------------------------------
# Data definition language


class DDLError(StrudelError):
    """A syntax or semantic error in a STRUDEL data-definition text."""

    def __init__(self, message: str, line: int | None = None) -> None:
        where = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{where}")
        self.line = line


# --------------------------------------------------------------------------
# Repository


class RepositoryError(StrudelError):
    """A failure in the data repository (missing graph, bad persistence)."""


class UnknownGraphError(RepositoryError):
    """A named graph was requested that the repository does not hold."""

    def __init__(self, name: str) -> None:
        super().__init__(f"repository has no graph named {name!r}")
        self.name = name


# --------------------------------------------------------------------------
# Wrappers / mediator


class WrapperError(StrudelError):
    """A wrapper failed to translate an external source into a graph."""


class MediatorError(StrudelError):
    """A data-integration failure (bad mapping, unknown source)."""


class AccessPatternError(MediatorError):
    """A source was accessed without supplying its required inputs.

    Semistructured sources often support only *limited access patterns*
    (paper section 2.4): some attributes must be bound before the source
    can be queried at all.
    """


# --------------------------------------------------------------------------
# StruQL


class StruQLError(StrudelError):
    """Base class for StruQL processing errors."""


class StruQLSyntaxError(StruQLError):
    """The query text failed to lex or parse."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        at = ""
        if line is not None:
            at = f" at line {line}"
            if column is not None:
                at += f", column {column}"
        super().__init__(f"{message}{at}")
        self.line = line
        self.column = column


class StruQLSemanticError(StruQLError):
    """The query parsed but violates StruQL's semantic conditions.

    The paper imposes two: (1) every node mentioned in ``link``/``collect``
    is either created or a data-graph node, and (2) edges are added only
    out of newly created nodes.
    """


class UnknownPredicateError(StruQLError):
    """A query used an external predicate that is not registered."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown predicate: {name!r}")
        self.name = name


class UnboundVariableError(StruQLError):
    """A clause referenced a variable that no condition binds."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unbound variable: {name!r}")
        self.name = name


# --------------------------------------------------------------------------
# Template language


class TemplateError(StrudelError):
    """Base class for HTML-template processing errors."""


class TemplateSyntaxError(TemplateError):
    """The template text failed to lex or parse."""

    def __init__(self, message: str, line: int | None = None) -> None:
        where = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{where}")
        self.line = line


class TemplateEvalError(TemplateError):
    """A template expression failed during HTML generation."""


class MissingTemplateError(TemplateError):
    """No template could be selected for a site-graph object."""

    def __init__(self, oid: object) -> None:
        super().__init__(f"no HTML template for object {oid!r}")
        self.oid = oid


# --------------------------------------------------------------------------
# Site layer


class SiteError(StrudelError):
    """Base class for site-construction errors."""


class ConstraintViolation(SiteError):
    """An integrity constraint on a site failed verification.

    Carries the constraint name and a list of human-readable witnesses
    (nodes or paths demonstrating the violation).
    """

    def __init__(self, constraint: str, witnesses: list[str]) -> None:
        detail = "; ".join(witnesses[:5])
        more = f" (+{len(witnesses) - 5} more)" if len(witnesses) > 5 else ""
        super().__init__(f"constraint {constraint!r} violated: {detail}{more}")
        self.constraint = constraint
        self.witnesses = witnesses


class PageNotFoundError(SiteError):
    """A dynamic page request named a page the site does not define."""

    def __init__(self, oid: object) -> None:
        super().__init__(f"no such page: {oid!r}")
        self.oid = oid
