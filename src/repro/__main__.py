"""``python -m repro`` — the STRUDEL command line (see repro.cli)."""

import sys

from repro.cli import main

sys.exit(main())
