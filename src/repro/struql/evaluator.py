"""The StruQL query engine: two-stage evaluation over blocks.

Ties together the pieces: for each block (preorder through the nesting
tree) the engine

1. asks the configured optimizer to order the block's conditions,
2. executes the resulting physical plan, *extending the parent block's
   binding relation* — which is exactly the semantics of conjoining a
   nested block's conditions with its ancestors', without re-evaluating
   the ancestors, and
3. hands each binding row to the construction stage
   (:class:`~repro.struql.construction.GraphBuilder`).

The engine can create a fresh output graph or *extend* an existing one
(the relaxation of section 5.2: "we allowed queries to add nodes and
arcs to a graph, instead of creating a new graph in every query"), and a
shared :class:`~repro.struql.skolem.SkolemRegistry` lets composed
queries agree on the identity of Skolem-created pages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.graph.model import Graph
from repro.obs.queries import (
    MISESTIMATE_RATIO,
    fingerprint,
    get_query_registry,
    misestimate_ratio,
    render_explain,
)
from repro.obs.lineage import get_lineage
from repro.obs.trace import TimedResult, emit_event, get_recorder, timed
from repro.repository.indexes import GraphIndex
from repro.repository.repository import Repository
from repro.repository.stats import GraphStatistics
from repro.struql.ast import (
    AggregateCond,
    Block,
    Condition,
    Query,
    condition_variables,
)
from repro.struql.bindings import Binding
from repro.struql.construction import GraphBuilder
from repro.struql.optimizer import get_optimizer
from repro.struql.optimizer.base import Optimizer
from repro.struql.optimizer.cost import annotate_plan, trace_decisions
from repro.struql.parser import parse_query
from repro.struql.plan import ExecutionContext, Plan
from repro.struql.predicates import PredicateRegistry, default_registry
from repro.struql.skolem import SkolemRegistry


@dataclass
class BlockTrace(TimedResult):
    """Diagnostics for one evaluated block.

    ``seconds`` derives from the ``struql.block`` span that timed the
    evaluation, so the trace tree and this summary always agree.
    ``op_profiles`` holds the per-operator EXPLAIN ANALYZE counters of
    the executed plan; ``decisions`` is the optimizer decision trace
    when the engine was built with ``decision_trace=True``;
    ``executed`` is False for plan-only traces
    (:meth:`QueryEngine.plan_only`), whose row counts are estimates.
    """

    label: str
    plan_explain: str
    binding_rows: int
    estimated_rows: float | None = None
    op_profiles: list = field(default_factory=list)
    decisions: list = field(default_factory=list)
    executed: bool = True


@dataclass
class QueryResult:
    """The outcome of evaluating one StruQL query."""

    output: Graph
    skolem: SkolemRegistry
    traces: list[BlockTrace] = field(default_factory=list)
    fingerprint: str = ""
    optimizer_name: str = ""

    @property
    def total_bindings(self) -> int:
        """Sum of binding-relation sizes across blocks."""
        return sum(t.binding_rows for t in self.traces)

    def explain(self) -> str:
        """Plans and row counts for every block."""
        chunks = []
        for trace in self.traces:
            chunks.append(f"block {trace.label or '(top)'} "
                          f"[{trace.binding_rows} rows, "
                          f"{trace.seconds * 1000:.2f} ms]\n"
                          f"{trace.plan_explain}")
        return "\n\n".join(chunks)

    def explain_analyze(self) -> str:
        """EXPLAIN ANALYZE: per-operator estimated vs actual rows,
        wall time, index hits, and flagged misestimates."""
        return render_explain(self, analyze=True)


class QueryEngine:
    """Evaluates StruQL queries against graphs or a repository."""

    def __init__(self, optimizer: str | Optimizer = "cost",
                 predicates: PredicateRegistry | None = None,
                 indexing: bool = True,
                 decision_trace: bool = False) -> None:
        if isinstance(optimizer, str):
            optimizer = get_optimizer(optimizer)
        self.optimizer = optimizer
        self.predicates = predicates or default_registry()
        #: When False, evaluation never consults or builds graph indexes
        #: (the benchmark A1 ablation switch).
        self.indexing = indexing
        #: When True, every block trace carries the optimizer decision
        #: trace (candidate access paths and costs per ordering step) —
        #: the ``repro explain`` mode; off by default to keep the hot
        #: path free of the replay cost.
        self.decision_trace = decision_trace

    # -- public API --------------------------------------------------------------

    def evaluate(self, query: Query | str, graph: Graph,
                 index: GraphIndex | None = None,
                 stats: GraphStatistics | None = None,
                 output: Graph | None = None,
                 skolem: SkolemRegistry | None = None,
                 initial: Binding | None = None) -> QueryResult:
        """Evaluate ``query`` against ``graph``.

        ``output`` may name an existing graph to extend (multi-query site
        construction); by default a fresh graph named by the query's
        ``output`` clause is created.  ``skolem`` shares Skolem identity
        across composed queries.  ``initial`` binds the query's declared
        ``params`` (form/user input) before evaluation — the mechanism
        behind dynamically created pages that "depend on user input".
        """
        if isinstance(query, str):
            query = parse_query(query)
        if output is None:
            output = Graph(query.output_name)
        skolem = skolem or SkolemRegistry()
        if stats is None:
            stats = GraphStatistics.gather(graph)
        if not self.indexing:
            index = None
        elif index is None:
            index = GraphIndex.build(graph)
        ctx = ExecutionContext(graph, index=index,
                               predicates=self.predicates, stats=stats)
        builder = GraphBuilder(output, graph, skolem)
        result = QueryResult(output=output, skolem=skolem)
        # Collections named by collect clauses exist even when empty.
        for block in query.blocks():
            for collect in block.collects:
                output.declare_collection(collect.name)
        result.fingerprint = fingerprint(query)
        result.optimizer_name = self.optimizer.name
        seed: Binding = dict(initial) if initial else {}
        missing = [p for p in query.params if p not in seed]
        if missing:
            from repro.errors import UnboundVariableError
            raise UnboundVariableError(missing[0])
        started = time.perf_counter()
        with get_recorder().span("struql.query", input=query.input_name,
                                 output=query.output_name,
                                 optimizer=self.optimizer.name,
                                 indexed=index is not None,
                                 fingerprint=result.fingerprint):
            self._run_block(query.root, [seed], set(seed), ctx, builder,
                            result, stats)
            emit_event("info", "struql.query",
                       input=query.input_name, output=query.output_name,
                       fingerprint=result.fingerprint,
                       blocks=len(result.traces),
                       nodes=result.output.node_count,
                       edges=result.output.edge_count)
        get_query_registry().observe(
            query, seconds=time.perf_counter() - started,
            rows=result.total_bindings, plan=result.explain(),
            optimizer=self.optimizer.name,
            misestimates=sum(
                1 for t in result.traces
                if t.estimated_rows is not None and misestimate_ratio(
                    t.estimated_rows, t.binding_rows) > MISESTIMATE_RATIO))
        return result

    def evaluate_materialized(self, query: Query | str, graph: Graph,
                              registry, *,
                              sources=()) -> Graph:
        """Evaluate through a materialized-view registry.

        The query's result graph is registered in ``registry`` (a
        :class:`~repro.struql.matview.MatViewRegistry`) keyed by its
        fingerprint and the input graph's name, with the query's static
        read footprint as the dependency summary; repeated calls serve
        the stored graph until an intersecting change invalidates it.
        Returns the result *graph* (not a :class:`QueryResult` — the
        per-evaluation traces belong to the evaluation that actually
        ran).
        """
        from repro.struql.matview import materialize_query
        return materialize_query(self, query, graph, registry,
                                 sources=sources)

    def plan_only(self, query: Query | str, graph: Graph,
                  stats: GraphStatistics | None = None) -> QueryResult:
        """EXPLAIN without ANALYZE: plan every block, execute nothing.

        Orders each block's conditions exactly as :meth:`evaluate`
        would, annotates the plans with cost-model estimates and access
        paths, and (when ``decision_trace`` is on) records the optimizer
        decision trace — but never touches a row.  The returned result
        has an empty output graph and plan-only traces
        (``executed=False``, ``binding_rows=0``).
        """
        if isinstance(query, str):
            query = parse_query(query)
        if stats is None:
            stats = GraphStatistics.gather(graph)
        result = QueryResult(output=Graph(query.output_name),
                             skolem=SkolemRegistry(),
                             fingerprint=fingerprint(query),
                             optimizer_name=self.optimizer.name)
        # Preorder through the nesting tree, mirroring _run_block.
        pending = [(query.root, set(query.params), 1.0)]
        while pending:
            block, bound, parent_estimate = pending.pop(0)
            estimate = parent_estimate
            if block.conditions:
                ordered = self.optimizer.order(
                    block.conditions, bound, graph, self.predicates, stats)
                ordered = _enforce_aggregate_order(ordered)
                plan = Plan.from_conditions(ordered)
                estimate = annotate_plan(plan.ops, bound, stats,
                                         parent_rows=parent_estimate,
                                         graph=graph)
                decisions = trace_decisions(
                    ordered, bound, stats, graph, self.predicates,
                    optimizer=self.optimizer,
                    parent_rows=parent_estimate) \
                    if self.decision_trace else []
                result.traces.append(BlockTrace(
                    label=block.label, plan_explain=plan.explain(),
                    binding_rows=0, estimated_rows=round(estimate, 2),
                    decisions=decisions, executed=False))
            else:
                result.traces.append(BlockTrace(
                    label=block.label, plan_explain="(no conditions)",
                    binding_rows=0, estimated_rows=round(estimate, 2),
                    executed=False))
            child_bound = bound | block.variables()
            pending[0:0] = [(child, child_bound, estimate)
                            for child in block.children]
        return result

    def run(self, query: Query | str, repository: Repository,
            skolem: SkolemRegistry | None = None) -> QueryResult:
        """Evaluate against a repository: resolves the input graph, uses
        its indexes and statistics, and stores the output graph.

        If the output graph already exists in the repository it is
        extended rather than replaced.
        """
        if isinstance(query, str):
            query = parse_query(query)
        graph = repository.graph(query.input_name)
        index = repository.index(query.input_name)
        stats = repository.statistics(query.input_name)
        output = (repository.graph(query.output_name)
                  if repository.has_graph(query.output_name) else None)
        result = self.evaluate(query, graph, index=index, stats=stats,
                               output=output, skolem=skolem)
        repository.store(result.output)
        return result

    # -- block recursion ------------------------------------------------------------

    def _run_block(self, block: Block, parent_rows: list[Binding],
                   bound: set[str], ctx: ExecutionContext,
                   builder: GraphBuilder, result: QueryResult,
                   stats: GraphStatistics | None) -> None:
        recorder = get_recorder()
        with timed("struql.block", label=block.label or "(top)") as span:
            estimated: float | None = None
            profiles: list = []
            decisions: list = []
            if block.conditions:
                with recorder.span("struql.optimize",
                                   optimizer=self.optimizer.name,
                                   conditions=len(block.conditions)):
                    ordered = self.optimizer.order(
                        block.conditions, bound, ctx.graph,
                        ctx.predicates, stats)
                    ordered = _enforce_aggregate_order(ordered)
                plan = Plan.from_conditions(ordered)
                if stats is not None:
                    estimated = round(annotate_plan(
                        plan.ops, bound, stats,
                        parent_rows=len(parent_rows),
                        graph=ctx.graph), 2)
                    if recorder.enabled:
                        span.set(estimated_rows=estimated)
                    if self.decision_trace:
                        decisions = trace_decisions(
                            ordered, bound, stats, ctx.graph,
                            ctx.predicates, optimizer=self.optimizer,
                            parent_rows=len(parent_rows))
                rows = plan.execute(ctx,
                                    initial=[dict(r) for r in parent_rows])
                explain = plan.explain()
                profiles = plan.profiles
            else:
                rows = parent_rows
                explain = "(no conditions)"
            if recorder.enabled:
                span.set(optimizer=self.optimizer.name,
                         actual_rows=len(rows))
            if estimated is not None:
                ratio = misestimate_ratio(estimated, len(rows))
                if ratio > MISESTIMATE_RATIO:
                    emit_event("warning", "struql.misestimate",
                               block=block.label or "(top)",
                               estimated=estimated, actual=len(rows),
                               ratio=round(ratio, 1),
                               optimizer=self.optimizer.name)
            with recorder.span("struql.construct", rows=len(rows)):
                lineage = get_lineage()
                with lineage.query_context(
                        fingerprint=result.fingerprint,
                        block=block.label or "(top)",
                        input=ctx.graph.name):
                    for row in rows:
                        builder.apply_block_row(block, row)
        result.traces.append(BlockTrace(
            label=block.label,
            plan_explain=explain,
            binding_rows=len(rows),
            estimated_rows=estimated,
            op_profiles=profiles,
            decisions=decisions,
            span=span,
        ))
        child_bound = bound | block.variables()
        for child in block.children:
            self._run_block(child, rows, child_bound, ctx, builder, result,
                            stats)


def _enforce_aggregate_order(ordered: list[Condition]
                             ) -> list[Condition]:
    """Pin aggregates to their declarative position.

    An aggregate summarizes the binding relation of *all* other
    conditions (its group semantics must not depend on plan choice), so
    it runs after every condition that does not consume its output, and
    before every condition that does.  Multiple aggregates keep their
    relative order.
    """
    aggregates = [c for c in ordered if isinstance(c, AggregateCond)]
    if not aggregates:
        return ordered
    outputs = {a.out.name for a in aggregates}
    before: list[Condition] = []
    after: list[Condition] = []
    for condition in ordered:
        if isinstance(condition, AggregateCond):
            continue
        if condition_variables(condition) & outputs:
            after.append(condition)
        else:
            before.append(condition)
    return before + aggregates + after


def evaluate(query: Query | str, graph: Graph,
             optimizer: str = "cost") -> Graph:
    """One-shot convenience: evaluate and return the output graph."""
    return QueryEngine(optimizer=optimizer).evaluate(query, graph).output
