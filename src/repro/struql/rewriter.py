"""Query rewriting utilities: flattening, composition, decomposition.

*Flattening* turns a query's block tree into a list of
:class:`ConjunctiveUnit`\\ s — one per block, each carrying the block's
*effective* conditions (its own conjoined with all ancestors') and its
construction clauses.  The paper states the block facility "is nothing
more than syntactic convenience, since the meaning is the same as that
of the query in which all clauses are joint together"; a unit is exactly
that joint form per block.  Site schemas (:mod:`repro.site.schema`) and
incremental evaluation (:mod:`repro.site.incremental`) are both defined
over units.

*Composition* evaluates a pipeline of queries, each reading the previous
output, with one shared Skolem registry — the multi-query site-building
pattern of section 5.1 ("its site graph is built in several successive
steps by multiple, composed StruQL queries").

*Decomposition* extracts, for a Skolem function ``F``, the units whose
links leave ``F`` — the raw material of click-time page queries
[FER 98c].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.model import Graph
from repro.repository.repository import Repository
from repro.struql.ast import (
    Block,
    CollectSpec,
    Condition,
    LinkSpec,
    Query,
    SkolemTerm,
)
from repro.struql.evaluator import QueryEngine, QueryResult
from repro.struql.parser import parse_query
from repro.struql.skolem import SkolemRegistry


@dataclass
class ConjunctiveUnit:
    """One block, flattened: effective conditions + construction clauses.

    ``label`` is the conjunction of the where-labels governing the unit,
    e.g. ``"Q1 ^ Q2"`` for Fig 3's YearPage block — the same notation the
    paper uses to label site-schema edges.
    """

    conditions: list[Condition]
    creates: list[SkolemTerm]
    links: list[LinkSpec]
    collects: list[CollectSpec]
    label: str = "true"
    depth: int = 0

    @property
    def is_constructive(self) -> bool:
        """Whether the unit actually builds anything."""
        return bool(self.creates or self.links or self.collects)


def flatten(query: Query | str) -> list[ConjunctiveUnit]:
    """Flatten a query's block tree into conjunctive units, preorder."""
    if isinstance(query, str):
        query = parse_query(query)
    units: list[ConjunctiveUnit] = []

    def walk(block: Block, inherited: list[Condition],
             labels: list[str], depth: int) -> None:
        conditions = inherited + list(block.conditions)
        block_labels = labels + ([block.label] if block.label else [])
        units.append(ConjunctiveUnit(
            conditions=conditions,
            creates=list(block.creates),
            links=list(block.links),
            collects=list(block.collects),
            label=" ^ ".join(block_labels) if block_labels else "true",
            depth=depth,
        ))
        for child in block.children:
            walk(child, conditions, block_labels, depth + 1)

    walk(query.root, [], [], 0)
    return units


def creating_units(units: list[ConjunctiveUnit],
                   fn: str) -> list[ConjunctiveUnit]:
    """Units whose ``create`` clause mentions Skolem function ``fn``."""
    return [u for u in units
            if any(term.fn == fn for term in u.creates)]


def linking_units(units: list[ConjunctiveUnit],
                  fn: str) -> list[tuple[ConjunctiveUnit, LinkSpec]]:
    """Every (unit, link) pair whose link's source is function ``fn`` —
    the decomposition used to compute one page's links at click time."""
    out: list[tuple[ConjunctiveUnit, LinkSpec]] = []
    for unit in units:
        for link in unit.links:
            if link.source.fn == fn:
                out.append((unit, link))
    return out


def compose(queries: list[Query | str], graph: Graph,
            engine: QueryEngine | None = None) -> QueryResult:
    """Evaluate a pipeline of queries, feeding each output to the next.

    Each query's ``input`` name is taken on faith (the pipeline wires
    outputs to inputs positionally); a shared Skolem registry preserves
    node identity across steps, so later steps may link to pages created
    by earlier ones.  Returns the final step's result.
    """
    if not queries:
        raise ValueError("compose() needs at least one query")
    engine = engine or QueryEngine()
    skolem = SkolemRegistry()
    current = graph
    result: QueryResult | None = None
    for step in queries:
        result = engine.evaluate(step, current, skolem=skolem)
        current = result.output
    assert result is not None
    return result


def run_pipeline(queries: list[Query | str], repository: Repository,
                 engine: QueryEngine | None = None) -> QueryResult:
    """Like :func:`compose` but resolving input graphs by name from a
    repository and storing every intermediate output graph in it."""
    if not queries:
        raise ValueError("run_pipeline() needs at least one query")
    engine = engine or QueryEngine()
    skolem = SkolemRegistry()
    result: QueryResult | None = None
    for step in queries:
        result = engine.run(step, repository, skolem=skolem)
    assert result is not None
    return result
