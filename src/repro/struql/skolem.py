"""Skolem-function machinery for StruQL's construction stage.

    ``New`` is a Skolem function that creates new object oids; by
    definition, a Skolem function applied to the same inputs produces the
    same node oid.  (paper, section 3)

Identity is structural: :meth:`SkolemRegistry.apply` mints
``Oid.skolem(fn, args)`` whose equality/hash already encode the Skolem
convention, so two applications with coercion-equal arguments unify even
across separately evaluated blocks or separately run queries that share
a registry (the multi-query site-building pattern of section 5.1).

The registry additionally remembers which oids each function produced,
which the site layer uses to map site-schema nodes to concrete pages.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.model import GraphObject, Oid
from repro.graph.values import Atom
from repro.obs.lineage import get_lineage


def _canonical(value: object) -> object:
    """Canonicalize a Skolem argument for identity purposes.

    Arc variables bind to plain strings; node variables bind to oids or
    atoms.  Strings become string atoms so that a label and an equal
    string atom produce the same oid, and numerically coercible atoms
    normalize (``F(0)``, ``F(0.0)`` and ``F("0")`` are the same node —
    atom comparison is coercing, so oid identity must be too).
    """
    if isinstance(value, str):
        value = Atom.string(value)
    if isinstance(value, Atom):
        from repro.graph.values import _coerce_numeric
        number = _coerce_numeric(value)
        if number is not None:
            if isinstance(number, float) and number.is_integer():
                return Atom.int(int(number))
            if isinstance(number, int):
                return Atom.int(number)
            return Atom.float(number)
    return value


class SkolemRegistry:
    """Mints and remembers Skolem-created oids."""

    def __init__(self) -> None:
        self._created: dict[str, dict[Oid, None]] = {}

    def apply(self, fn: str, args: Iterable[object]) -> Oid:
        """The oid of ``fn`` applied to ``args`` (created on first use)."""
        canonical = tuple(_canonical(a) for a in args)
        oid = Oid.skolem(fn, canonical)
        bucket = self._created.setdefault(fn, {})
        if oid not in bucket:
            bucket[oid] = None
            # Provenance only on first mint: repeat applications (one
            # per binding row referencing the node) change nothing.
            lineage = get_lineage()
            if lineage.enabled:
                lineage.record_node(oid, fn, canonical)
        return oid

    def functions(self) -> list[str]:
        """Function names that have minted at least one oid."""
        return sorted(self._created)

    def created_by(self, fn: str) -> list[Oid]:
        """All oids minted by function ``fn``, in creation order."""
        return list(self._created.get(fn, ()))

    def all_created(self) -> set[Oid]:
        """Every oid this registry has minted."""
        out: set[Oid] = set()
        for oids in self._created.values():
            out.update(oids)
        return out

    def __len__(self) -> int:
        return sum(len(oids) for oids in self._created.values())

    def __repr__(self) -> str:
        return f"SkolemRegistry(functions={self.functions()}, oids={len(self)})"
