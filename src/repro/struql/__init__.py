"""StruQL — Site TRansformation Und Query Language (paper section 3)."""

from repro.struql.ast import (
    ANY_PATH,
    AnyLabel,
    Block,
    CollectSpec,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    LabelEquals,
    LabelPredicate,
    LinkSpec,
    MembershipCond,
    NotCond,
    PathCond,
    Query,
    RAlt,
    RConcat,
    RegularPath,
    RLabel,
    RStar,
    SkolemTerm,
    Var,
)
from repro.struql.analysis import Warning as RangeWarning
from repro.struql.analysis import analyze, is_range_restricted
from repro.struql.builder import QueryBuilder
from repro.struql.evaluator import QueryEngine, QueryResult, evaluate
from repro.struql.parser import StruQLParser, parse_query
from repro.struql.paths import PathAutomaton, PathEvaluator, compile_path
from repro.struql.plan import ExecutionContext, Plan
from repro.struql.predicates import PredicateRegistry, default_registry
from repro.struql.skolem import SkolemRegistry

__all__ = [
    "ANY_PATH",
    "AnyLabel",
    "Block",
    "CollectSpec",
    "ComparisonCond",
    "Condition",
    "Const",
    "ExecutionContext",
    "InCond",
    "LabelEquals",
    "LabelPredicate",
    "LinkSpec",
    "MembershipCond",
    "NotCond",
    "PathAutomaton",
    "PathCond",
    "PathEvaluator",
    "Plan",
    "PredicateRegistry",
    "Query",
    "QueryBuilder",
    "RangeWarning",
    "QueryEngine",
    "QueryResult",
    "RAlt",
    "RConcat",
    "RLabel",
    "RStar",
    "RegularPath",
    "SkolemRegistry",
    "SkolemTerm",
    "StruQLParser",
    "Var",
    "analyze",
    "compile_path",
    "default_registry",
    "evaluate",
    "is_range_restricted",
    "parse_query",
]
