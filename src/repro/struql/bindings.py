"""Runtime values and the binding relation.

The query stage's result is "a relation with one attribute for each
variable" (paper section 3).  A row of that relation is a ``Binding``:
a dict from variable name to a runtime value.  Runtime values are:

* :class:`~repro.graph.Oid` — node variables bound to internal objects;
* :class:`~repro.graph.Atom` — node variables bound to atomic values;
* ``str`` — arc variables bound to edge labels.

This module centralizes the value-kind coercions every operator needs:
label extraction, coercing equality, and ordered comparison with the
paper's dynamic coercion rules.
"""

from __future__ import annotations

from typing import Union

from repro.errors import CoercionError
from repro.graph.model import GraphObject, Oid
from repro.graph.values import Atom

#: A runtime value: node object, atomic value, or edge label.
RuntimeValue = Union[Oid, Atom, str]

#: One row of the binding relation.
Binding = dict[str, RuntimeValue]


def as_label(value: RuntimeValue) -> str | None:
    """View a runtime value as an edge label, if it can be one."""
    if isinstance(value, str):
        return value
    if isinstance(value, Atom) and not value.type.is_numeric:
        return str(value.value)
    if isinstance(value, Atom):
        return str(value.value)
    return None


def as_atom(value: RuntimeValue) -> Atom | None:
    """View a runtime value as an atom (labels become string atoms)."""
    if isinstance(value, Atom):
        return value
    if isinstance(value, str):
        return Atom.string(value)
    return None


def runtime_eq(a: RuntimeValue, b: RuntimeValue) -> bool:
    """Equality with dynamic coercion.

    Oids compare structurally with each other and are never equal to
    atoms or labels; atoms and labels compare under atom coercion.
    """
    if isinstance(a, Oid) or isinstance(b, Oid):
        return isinstance(a, Oid) and isinstance(b, Oid) and a == b
    left, right = as_atom(a), as_atom(b)
    assert left is not None and right is not None
    return left == right


def runtime_compare(a: RuntimeValue, op: str, b: RuntimeValue) -> bool:
    """Apply a comparison operator with dynamic coercion.

    Equality/inequality follow :func:`runtime_eq`.  Ordered comparisons
    require coercible atoms; incoercible pairs simply fail the
    comparison (the run-time analogue of a type error in a schemaless
    model is "no match", not an exception).
    """
    if op == "=":
        return runtime_eq(a, b)
    if op == "!=":
        return not runtime_eq(a, b)
    if isinstance(a, Oid) or isinstance(b, Oid):
        return False
    left, right = as_atom(a), as_atom(b)
    assert left is not None and right is not None
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left < right or left == right
        if op == ">":
            return right < left
        if op == ">=":
            return right < left or left == right
    except CoercionError:
        return False
    raise ValueError(f"unknown comparison operator {op!r}")


def bound_vars(binding: Binding) -> set[str]:
    """The variable names a binding defines."""
    return set(binding)


def extend_binding(binding: Binding, var: str,
                   value: RuntimeValue) -> Binding | None:
    """Bind ``var`` to ``value``, or check consistency if already bound.

    Returns the (new) binding on success, ``None`` on conflict.  The
    input binding is never mutated.
    """
    existing = binding.get(var)
    if existing is not None:
        return binding if runtime_eq(existing, value) else None
    out = dict(binding)
    out[var] = value
    return out
