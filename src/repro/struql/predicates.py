"""Built-in and external predicate registry for StruQL.

The paper's conditions of type (3) are "built-in or external predicates
applied to nodes or edges", e.g. ``isPostScript(q)`` tests whether node
``q`` is a PostScript file.  The distinction between collection names
and predicates is semantic: the evaluator first checks the input graph's
collections, then this registry.

A predicate is any callable taking graph objects (:class:`Oid` or
:class:`Atom`; label predicates receive the label as a string atom) and
returning a boolean.  The default registry carries the paper's type
tests plus a few generally useful ones; applications register their own
via :meth:`PredicateRegistry.register`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import UnknownPredicateError
from repro.graph import values as value_predicates
from repro.graph.model import Oid
from repro.graph.values import Atom

Predicate = Callable[..., bool]


class PredicateRegistry:
    """A case-insensitive name -> predicate mapping."""

    def __init__(self) -> None:
        self._predicates: dict[str, Predicate] = {}

    def register(self, name: str, fn: Predicate) -> None:
        """Register ``fn`` under ``name`` (case-insensitive)."""
        self._predicates[name.lower()] = fn

    def lookup(self, name: str) -> Predicate:
        """Fetch a predicate; raises :class:`UnknownPredicateError`."""
        try:
            return self._predicates[name.lower()]
        except KeyError:
            raise UnknownPredicateError(name) from None

    def has(self, name: str) -> bool:
        """Whether ``name`` is registered."""
        return name.lower() in self._predicates

    def names(self) -> list[str]:
        """Sorted registered names."""
        return sorted(self._predicates)

    def copy(self) -> "PredicateRegistry":
        """An independent copy (for per-query extension)."""
        out = PredicateRegistry()
        out._predicates.update(self._predicates)
        return out


def _is_node(value: Any) -> bool:
    return isinstance(value, Oid)


def _is_atom(value: Any) -> bool:
    return isinstance(value, Atom)


def _is_name(value: Any) -> bool:
    """True for identifier-shaped strings; the paper's ``isName`` example."""
    if isinstance(value, Atom):
        text = str(value.value)
    elif isinstance(value, str):
        text = value
    else:
        return False
    return bool(text) and (text[0].isalpha() or text[0] == "_") and all(
        ch.isalnum() or ch in "_-" for ch in text)


def default_registry() -> PredicateRegistry:
    """The standard registry with the paper's type-test predicates."""
    registry = PredicateRegistry()
    registry.register("isPostScript", value_predicates.is_postscript)
    registry.register("isImageFile", value_predicates.is_image_file)
    registry.register("isHtmlFile", value_predicates.is_html_file)
    registry.register("isTextFile", value_predicates.is_text_file)
    registry.register("isFile", value_predicates.is_file)
    registry.register("isUrl", value_predicates.is_url)
    registry.register("isInt", value_predicates.is_int)
    registry.register("isFloat", value_predicates.is_float)
    registry.register("isString", value_predicates.is_string)
    registry.register("isNode", _is_node)
    registry.register("isAtom", _is_atom)
    registry.register("isName", _is_name)
    return registry
