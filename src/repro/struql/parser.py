"""Parser for StruQL.

Surface syntax, reconstructed from the paper's grammar and examples
(Fig 3, the TextOnly query, the BIBTEX block query):

.. code-block:: text

    query   ::=  INPUT IDENT body OUTPUT IDENT
    body    ::=  clause*
    clause  ::=  WHERE cond ((","|";"|AND) cond)*
              |  CREATE skolem ("," skolem)*
              |  LINK chain ("," chain)*
              |  COLLECT IDENT "(" term ")" ("," ...)*
              |  "{" body "}"
    cond    ::=  NOT "(" cond ")"
              |  IDENT "(" args ")"                      membership/predicate
              |  endpoint ("->" seg "->" endpoint)+      path chain
              |  term cmp-op term
              |  IDENT IN "{" const ("," const)* "}"
    seg     ::=  IDENT            arc variable (when the segment is one
                                  bare identifier) — binds the edge label
              |  rpe              regular path expression otherwise
    rpe     ::=  alt ;  alt ::= cat ("|" cat)* ;  cat ::= star ("." star)*
    star    ::=  base "*"* ;  base ::= STRING | TRUE | IDENT | "*" | "(" alt ")"
    chain   ::=  term ("->" (STRING|IDENT) "->" term)+   each triple a link

Keywords are case-insensitive (the paper writes both ``where`` and
``WHERE``).  Conditions may separate with ``,``, ``;`` or ``and``.

Disambiguation rules implemented here:

* in a path segment, a *bare* identifier is an **arc variable**; an
  identifier inside a composite expression (with ``*``, ``.``, ``|`` or
  parentheses, e.g. ``isName*``) is a **label predicate**;
* ``true`` is the any-label predicate; a lone ``*`` is the any-path
  abbreviation;
* ``Name(args)`` in a ``where`` clause is collection membership or an
  external predicate — resolved at evaluation time, as the paper
  specifies ("at a semantic, not syntactic, level");
* a ``link`` source must be a Skolem term (existing nodes are
  immutable); violating queries are rejected here with
  :class:`~repro.errors.StruQLSemanticError`.
"""

from __future__ import annotations

from repro.errors import StruQLSemanticError, StruQLSyntaxError
from repro.graph.values import Atom
from repro.lexutil import (
    EOF, FLOAT, IDENT, INT, PUNCT, STRING, ScanError, Token, scan,
)
from repro.struql.ast import (
    AGGREGATE_FUNCTIONS,
    ANY_PATH,
    AggregateCond,
    AnyLabel,
    Block,
    CollectSpec,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    LabelEquals,
    LabelPredicate,
    LabelTerm,
    LinkSpec,
    MembershipCond,
    NotCond,
    PathCond,
    Query,
    RAlt,
    RConcat,
    RegularPath,
    RLabel,
    RStar,
    SkolemTerm,
    Term,
    Var,
    condition_variables,
    term_variables,
)

_PUNCTUATION = ("->", "!=", "<=", ">=", "{", "}", "(", ")", ",", ";",
                "=", "<", ">", ".", "|", "*", "-")

_KEYWORDS = frozenset({
    "input", "where", "create", "link", "collect", "output", "in",
    "not", "and", "true",
})

_CLAUSE_STARTS = frozenset({"where", "create", "link", "collect"})


class StruQLParser:
    """Recursive-descent parser building a :class:`~repro.struql.ast.Query`.

    ``params`` names variables supplied at evaluation time (form/user
    input — paper section 1's dynamically created pages); they count as
    bound for the static checks.
    """

    def __init__(self, text: str, params: tuple[str, ...] = ()) -> None:
        self._params = tuple(params)
        self._text = text
        try:
            self._tokens = list(scan(text, _PUNCTUATION))
        except ScanError as exc:
            raise StruQLSyntaxError(str(exc), exc.line, exc.column) from exc
        self._pos = 0
        self._block_counter = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> StruQLSyntaxError:
        token = token or self._peek()
        return StruQLSyntaxError(message, token.line, token.column)

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind == PUNCT and token.text == text

    def _eat_punct(self, text: str) -> bool:
        if self._at_punct(text):
            self._next()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        if not self._at_punct(text):
            raise self._error(f"expected {text!r}, found {self._peek().text!r}")
        return self._next()

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == IDENT and token.text.lower() == word

    def _eat_keyword(self, word: str) -> bool:
        if self._at_keyword(word):
            self._next()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        if not self._at_keyword(word):
            raise self._error(
                f"expected keyword {word!r}, found {self._peek().text!r}")
        return self._next()

    def _expect_name(self) -> Token:
        token = self._peek()
        if token.kind != IDENT or token.text.lower() in _KEYWORDS:
            raise self._error(f"expected a name, found {token.text!r}")
        return self._next()

    # -- entry point ------------------------------------------------------------

    def parse(self) -> Query:
        """Parse a complete query and run static semantic checks."""
        self._expect_keyword("input")
        input_name = self._expect_name().text
        root = self._parse_body()
        self._expect_keyword("output")
        output_name = self._expect_name().text
        trailing = self._peek()
        if trailing.kind != EOF:
            raise self._error(f"unexpected trailing input {trailing.text!r}")
        query = Query(input_name, output_name, root, text=self._text,
                      params=self._params)
        _check_semantics(query, assumed_bound=frozenset(self._params))
        return query

    # -- blocks -----------------------------------------------------------------

    def _parse_body(self) -> Block:
        """Parse a block body with *sequential scoping*.

        Fig 3/Fig 5 fix the intended semantics: a construction clause is
        governed by the ``where`` clauses that precede it (in this block
        and its ancestors) — the top-of-query ``create RootPage()`` is
        governed by ``true`` even though a ``where`` follows it.  Each
        ``where`` that appears after construction clauses therefore
        opens an implicit nested block; consecutive ``where`` clauses
        conjoin into one block.
        """
        root = Block()
        current = root
        while True:
            if self._at_keyword("where"):
                self._next()
                if current.creates or current.links or current.collects \
                        or current.children:
                    child = Block()
                    current.children.append(child)
                    current = child
                current.conditions.extend(self._parse_conditions())
                if not current.label:
                    self._block_counter += 1
                    current.label = f"Q{self._block_counter}"
            elif self._at_keyword("create"):
                self._next()
                current.creates.extend(self._parse_create_list())
            elif self._at_keyword("link"):
                self._next()
                current.links.extend(self._parse_link_list())
            elif self._at_keyword("collect"):
                self._next()
                current.collects.extend(self._parse_collect_list())
            elif self._at_punct("{"):
                self._next()
                child = self._parse_body()
                self._expect_punct("}")
                current.children.append(child)
                self._eat_punct(",")  # blocks may be comma-separated
            else:
                break
        return root

    # -- where conditions ----------------------------------------------------------

    def _parse_conditions(self) -> list[Condition]:
        conditions = self._parse_condition_group()
        while self._condition_continues():
            conditions.extend(self._parse_condition_group())
        return conditions

    def _condition_continues(self) -> bool:
        if self._at_punct(",") or self._at_punct(";"):
            # Only continue when what follows starts a condition, not a
            # clause keyword or block.
            save = self._pos
            self._next()
            token = self._peek()
            starts = (token.kind in (IDENT, STRING, INT, FLOAT)
                      and token.text.lower() not in
                      (_CLAUSE_STARTS | {"output"}))
            if starts:
                return True
            self._pos = save
            return False
        if self._at_keyword("and"):
            self._next()
            return True
        return False

    def _parse_condition_group(self) -> list[Condition]:
        """One condition; path chains expand to several PathConds."""
        if self._at_keyword("not"):
            self._next()
            self._expect_punct("(")
            inner = self._parse_condition_group()
            self._expect_punct(")")
            if len(inner) == 1:
                return [NotCond(inner[0])]
            # not over a chain negates the conjunction; expand via De
            # Morgan is wrong for conjunctions of generators, so reject.
            raise self._error("not(...) must wrap a single condition")

        token = self._peek()
        if token.kind == IDENT and token.text.lower() not in _KEYWORDS \
                and self._peek(1).kind == PUNCT and self._peek(1).text == "(":
            membership = self._parse_membership()
            aggregate = self._maybe_aggregate(membership, token)
            if aggregate is not None:
                return [aggregate]
            return [membership]

        left = self._parse_endpoint()
        if self._at_punct("->"):
            return self._parse_path_chain(left)
        if self._at_keyword("in"):
            if not isinstance(left, Var):
                raise self._error("'in' requires a variable on the left")
            self._next()
            return [self._parse_in_cond(left)]
        for op in ("!=", "<=", ">=", "=", "<", ">"):
            if self._at_punct(op):
                self._next()
                right = self._parse_endpoint()
                return [ComparisonCond(left, op, right)]
        raise self._error(f"cannot parse condition near {self._peek().text!r}")

    def _parse_membership(self) -> MembershipCond:
        name = self._expect_name().text
        self._expect_punct("(")
        args: list[Var | Const] = []
        if not self._at_punct(")"):
            args.append(self._parse_endpoint())
            while self._eat_punct(","):
                args.append(self._parse_endpoint())
        self._expect_punct(")")
        return MembershipCond(name, tuple(args))

    def _maybe_aggregate(self, membership: MembershipCond,
                         token) -> AggregateCond | None:
        """``count(v) [per x, y] as n`` — the aggregation extension.

        Only recognized when the call is followed by ``per`` or ``as``,
        so collections or predicates named like aggregate functions
        keep working.
        """
        follows = self._peek()
        is_agg_follow = follows.kind == IDENT and \
            follows.text.lower() in ("per", "as")
        if not is_agg_follow:
            return None
        if membership.name.lower() not in AGGREGATE_FUNCTIONS:
            raise self._error(
                f"unknown aggregate function {membership.name!r} "
                f"(known: {', '.join(AGGREGATE_FUNCTIONS)})", token)
        if len(membership.args) != 1 or not isinstance(
                membership.args[0], Var):
            raise self._error(
                "an aggregate takes exactly one variable argument",
                token)
        group: list[Var] = []
        if self._eat_keyword("per"):
            group.append(Var(self._expect_name().text))
            while self._eat_punct(","):
                group.append(Var(self._expect_name().text))
        self._expect_keyword("as")
        out = Var(self._expect_name().text)
        return AggregateCond(membership.name.lower(),
                             membership.args[0], tuple(group), out)

    def _parse_in_cond(self, var: Var) -> InCond:
        self._expect_punct("{")
        values = [self._parse_const()]
        while self._eat_punct(","):
            values.append(self._parse_const())
        self._expect_punct("}")
        return InCond(var, tuple(values))

    def _parse_endpoint(self) -> Var | Const:
        token = self._peek()
        if token.kind == STRING:
            self._next()
            return Const(Atom.string(token.text))
        if token.kind in (INT, FLOAT) or self._at_punct("-"):
            return self._parse_const()
        if token.kind == IDENT and token.text.lower() not in _KEYWORDS:
            self._next()
            return Var(token.text)
        raise self._error(
            f"expected a variable or constant, found {token.text!r}")

    def _parse_const(self) -> Const:
        negative = self._eat_punct("-")
        token = self._next()
        if token.kind == INT:
            value = int(token.text)
            return Const(Atom.int(-value if negative else value))
        if token.kind == FLOAT:
            value = float(token.text)
            return Const(Atom.float(-value if negative else value))
        if negative:
            raise self._error("expected a number after '-'", token)
        if token.kind == STRING:
            return Const(Atom.string(token.text))
        if token.kind == IDENT and token.text.lower() in ("true", "false"):
            return Const(Atom.bool(token.text.lower() == "true"))
        raise self._error(f"expected a constant, found {token.text!r}", token)

    # -- paths -----------------------------------------------------------------

    def _parse_path_chain(self, start: Var | Const) -> list[Condition]:
        conditions: list[Condition] = []
        source = start
        while self._eat_punct("->"):
            segment = self._parse_segment()
            self._expect_punct("->")
            target = self._parse_endpoint()
            if isinstance(segment, str):
                conditions.append(PathCond(source, target, arc_var=segment))
            else:
                conditions.append(PathCond(source, target, path=segment))
            source = target
        return conditions

    def _parse_segment(self) -> RegularPath | str:
        """A path segment: an arc variable (bare identifier) or an RPE."""
        token = self._peek()
        if token.kind == IDENT and token.text.lower() not in _KEYWORDS:
            follower = self._peek(1)
            if follower.kind == PUNCT and follower.text == "->":
                self._next()
                return token.text  # bare identifier: arc variable
        return self._parse_rpe_alt()

    def _parse_rpe_alt(self) -> RegularPath:
        options = [self._parse_rpe_concat()]
        while self._eat_punct("|"):
            options.append(self._parse_rpe_concat())
        if len(options) == 1:
            return options[0]
        return RAlt(tuple(options))

    def _parse_rpe_concat(self) -> RegularPath:
        parts = [self._parse_rpe_star()]
        while self._eat_punct("."):
            parts.append(self._parse_rpe_star())
        if len(parts) == 1:
            return parts[0]
        return RConcat(tuple(parts))

    def _parse_rpe_star(self) -> RegularPath:
        base = self._parse_rpe_base()
        while self._eat_punct("*"):
            base = RStar(base)
        return base

    def _parse_rpe_base(self) -> RegularPath:
        token = self._peek()
        if token.kind == STRING:
            self._next()
            return RLabel(LabelEquals(token.text))
        if self._at_punct("*"):
            self._next()
            return ANY_PATH
        if self._at_punct("("):
            self._next()
            inner = self._parse_rpe_alt()
            self._expect_punct(")")
            return inner
        if token.kind == IDENT:
            self._next()
            if token.text.lower() == "true":
                return RLabel(AnyLabel())
            return RLabel(LabelPredicate(token.text))
        raise self._error(
            f"expected a path expression, found {token.text!r}")

    # -- construction clauses -------------------------------------------------------

    def _parse_create_list(self) -> list[SkolemTerm]:
        creates = [self._parse_skolem_term()]
        while self._list_continues():
            creates.append(self._parse_skolem_term())
        return creates

    def _list_continues(self) -> bool:
        if not (self._at_punct(",") or self._at_punct(";")):
            return False
        save = self._pos
        self._next()
        token = self._peek()
        if token.kind == IDENT and token.text.lower() not in _KEYWORDS:
            return True
        self._pos = save
        return False

    def _parse_skolem_term(self) -> SkolemTerm:
        name = self._expect_name().text
        self._expect_punct("(")
        args: list[Var | Const] = []
        if not self._at_punct(")"):
            args.append(self._parse_endpoint())
            while self._eat_punct(","):
                args.append(self._parse_endpoint())
        self._expect_punct(")")
        return SkolemTerm(name, tuple(args))

    def _parse_link_list(self) -> list[LinkSpec]:
        links = self._parse_link_chain()
        while self._list_continues():
            links.extend(self._parse_link_chain())
        return links

    def _parse_link_chain(self) -> list[LinkSpec]:
        source = self._parse_link_term()
        links: list[LinkSpec] = []
        if not self._at_punct("->"):
            raise self._error("a link expression needs '->'")
        while self._eat_punct("->"):
            label = self._parse_link_label()
            self._expect_punct("->")
            target = self._parse_link_term()
            if not isinstance(source, SkolemTerm):
                raise StruQLSemanticError(
                    f"link source must be a Skolem term (existing nodes "
                    f"are immutable): {source}")
            links.append(LinkSpec(source, label, target))
            source = target
        return links

    def _parse_link_label(self) -> LabelTerm:
        token = self._peek()
        if token.kind == STRING:
            self._next()
            return Const(Atom.string(token.text))
        if token.kind == IDENT and token.text.lower() not in _KEYWORDS:
            self._next()
            return Var(token.text)
        raise self._error(
            f"expected a link label (string or arc variable), "
            f"found {token.text!r}")

    def _parse_link_term(self) -> Term:
        token = self._peek()
        if token.kind == IDENT and token.text.lower() not in _KEYWORDS \
                and self._peek(1).kind == PUNCT and self._peek(1).text == "(":
            return self._parse_skolem_term()
        return self._parse_endpoint()

    def _parse_collect_list(self) -> list[CollectSpec]:
        collects = [self._parse_collect_spec()]
        while self._list_continues():
            collects.append(self._parse_collect_spec())
        return collects

    def _parse_collect_spec(self) -> CollectSpec:
        name = self._expect_name().text
        self._expect_punct("(")
        term = self._parse_link_term()
        self._expect_punct(")")
        return CollectSpec(name, term)


def _check_semantics(query: Query,
                     assumed_bound: frozenset[str] = frozenset()) -> None:
    """Static checks from the paper's two semantic conditions plus
    variable-scoping sanity.

    1. Every Skolem term in ``link``/``collect`` names a function that
       some ``create`` clause mentions (with the same arity).
    2. Every variable used in ``create``/``link``/``collect`` of a block
       is bound by the effective conditions of that block.
    (The "edges only from new nodes" rule is enforced during parsing.)
    """
    created: set[tuple[str, int]] = set()
    for block in query.blocks():
        for term in block.creates:
            created.add((term.fn, len(term.args)))

    def check_term(term: Term, bound: set[str], where: str) -> None:
        if isinstance(term, SkolemTerm):
            if (term.fn, len(term.args)) not in created:
                raise StruQLSemanticError(
                    f"{where} mentions Skolem term {term} but no create "
                    f"clause defines {term.fn}/{len(term.args)}")
            for arg in term.args:
                check_term(arg, bound, where)
        elif isinstance(term, Var):
            if term.name not in bound:
                raise StruQLSemanticError(
                    f"{where} uses unbound variable {term.name!r}")

    def walk(block: Block, inherited: set[str]) -> None:
        bound = inherited | block.variables() | set(assumed_bound)
        for term in block.creates:
            for arg in term.args:
                check_term(arg, bound, f"create {term}")
        for link in block.links:
            check_term(link.source, bound, f"link {link}")
            check_term(link.target, bound, f"link {link}")
            if isinstance(link.label, Var) and link.label.name not in bound:
                raise StruQLSemanticError(
                    f"link {link} uses unbound arc variable "
                    f"{link.label.name!r}")
        for collect in block.collects:
            check_term(collect.term, bound, f"collect {collect}")
        for child in block.children:
            walk(child, bound)

    walk(query.root, set())


def parse_query(text: str, params: tuple[str, ...] = ()) -> Query:
    """Parse StruQL text into a checked :class:`~repro.struql.ast.Query`.

    ``params`` declares evaluation-time parameters (form inputs): the
    named variables are assumed bound by the caller of
    :meth:`QueryEngine.evaluate` via its ``initial`` argument.
    """
    return StruQLParser(text, params=params).parse()
