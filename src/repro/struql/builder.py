"""A programmatic StruQL builder — the QBE direction of section 6.

    Many potential users of STRUDEL asked whether we can provide a
    friendly visual interface for specifying queries, instead of having
    to write StruQL queries by hand.

A graphical editor needs a structured construction API underneath; this
module is that API, usable directly from Python.  It builds exactly the
same checked :class:`~repro.struql.ast.Query` values the parser
produces, so everything downstream (engine, site schemas, verification,
incremental evaluation) works unchanged.

Example — the Fig 3 query, programmatically::

    from repro.struql.builder import (QueryBuilder, var, skolem,
                                      member, edge, eq)

    x, l, v = var("x"), var("l"), var("v")
    b = QueryBuilder("BIBTEX", output="HomePage")
    b.create(skolem("RootPage"), skolem("AbstractsPage"))
    b.link(skolem("RootPage"), "AbstractsPage", skolem("AbstractsPage"))
    with b.where(member("Publications", x), edge(x, l, v)):
        b.create(skolem("PaperPresentation", x), skolem("AbstractPage", x))
        b.link(skolem("AbstractPage", x), l, v)
        with b.where(eq(l, "year")):
            b.create(skolem("YearPage", v))
            b.link(skolem("YearPage", v), "Year", v)
    query = b.build()

``with b.where(...)`` opens a nested block whose conditions conjoin with
its ancestors', mirroring the textual ``{ WHERE ... }``.
"""

from __future__ import annotations

from typing import Union

from repro.graph.values import Atom
from repro.struql.ast import (
    ANY_PATH,
    AnyLabel,
    Block,
    CollectSpec,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    LabelEquals,
    LabelPredicate,
    LinkSpec,
    MembershipCond,
    NotCond,
    PathCond,
    Query,
    RAlt,
    RConcat,
    RegularPath,
    RLabel,
    RStar,
    SkolemTerm,
    Term,
    Var,
)
from repro.struql.parser import _check_semantics

#: Values accepted wherever a term is expected.
TermLike = Union[Var, Const, SkolemTerm, Atom, str, int, float, bool]


def var(name: str) -> Var:
    """A query variable."""
    return Var(name)


def const(value) -> Const:
    """A constant term (atoms and plain Python scalars accepted)."""
    if isinstance(value, Const):
        return value
    return Const(Atom.of(value))


def _term(value: TermLike) -> Term:
    if isinstance(value, (Var, Const, SkolemTerm)):
        return value
    return const(value)


def skolem(fn: str, *args: TermLike) -> SkolemTerm:
    """A Skolem term ``fn(args...)``."""
    return SkolemTerm(fn, tuple(_term(a) for a in args))


# -- conditions ---------------------------------------------------------------


def member(name: str, *args: TermLike) -> MembershipCond:
    """Collection membership or predicate application ``name(args)``."""
    return MembershipCond(name, tuple(_term(a) for a in args))


def edge(source: TermLike, label: Union[Var, str],
         target: TermLike) -> PathCond:
    """A single edge: arc variable when ``label`` is a :class:`Var`,
    constant label when it is a string."""
    src = _term(source)
    dst = _term(target)
    assert isinstance(src, (Var, Const)) and isinstance(dst, (Var, Const))
    if isinstance(label, Var):
        return PathCond(src, dst, arc_var=label.name)
    return PathCond(src, dst, path=RLabel(LabelEquals(label)))


def path(source: TermLike, expr: RegularPath,
         target: TermLike) -> PathCond:
    """A regular-path condition ``source -> expr -> target``."""
    src = _term(source)
    dst = _term(target)
    assert isinstance(src, (Var, Const)) and isinstance(dst, (Var, Const))
    return PathCond(src, dst, path=expr)


def _comparison(op: str):
    def build(left: TermLike, right: TermLike) -> ComparisonCond:
        lhs, rhs = _term(left), _term(right)
        assert isinstance(lhs, (Var, Const))
        assert isinstance(rhs, (Var, Const))
        return ComparisonCond(lhs, op, rhs)
    build.__name__ = f"cmp_{op}"
    return build


eq = _comparison("=")
ne = _comparison("!=")
lt = _comparison("<")
le = _comparison("<=")
gt = _comparison(">")
ge = _comparison(">=")


def isin(variable: Var, *values) -> InCond:
    """``variable in {values...}``."""
    return InCond(variable, tuple(const(v) for v in values))


def notc(inner: Condition) -> NotCond:
    """``not(inner)``."""
    return NotCond(inner)


# -- regular path expression combinators ----------------------------------------


def label(name: str) -> RegularPath:
    """A single edge with a constant label."""
    return RLabel(LabelEquals(name))


def anylabel() -> RegularPath:
    """``true``: one edge with any label."""
    return RLabel(AnyLabel())


def labelpred(name: str) -> RegularPath:
    """One edge whose label satisfies predicate ``name``."""
    return RLabel(LabelPredicate(name))


def concat(*parts: RegularPath) -> RegularPath:
    """Path concatenation ``R.R``."""
    if len(parts) == 1:
        return parts[0]
    return RConcat(tuple(parts))


def alt(*options: RegularPath) -> RegularPath:
    """Alternation ``R|R``."""
    if len(options) == 1:
        return options[0]
    return RAlt(tuple(options))


def star(inner: RegularPath) -> RegularPath:
    """Kleene closure ``R*``."""
    return RStar(inner)


def anypath() -> RegularPath:
    """The ``*`` abbreviation: any path of any length."""
    return ANY_PATH


# -- the builder -----------------------------------------------------------------


class _Scope:
    """Context manager entering/leaving one nested where-block."""

    def __init__(self, builder: "QueryBuilder", block: Block) -> None:
        self._builder = builder
        self._block = block

    def __enter__(self) -> "QueryBuilder":
        self._builder._stack.append(self._block)
        return self._builder

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = self._builder._stack.pop()
        assert popped is self._block


class QueryBuilder:
    """Structured construction of StruQL queries."""

    def __init__(self, input_name: str, output: str = "Site",
                 params: tuple[str, ...] = ()) -> None:
        self.input_name = input_name
        self.output_name = output
        self.params = tuple(params)
        self._root = Block()
        self._stack: list[Block] = [self._root]
        self._label_counter = 0

    # -- clause methods -------------------------------------------------------

    def _current(self) -> Block:
        return self._stack[-1]

    def where(self, *conditions: Condition) -> _Scope:
        """Open a nested block with ``conditions`` (use with ``with``).

        The new block's conditions conjoin with every enclosing block's,
        exactly like the textual ``{ WHERE ... }``.
        """
        self._label_counter += 1
        block = Block(conditions=list(conditions),
                      label=f"Q{self._label_counter}")
        self._current().children.append(block)
        return _Scope(self, block)

    def create(self, *terms: SkolemTerm) -> "QueryBuilder":
        """Add ``create`` clauses to the current block."""
        self._current().creates.extend(terms)
        return self

    def link(self, source: SkolemTerm, label_term: Union[Var, str],
             target: TermLike) -> "QueryBuilder":
        """Add one ``link`` clause to the current block."""
        if isinstance(label_term, Var):
            lab: Union[Var, Const] = label_term
        else:
            lab = Const(Atom.string(label_term))
        self._current().links.append(
            LinkSpec(source, lab, _term(target)))
        return self

    def collect(self, name: str, term: TermLike) -> "QueryBuilder":
        """Add one ``collect`` clause to the current block."""
        self._current().collects.append(CollectSpec(name, _term(term)))
        return self

    # -- finalization -----------------------------------------------------------

    def build(self) -> Query:
        """The finished, semantically checked query."""
        if len(self._stack) != 1:
            raise RuntimeError("unbalanced where() scopes")
        query = Query(self.input_name, self.output_name, self._root,
                      text=self.to_text(), params=self.params)
        _check_semantics(query, assumed_bound=frozenset(self.params))
        return query

    def to_text(self) -> str:
        """Equivalent StruQL surface text (parseable)."""
        lines = [f"input {self.input_name}"]

        def emit(block: Block, indent: int) -> None:
            pad = "  " * indent
            if block.conditions:
                conds = ", ".join(str(c) for c in block.conditions)
                lines.append(f"{pad}where {conds}")
            if block.creates:
                lines.append(pad + "create "
                             + ", ".join(str(c) for c in block.creates))
            for link_spec in block.links:
                lines.append(f"{pad}link {link_spec}")
            for collect_spec in block.collects:
                lines.append(f"{pad}collect {collect_spec}")
            for child in block.children:
                lines.append(pad + "{")
                emit(child, indent + 1)
                lines.append(pad + "}")

        emit(self._root, 0)
        lines.append(f"output {self.output_name}")
        return "\n".join(lines)
