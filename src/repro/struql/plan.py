"""Physical query plans and operators for StruQL's query stage.

As in traditional query processing (paper section 2.4), a query's
``where`` clause is translated into a tree of physical operations — here
a pipeline of operators, each of which *extends* a stream of partial
bindings with one condition.  The operator set includes "conventional
physical operators as well as those necessary to query the schema": an
all-free arc-variable step is exactly the paper's "scan all the
attribute names in a graph".

Operators choose their access path adaptively from what is bound when a
row arrives, and use the repository's indexes when the
:class:`ExecutionContext` carries one:

* :class:`MembershipOp` — collection scan / membership test, or
  built-in/external predicate filter (resolved semantically);
* :class:`EdgeStepOp` — single edge with an arc variable: forward step,
  backward step (via the backward index), attribute-extent scan, or
  full edge scan;
* :class:`PathOp` — regular path expression via product-automaton
  search, forward or backward;
* :class:`ComparisonOp`, :class:`InOp` — filters (an equality or ``in``
  against constants can also *bind* a free variable);
* :class:`NegationOp` — ``not(...)`` under active-domain semantics.

The optimizers in :mod:`repro.struql.optimizer` decide only the operator
*order*; the naive evaluator uses source order.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.errors import StruQLError, UnboundVariableError, UnknownPredicateError
from repro.graph.model import Graph, GraphObject, Oid
from repro.graph.values import Atom
from repro.obs.queries import MISESTIMATE_RATIO, misestimate_ratio
from repro.obs.trace import get_recorder
from repro.repository.indexes import GraphIndex
from repro.repository.stats import GraphStatistics
from repro.struql.ast import (
    AggregateCond,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    MembershipCond,
    NotCond,
    PathCond,
    RegularPath,
    Var,
    condition_variables,
)
from repro.struql.bindings import (
    Binding,
    RuntimeValue,
    as_atom,
    as_label,
    extend_binding,
    runtime_compare,
    runtime_eq,
)
from repro.struql.paths import PathEvaluator
from repro.struql.predicates import PredicateRegistry, default_registry


class ExecutionContext:
    """Everything an operator needs: graph, optional index, predicates.

    Path evaluators are cached per regular path expression, so repeated
    rows share automata and label-test memoization.
    """

    def __init__(self, graph: Graph, index: GraphIndex | None = None,
                 predicates: PredicateRegistry | None = None,
                 stats: GraphStatistics | None = None) -> None:
        self.graph = graph
        self.index = index if (index is not None and index.fresh) else index
        self.predicates = predicates or default_registry()
        self.stats = stats
        self._path_evaluators: dict[RegularPath, PathEvaluator] = {}
        # Counter handles resolved once per context: one no-op call per
        # lookup when observability is disabled.
        metrics = get_recorder().metrics
        self._index_hits = metrics.counter("repository.index.hits")
        self._index_misses = metrics.counter("repository.index.misses")
        # Plain-int mirrors of the counters above, so per-operator
        # profiling (EXPLAIN ANALYZE) can take deltas even when the
        # global recorder is disabled.
        self.index_hit_count = 0
        self.index_miss_count = 0

    def path_evaluator(self, expr: RegularPath) -> PathEvaluator:
        evaluator = self._path_evaluators.get(expr)
        if evaluator is None:
            evaluator = PathEvaluator(expr, self.predicates)
            self._path_evaluators[expr] = evaluator
        return evaluator

    # -- label-aware edge access (index-backed when available) ----------------
    #
    # Without an index, labeled lookups degrade to linear scans over the
    # edge set — the paper's premise that a schemaless store cannot
    # organize data physically without the indexes of section 2.2.  The
    # A1 ablation measures exactly this degradation.

    def targets(self, source: Oid, label: str) -> list[GraphObject]:
        if self.index is not None:
            self._index_hits.inc()
            self.index_hit_count += 1
            return self.index.targets(source, label)
        self._index_misses.inc()
        self.index_miss_count += 1
        return [e.target for e in self.graph.edges()
                if e.source == source and e.label == label]

    def sources(self, label: str, target: GraphObject) -> list[Oid]:
        if self.index is not None:
            self._index_hits.inc()
            self.index_hit_count += 1
            return self.index.sources(label, target)
        self._index_misses.inc()
        self.index_miss_count += 1
        return [e.source for e in self.graph.edges()
                if e.label == label and runtime_eq(e.target, target)]

    def attribute_extent(self, label: str) -> list[tuple[Oid, GraphObject]]:
        if self.index is not None:
            self._index_hits.inc()
            self.index_hit_count += 1
            return self.index.attribute_extent(label)
        self._index_misses.inc()
        self.index_miss_count += 1
        return [(e.source, e.target) for e in self.graph.edges()
                if e.label == label]

    def labels(self) -> list[str]:
        if self.index is not None:
            self._index_hits.inc()
            self.index_hit_count += 1
            return self.index.labels()
        self._index_misses.inc()
        self.index_miss_count += 1
        return self.graph.labels()


def _resolve(term: Union[Var, Const], binding: Binding) -> RuntimeValue | None:
    """The runtime value of a term under a binding; ``None`` if unbound."""
    if isinstance(term, Const):
        return term.value
    return binding.get(term.name)


def _pred_arg(value: RuntimeValue) -> Union[Oid, Atom]:
    """Predicates receive oids and atoms; labels become string atoms."""
    if isinstance(value, str):
        return Atom.string(value)
    return value


@dataclass
class OpProfile:
    """EXPLAIN ANALYZE counters for one operator in one execution.

    Collected unconditionally by :meth:`Plan.execute` (two clock reads
    and a couple of integer deltas per operator — negligible next to row
    iteration) so ``repro explain --analyze`` works without enabling the
    global trace recorder.
    """

    op: str
    condition: str
    rows_in: int = 0
    rows_out: int = 0
    invocations: int = 0
    seconds: float = 0.0
    index_hits: int = 0
    index_misses: int = 0
    est_rows: float | None = None
    access_path: str | None = None

    @property
    def est_actual_ratio(self) -> float:
        return misestimate_ratio(self.est_rows, self.rows_out)

    @property
    def misestimated(self) -> bool:
        return (self.est_rows is not None
                and self.est_actual_ratio > MISESTIMATE_RATIO)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "condition": self.condition,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "invocations": self.invocations,
            "seconds": self.seconds,
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "est_rows": self.est_rows,
            "access_path": self.access_path,
            "misestimate": self.misestimated,
        }


class PhysicalOp:
    """Base operator: consumes bindings, emits extended bindings."""

    condition: Condition

    # Optimizer annotations threaded in by
    # :func:`repro.struql.optimizer.cost.annotate_plan`; ``None`` until a
    # plan is annotated.  ``access_path`` names the access method the
    # operator will choose given the variables bound at its position.
    est_rows: float | None = None
    est_multiplier: float | None = None
    cost_weight: float | None = None
    access_path: str | None = None

    def extend(self, rows: Iterable[Binding],
               ctx: ExecutionContext) -> Iterator[Binding]:
        raise NotImplementedError

    def explain(self) -> str:
        raise NotImplementedError

    def explain_annotated(self) -> str:
        """The stable one-line form plus optimizer annotations."""
        line = self.explain()
        extras = []
        if self.access_path:
            extras.append(f"via {self.access_path}")
        if self.est_rows is not None:
            extras.append(f"est~{self.est_rows:g} rows")
        if extras:
            line += "  [" + ", ".join(extras) + "]"
        return line

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.condition}>"


class MembershipOp(PhysicalOp):
    """``Name(args)``: collection membership or predicate filter."""

    def __init__(self, condition: MembershipCond) -> None:
        self.condition = condition

    def extend(self, rows: Iterable[Binding],
               ctx: ExecutionContext) -> Iterator[Binding]:
        name = self.condition.name
        if ctx.graph.has_collection(name):
            yield from self._collection(rows, ctx)
        elif ctx.predicates.has(name):
            yield from self._predicate(rows, ctx)
        else:
            raise UnknownPredicateError(name)

    def _collection(self, rows: Iterable[Binding],
                    ctx: ExecutionContext) -> Iterator[Binding]:
        name = self.condition.name
        if len(self.condition.args) != 1:
            raise StruQLError(
                f"collection membership {name}(...) takes one argument")
        arg = self.condition.args[0]
        members = ctx.graph.collection(name)
        for row in rows:
            value = _resolve(arg, row)
            if value is None:
                assert isinstance(arg, Var)
                for member in members:
                    extended = extend_binding(row, arg.name, member)
                    if extended is not None:
                        yield extended
            else:
                lookup = value if isinstance(value, (Oid, Atom)) \
                    else Atom.string(value)
                if ctx.graph.in_collection(name, lookup):
                    yield row

    def _predicate(self, rows: Iterable[Binding],
                   ctx: ExecutionContext) -> Iterator[Binding]:
        fn = ctx.predicates.lookup(self.condition.name)
        for row in rows:
            values = []
            for arg in self.condition.args:
                value = _resolve(arg, row)
                if value is None:
                    assert isinstance(arg, Var)
                    raise UnboundVariableError(arg.name)
                values.append(_pred_arg(value))
            if fn(*values):
                yield row

    def explain(self) -> str:
        return f"member/filter {self.condition}"


class EdgeStepOp(PhysicalOp):
    """``x -> l -> y`` with arc variable ``l``: one edge, label bound."""

    def __init__(self, condition: PathCond) -> None:
        assert condition.arc_var is not None
        self.condition = condition

    def extend(self, rows: Iterable[Binding],
               ctx: ExecutionContext) -> Iterator[Binding]:
        cond = self.condition
        arc = cond.arc_var
        assert arc is not None
        for row in rows:
            source = _resolve(cond.source, row)
            target = _resolve(cond.target, row)
            label_value = row.get(arc)
            label = as_label(label_value) if label_value is not None else None
            yield from self._edges_for(row, source, target, label, ctx)

    def _edges_for(self, row: Binding, source: RuntimeValue | None,
                   target: RuntimeValue | None, label: str | None,
                   ctx: ExecutionContext) -> Iterator[Binding]:
        cond = self.condition
        if isinstance(source, Atom) or isinstance(source, str):
            return  # atoms/labels have no outgoing edges
        if isinstance(source, Oid):
            if label is not None:
                candidates = [(source, t) for t in ctx.targets(source, label)]
                labels = itertools.repeat(label)
                pairs = zip(candidates, labels)
            else:
                edges = ctx.graph.out_edges(source)
                pairs = (((e.source, e.target), e.label) for e in edges)
        elif target is not None:
            if label is not None:
                pairs = ((((s, target), label))
                         for s in ctx.sources(label, target))
            else:
                edges = ctx.graph.in_edges(target)
                pairs = (((e.source, e.target), e.label) for e in edges)
        else:
            if label is not None:
                pairs = (((s, t), label)
                         for s, t in ctx.attribute_extent(label))
            else:
                pairs = (((e.source, e.target), e.label)
                         for e in ctx.graph.edges())
        for (edge_source, edge_target), edge_label in pairs:
            extended: Binding | None = row
            if isinstance(cond.source, Var):
                extended = extend_binding(extended, cond.source.name,
                                          edge_source)
                if extended is None:
                    continue
            if target is not None and not runtime_eq(edge_target, target):
                continue
            assert cond.arc_var is not None
            extended = extend_binding(extended, cond.arc_var, edge_label)
            if extended is None:
                continue
            if isinstance(cond.target, Var):
                extended = extend_binding(extended, cond.target.name,
                                          edge_target)
                if extended is None:
                    continue
            yield extended

    def explain(self) -> str:
        return f"edge-step {self.condition}"


class PathOp(PhysicalOp):
    """``x -> R -> y`` with a regular path expression ``R``."""

    def __init__(self, condition: PathCond) -> None:
        assert condition.path is not None
        self.condition = condition

    @staticmethod
    def _single_label(path) -> str | None:
        """The label when the path is exactly one constant-label step —
        the case where indexed access paths apply."""
        from repro.struql.ast import LabelEquals as _LabelEquals
        from repro.struql.ast import RLabel as _RLabel
        if isinstance(path, _RLabel) and isinstance(path.pred,
                                                    _LabelEquals):
            return path.pred.label
        return None

    def _extend_single_label(self, rows: Iterable[Binding], label: str,
                             ctx: ExecutionContext) -> Iterator[Binding]:
        """Index-exploiting evaluation of ``x -> "label" -> y``."""
        cond = self.condition
        for row in rows:
            source = _resolve(cond.source, row)
            target = _resolve(cond.target, row)
            if isinstance(source, (Atom, str)):
                continue
            if isinstance(source, Oid):
                pairs = [(source, t) for t in ctx.targets(source, label)]
            elif target is not None:
                goal = _pred_arg(target)
                pairs = [(s, goal) for s in ctx.sources(label, goal)]
            else:
                pairs = ctx.attribute_extent(label)
            for edge_source, edge_target in pairs:
                extended: Binding | None = row
                if isinstance(cond.source, Var):
                    extended = extend_binding(extended, cond.source.name,
                                              edge_source)
                    if extended is None:
                        continue
                if target is not None and not runtime_eq(edge_target,
                                                         target):
                    continue
                if isinstance(cond.target, Var):
                    extended = extend_binding(extended, cond.target.name,
                                              edge_target)
                    if extended is None:
                        continue
                yield extended

    def extend(self, rows: Iterable[Binding],
               ctx: ExecutionContext) -> Iterator[Binding]:
        cond = self.condition
        assert cond.path is not None
        label = self._single_label(cond.path)
        if label is not None:
            yield from self._extend_single_label(rows, label, ctx)
            return
        evaluator = ctx.path_evaluator(cond.path)
        for row in rows:
            source = _resolve(cond.source, row)
            target = _resolve(cond.target, row)
            if source is not None and target is not None:
                origin = _pred_arg(source)
                goal = _pred_arg(target)
                if evaluator.connects(ctx.graph, origin, goal):
                    yield row
            elif source is not None:
                origin = _pred_arg(source)
                assert isinstance(cond.target, Var)
                for hit in evaluator.forward(ctx.graph, origin):
                    extended = extend_binding(row, cond.target.name, hit)
                    if extended is not None:
                        yield extended
            elif target is not None:
                goal = _pred_arg(target)
                assert isinstance(cond.source, Var)
                for hit in evaluator.backward(ctx.graph, goal):
                    extended = extend_binding(row, cond.source.name, hit)
                    if extended is not None:
                        yield extended
            else:
                assert isinstance(cond.source, Var)
                assert isinstance(cond.target, Var)
                for pair_source, pair_target in evaluator.pairs(ctx.graph):
                    extended = extend_binding(row, cond.source.name,
                                              pair_source)
                    if extended is None:
                        continue
                    extended = extend_binding(extended, cond.target.name,
                                              pair_target)
                    if extended is not None:
                        yield extended

    def explain(self) -> str:
        return f"path-traverse {self.condition}"


class ComparisonOp(PhysicalOp):
    """``left op right``: filter, or bind on equality with a constant."""

    def __init__(self, condition: ComparisonCond) -> None:
        self.condition = condition

    def extend(self, rows: Iterable[Binding],
               ctx: ExecutionContext) -> Iterator[Binding]:
        cond = self.condition
        for row in rows:
            left = _resolve(cond.left, row)
            right = _resolve(cond.right, row)
            if left is not None and right is not None:
                if runtime_compare(left, cond.op, right):
                    yield row
            elif cond.op == "=" and left is None and right is not None:
                assert isinstance(cond.left, Var)
                extended = extend_binding(row, cond.left.name, right)
                if extended is not None:
                    yield extended
            elif cond.op == "=" and right is None and left is not None:
                assert isinstance(cond.right, Var)
                extended = extend_binding(row, cond.right.name, left)
                if extended is not None:
                    yield extended
            else:
                missing = cond.left if left is None else cond.right
                assert isinstance(missing, Var)
                raise UnboundVariableError(missing.name)

    def explain(self) -> str:
        return f"compare {self.condition}"


class InOp(PhysicalOp):
    """``l in {c1, ..., cn}``: filter a bound variable or bind a free one."""

    def __init__(self, condition: InCond) -> None:
        self.condition = condition

    def extend(self, rows: Iterable[Binding],
               ctx: ExecutionContext) -> Iterator[Binding]:
        cond = self.condition
        for row in rows:
            value = row.get(cond.var.name)
            if value is not None:
                if any(runtime_eq(value, c.value) for c in cond.values):
                    yield row
            else:
                for const in cond.values:
                    extended = extend_binding(row, cond.var.name, const.value)
                    if extended is not None:
                        yield extended

    def explain(self) -> str:
        return f"in-filter {self.condition}"


class NegationOp(PhysicalOp):
    """``not(C)`` under active-domain semantics.

    Free variables of the inner condition range over the active domain —
    source positions over nodes, target positions over nodes and atoms,
    arc variables over labels — and a candidate row survives when the
    inner condition has *no* satisfying extension beyond those bindings
    (which, once the frees are pinned, is a simple failure test).  This
    supports the paper's complement-graph query.
    """

    def __init__(self, condition: NotCond) -> None:
        self.condition = condition
        self._inner = make_op(condition.inner)

    def extend(self, rows: Iterable[Binding],
               ctx: ExecutionContext) -> Iterator[Binding]:
        inner = self.condition.inner
        inner_vars = condition_variables(inner)
        for row in rows:
            free = sorted(v for v in inner_vars if v not in row)
            if not free:
                if not self._satisfiable(row, ctx):
                    yield row
                continue
            domains = [self._domain(name, ctx) for name in free]
            for combo in itertools.product(*domains):
                extended: Binding = dict(row)
                extended.update(zip(free, combo))
                if not self._satisfiable(extended, ctx):
                    yield extended

    def _satisfiable(self, row: Binding, ctx: ExecutionContext) -> bool:
        for _ in self._inner.extend([row], ctx):
            return True
        return False

    def _domain(self, name: str, ctx: ExecutionContext
                ) -> list[RuntimeValue]:
        inner = self.condition.inner
        if isinstance(inner, PathCond):
            if inner.arc_var == name:
                return list(ctx.labels())
            if isinstance(inner.source, Var) and inner.source.name == name:
                return list(ctx.graph.nodes())
        out: list[RuntimeValue] = list(ctx.graph.nodes())
        out.extend(ctx.graph.atoms())
        return out

    def explain(self) -> str:
        return f"negate {self.condition}"


class AggregateOp(PhysicalOp):
    """``fn(v) per group as n``: blocking window aggregation.

    Materializes its input, partitions rows by the group variables'
    values, aggregates the *distinct* values of ``v`` per partition, and
    emits every row extended with the result.  Distinctness matters: a
    publication with three authors contributes each author once to
    ``count(a) per x``, however many (l, v) rows the join produced.
    """

    def __init__(self, condition: AggregateCond) -> None:
        self.condition = condition

    def extend(self, rows: Iterable[Binding],
               ctx: ExecutionContext) -> Iterator[Binding]:
        cond = self.condition
        materialized = list(rows)
        partitions: dict[tuple, dict] = {}
        for row in materialized:
            value = row.get(cond.var.name)
            if value is None:
                raise UnboundVariableError(cond.var.name)
            key = tuple(self._group_key(row, g.name) for g in cond.group)
            bucket = partitions.setdefault(key, {})
            atom = _pred_arg(value)
            bucket.setdefault(atom if isinstance(atom, (Oid, Atom))
                              else value, None)
        results = {key: self._aggregate(list(bucket))
                   for key, bucket in partitions.items()}
        for row in materialized:
            key = tuple(self._group_key(row, g.name) for g in cond.group)
            extended = extend_binding(row, cond.out.name, results[key])
            if extended is not None:
                yield extended

    def _group_key(self, row: Binding, name: str):
        value = row.get(name)
        if value is None:
            raise UnboundVariableError(name)
        return _pred_arg(value) if isinstance(value, str) else value

    def _aggregate(self, values: list) -> Atom:
        fn = self.condition.fn
        if fn == "count":
            return Atom.int(len(values))
        atoms = [v for v in values if isinstance(v, Atom)]
        if len(atoms) != len(values):
            raise StruQLError(
                f"{fn}() requires atomic values, got node objects")
        if not atoms:
            raise StruQLError(f"{fn}() over an empty group")
        if fn == "min":
            return min(atoms)
        if fn == "max":
            return max(atoms)
        numbers = []
        for atom in atoms:
            try:
                numbers.append(float(str(atom.value)))
            except ValueError:
                raise StruQLError(
                    f"{fn}() requires numeric values, got {atom!r}") \
                    from None
        total = sum(numbers)
        if fn == "sum":
            if total.is_integer():
                return Atom.int(int(total))
            return Atom.float(total)
        if fn == "avg":
            return Atom.float(total / len(numbers))
        raise StruQLError(f"unknown aggregate {fn!r}")

    def explain(self) -> str:
        return f"aggregate {self.condition}"


def make_op(condition: Condition) -> PhysicalOp:
    """Build the physical operator implementing ``condition``."""
    if isinstance(condition, MembershipCond):
        return MembershipOp(condition)
    if isinstance(condition, PathCond):
        if condition.arc_var is not None:
            return EdgeStepOp(condition)
        return PathOp(condition)
    if isinstance(condition, ComparisonCond):
        return ComparisonOp(condition)
    if isinstance(condition, InCond):
        return InOp(condition)
    if isinstance(condition, NotCond):
        return NegationOp(condition)
    if isinstance(condition, AggregateCond):
        return AggregateOp(condition)
    raise TypeError(f"not a condition: {condition!r}")


class Plan:
    """An ordered pipeline of physical operators.

    Each :meth:`execute` refreshes :attr:`profiles` with one
    :class:`OpProfile` per operator that ran (operators after an empty
    intermediate result are skipped and get no profile).
    """

    def __init__(self, ops: list[PhysicalOp]) -> None:
        self.ops = ops
        self.profiles: list[OpProfile] = []

    @classmethod
    def from_conditions(cls, conditions: Iterable[Condition]) -> "Plan":
        """A plan evaluating conditions in the given order."""
        return cls([make_op(c) for c in conditions])

    def execute(self, ctx: ExecutionContext,
                initial: list[Binding] | None = None) -> list[Binding]:
        """Run the pipeline; ``initial`` defaults to one empty binding."""
        rows: list[Binding] = initial if initial is not None else [{}]
        recorder = get_recorder()
        profiles: list[OpProfile] = []
        self.profiles = profiles
        if recorder.enabled:
            scanned = recorder.metrics.counter("struql.rows_scanned")
            produced = recorder.metrics.counter("struql.rows_produced")
        for op in self.ops:
            before = len(rows)
            hits0 = ctx.index_hit_count
            misses0 = ctx.index_miss_count
            start = time.perf_counter()
            if recorder.enabled:
                with recorder.span("struql.op", op=op.explain()) as span:
                    rows = list(op.extend(rows, ctx))
                    span.set(rows_scanned=before, rows_produced=len(rows))
                    if op.est_rows is not None:
                        span.set(est_rows=op.est_rows)
                    if op.access_path is not None:
                        span.set(access_path=op.access_path)
                scanned.inc(before)
                produced.inc(len(rows))
            else:
                rows = list(op.extend(rows, ctx))
            profiles.append(OpProfile(
                op=op.explain(),
                condition=str(op.condition),
                rows_in=before,
                rows_out=len(rows),
                invocations=1,
                seconds=time.perf_counter() - start,
                index_hits=ctx.index_hit_count - hits0,
                index_misses=ctx.index_miss_count - misses0,
                est_rows=op.est_rows,
                access_path=op.access_path,
            ))
            if not rows:
                break
        return rows

    def explain(self) -> str:
        """A human-readable description of the operator pipeline.

        Annotated plans (after
        :func:`repro.struql.optimizer.cost.annotate_plan`) additionally
        show the chosen access path and the estimated cardinality after
        each operator; un-annotated plans print structure only, exactly
        as before.
        """
        lines = [f"{i + 1}. {op.explain_annotated()}"
                 for i, op in enumerate(self.ops)]
        return "\n".join(lines) if lines else "(empty plan)"

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"Plan({[op.explain() for op in self.ops]})"
