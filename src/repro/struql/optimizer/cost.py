"""The cost-based optimizer in the style of [FLO 97].

For each block the optimizer enumerates condition orders with
System-R-style dynamic programming over subsets (exact for conjunctions
of up to :data:`DP_LIMIT` conditions, greedy beyond), estimating
intermediate-result cardinalities from repository statistics
(:class:`~repro.repository.GraphStatistics`):

* a collection scan multiplies cardinality by the collection size;
* a forward edge step multiplies by the label's fan-out (average
  out-degree for arc variables bound later);
* a backward step multiplies by fan-in — this is how plans "exploit
  indexes on the data and the schema": a bound target with a backward
  index is often far cheaper than scanning a collection forward;
* equality against a constant applies the ``1/V(A)`` selectivity;
* regular path expressions estimate by structural recursion (fan-out
  products for concatenation, sums for alternation, reachable-set bound
  for closure).

The cost of a plan is the sum of its intermediate cardinalities (the
canonical CH-cost), which rewards orders that keep intermediates small.
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.model import Graph
from repro.repository.stats import GraphStatistics
from repro.struql.ast import (
    AggregateCond,
    AnyLabel,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    LabelEquals,
    LabelPredicate,
    MembershipCond,
    NotCond,
    PathCond,
    RAlt,
    RConcat,
    RegularPath,
    RLabel,
    RStar,
    Var,
    condition_variables,
)
from repro.struql.optimizer.base import (
    Optimizer,
    executable,
    register_optimizer,
)
from repro.struql.predicates import PredicateRegistry

#: Beyond this many conditions, fall back from DP to greedy.
DP_LIMIT = 10

_FILTER_SELECTIVITY = {"=": 0.1, "!=": 0.9, "<": 0.3, "<=": 0.35,
                       ">": 0.3, ">=": 0.35}


def _anchored(term: Var | Const, bound: set[str]) -> bool:
    return isinstance(term, Const) or term.name in bound


def estimate_path_fanout(path: RegularPath, stats: GraphStatistics) -> float:
    """Expected number of endpoints reached per start node."""
    cap = max(stats.node_count + stats.atom_count, 1)
    if isinstance(path, RLabel):
        if isinstance(path.pred, LabelEquals):
            return max(stats.label_fan_out(path.pred.label), 0.001)
        if isinstance(path.pred, AnyLabel):
            return max(stats.any_label_fan_out(), 0.001)
        if isinstance(path.pred, LabelPredicate):
            return max(stats.any_label_fan_out() * 0.5, 0.001)
    if isinstance(path, RConcat):
        product = 1.0
        for part in path.parts:
            product *= estimate_path_fanout(part, stats)
        return min(product, cap)
    if isinstance(path, RAlt):
        return min(sum(estimate_path_fanout(o, stats)
                       for o in path.options), cap)
    if isinstance(path, RStar):
        # Closure can reach a large fraction of the graph; assume half.
        return max(cap / 2.0, 1.0)
    raise TypeError(f"not a path: {path!r}")


def estimate_condition(condition: Condition, bound: set[str],
                       stats: GraphStatistics
                       ) -> tuple[float, float]:
    """``(multiplier, cost_weight)`` of applying a condition.

    ``multiplier`` scales the running cardinality estimate; the plan
    cost accumulates ``rows * cost_weight`` per applied condition.
    """
    if isinstance(condition, MembershipCond):
        size = stats.collection_size(condition.name)
        if size == 0:
            # Unknown name: external predicate filter (or empty
            # collection, which makes any order fine).
            return 0.5, 1.0
        arg = condition.args[0] if condition.args else None
        if arg is not None and isinstance(arg, Var) and arg.name in bound:
            total = max(stats.node_count + stats.atom_count, 1)
            return min(size / total, 1.0), 1.0
        return float(size), 1.0

    if isinstance(condition, PathCond):
        source_anchored = _anchored(condition.source, bound)
        target_anchored = _anchored(condition.target, bound)
        if condition.arc_var is not None:
            arc_bound = condition.arc_var in bound
            fan_out = stats.any_label_fan_out()
            if source_anchored and target_anchored:
                return (0.5 if arc_bound else 0.8), 1.0
            if source_anchored:
                mult = max(fan_out * (0.5 if arc_bound else 1.0), 0.01)
                return mult, 1.0
            if target_anchored:
                fan_in = max(stats.edge_count /
                             max(stats.node_count + stats.atom_count, 1),
                             0.01)
                return fan_in, 1.0
            return float(max(stats.edge_count, 1)), 2.0
        assert condition.path is not None
        fan = estimate_path_fanout(condition.path, stats)
        if source_anchored and target_anchored:
            return min(fan / max(stats.node_count, 1), 1.0), 2.0
        if source_anchored or target_anchored:
            return max(fan, 0.01), 2.0
        return float(max(stats.node_count, 1)) * max(fan, 0.01), 4.0

    if isinstance(condition, ComparisonCond):
        frees = condition_variables(condition) - bound
        if not frees:
            return _FILTER_SELECTIVITY.get(condition.op, 0.5), 0.1
        return 1.0, 0.1  # equality bind: one new row value per row

    if isinstance(condition, InCond):
        if condition.var.name in bound:
            return min(0.1 * len(condition.values), 1.0), 0.1
        return float(len(condition.values)), 0.1

    if isinstance(condition, NotCond):
        frees = condition_variables(condition.inner) - bound
        if not frees:
            return 0.9, 1.0
        domain = float(max(stats.node_count + stats.atom_count, 1))
        return domain ** len(frees) * 0.9, 5.0

    if isinstance(condition, AggregateCond):
        # Blocking pass over the rows; cardinality preserved.
        return 1.0, 1.0

    raise TypeError(f"not a condition: {condition!r}")


@register_optimizer
class CostBasedOptimizer(Optimizer):
    """DP plan enumeration with statistics; greedy beyond the DP limit."""

    name = "cost"

    def order(self, conditions: Sequence[Condition], bound: set[str],
              graph: Graph, predicates: PredicateRegistry,
              stats: GraphStatistics | None = None) -> list[Condition]:
        if stats is None:
            stats = GraphStatistics.gather(graph)
        if len(conditions) <= 1:
            return list(conditions)
        if len(conditions) <= DP_LIMIT:
            return self._dp_order(conditions, bound, graph, predicates,
                                  stats)
        return self._greedy_order(conditions, bound, graph, predicates,
                                  stats)

    # -- exact: DP over subsets ------------------------------------------------

    def _dp_order(self, conditions: Sequence[Condition], bound: set[str],
                  graph: Graph, predicates: PredicateRegistry,
                  stats: GraphStatistics) -> list[Condition]:
        n = len(conditions)
        full = (1 << n) - 1
        # best[mask] = (cost, rows, order, bound_set)
        best: dict[int, tuple[float, float, tuple[int, ...], frozenset[str]]]
        best = {0: (0.0, 1.0, (), frozenset(bound))}
        for mask in range(full + 1):
            if mask not in best:
                continue
            cost, rows, order, known = best[mask]
            for i in range(n):
                bit = 1 << i
                if mask & bit:
                    continue
                condition = conditions[i]
                if not executable(condition, set(known), graph, predicates):
                    continue
                multiplier, weight = estimate_condition(
                    condition, set(known), stats)
                new_rows = max(rows * multiplier, 0.0)
                new_cost = cost + rows * weight + new_rows
                new_mask = mask | bit
                entry = best.get(new_mask)
                if entry is None or new_cost < entry[0]:
                    best[new_mask] = (
                        new_cost, new_rows, order + (i,),
                        known | condition_variables(condition))
        final = best.get(full)
        if final is None:
            # No fully executable order exists (will error at runtime
            # regardless of order); keep source order.
            return list(conditions)
        return [conditions[i] for i in final[2]]

    # -- greedy fallback ----------------------------------------------------------

    def _greedy_order(self, conditions: Sequence[Condition],
                      bound: set[str], graph: Graph,
                      predicates: PredicateRegistry,
                      stats: GraphStatistics) -> list[Condition]:
        pending = list(conditions)
        ordered: list[Condition] = []
        known = set(bound)
        rows = 1.0
        while pending:
            best_index = None
            best_key = None
            for i, condition in enumerate(pending):
                if not executable(condition, known, graph, predicates):
                    continue
                multiplier, weight = estimate_condition(
                    condition, known, stats)
                key = rows * weight + rows * multiplier
                if best_key is None or key < best_key:
                    best_key = key
                    best_index = i
            if best_index is None:
                ordered.extend(pending)
                break
            condition = pending.pop(best_index)
            multiplier, _ = estimate_condition(condition, known, stats)
            rows = max(rows * multiplier, 0.0)
            known |= condition_variables(condition)
            ordered.append(condition)
        return ordered
