"""The cost-based optimizer in the style of [FLO 97].

For each block the optimizer enumerates condition orders with
System-R-style dynamic programming over subsets (exact for conjunctions
of up to :data:`DP_LIMIT` conditions, greedy beyond), estimating
intermediate-result cardinalities from repository statistics
(:class:`~repro.repository.GraphStatistics`):

* a collection scan multiplies cardinality by the collection size;
* a forward edge step multiplies by the label's fan-out (average
  out-degree for arc variables bound later);
* a backward step multiplies by fan-in — this is how plans "exploit
  indexes on the data and the schema": a bound target with a backward
  index is often far cheaper than scanning a collection forward;
* equality against a constant applies the ``1/V(A)`` selectivity;
* regular path expressions estimate by structural recursion (fan-out
  products for concatenation, sums for alternation, reachable-set bound
  for closure).

The cost of a plan is the sum of its intermediate cardinalities (the
canonical CH-cost), which rewards orders that keep intermediates small.
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.model import Graph
from repro.repository.stats import GraphStatistics
from repro.struql.ast import (
    AggregateCond,
    AnyLabel,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    LabelEquals,
    LabelPredicate,
    MembershipCond,
    NotCond,
    PathCond,
    RAlt,
    RConcat,
    RegularPath,
    RLabel,
    RStar,
    Var,
    condition_variables,
)
from repro.struql.optimizer.base import (
    Optimizer,
    OrderDecision,
    executable,
    register_optimizer,
)
from repro.struql.predicates import PredicateRegistry

#: Beyond this many conditions, fall back from DP to greedy.
DP_LIMIT = 10

_FILTER_SELECTIVITY = {"=": 0.1, "!=": 0.9, "<": 0.3, "<=": 0.35,
                       ">": 0.3, ">=": 0.35}


def _anchored(term: Var | Const, bound: set[str]) -> bool:
    return isinstance(term, Const) or term.name in bound


def estimate_path_fanout(path: RegularPath, stats: GraphStatistics) -> float:
    """Expected number of endpoints reached per start node."""
    cap = max(stats.node_count + stats.atom_count, 1)
    if isinstance(path, RLabel):
        if isinstance(path.pred, LabelEquals):
            return max(stats.label_fan_out(path.pred.label), 0.001)
        if isinstance(path.pred, AnyLabel):
            return max(stats.any_label_fan_out(), 0.001)
        if isinstance(path.pred, LabelPredicate):
            return max(stats.any_label_fan_out() * 0.5, 0.001)
    if isinstance(path, RConcat):
        product = 1.0
        for part in path.parts:
            product *= estimate_path_fanout(part, stats)
        return min(product, cap)
    if isinstance(path, RAlt):
        return min(sum(estimate_path_fanout(o, stats)
                       for o in path.options), cap)
    if isinstance(path, RStar):
        # Closure can reach a large fraction of the graph; assume half.
        return max(cap / 2.0, 1.0)
    raise TypeError(f"not a path: {path!r}")


def estimate_condition(condition: Condition, bound: set[str],
                       stats: GraphStatistics
                       ) -> tuple[float, float]:
    """``(multiplier, cost_weight)`` of applying a condition.

    ``multiplier`` scales the running cardinality estimate; the plan
    cost accumulates ``rows * cost_weight`` per applied condition.
    """
    if isinstance(condition, MembershipCond):
        size = stats.collection_size(condition.name)
        if size == 0:
            # Unknown name: external predicate filter (or empty
            # collection, which makes any order fine).
            return 0.5, 1.0
        arg = condition.args[0] if condition.args else None
        if arg is not None and isinstance(arg, Var) and arg.name in bound:
            total = max(stats.node_count + stats.atom_count, 1)
            return min(size / total, 1.0), 1.0
        return float(size), 1.0

    if isinstance(condition, PathCond):
        source_anchored = _anchored(condition.source, bound)
        target_anchored = _anchored(condition.target, bound)
        if condition.arc_var is not None:
            arc_bound = condition.arc_var in bound
            fan_out = stats.any_label_fan_out()
            if source_anchored and target_anchored:
                return (0.5 if arc_bound else 0.8), 1.0
            if source_anchored:
                mult = max(fan_out * (0.5 if arc_bound else 1.0), 0.01)
                return mult, 1.0
            if target_anchored:
                fan_in = max(stats.edge_count /
                             max(stats.node_count + stats.atom_count, 1),
                             0.01)
                return fan_in, 1.0
            return float(max(stats.edge_count, 1)), 2.0
        assert condition.path is not None
        fan = estimate_path_fanout(condition.path, stats)
        if source_anchored and target_anchored:
            return min(fan / max(stats.node_count, 1), 1.0), 2.0
        if source_anchored or target_anchored:
            return max(fan, 0.01), 2.0
        return float(max(stats.node_count, 1)) * max(fan, 0.01), 4.0

    if isinstance(condition, ComparisonCond):
        frees = condition_variables(condition) - bound
        if not frees:
            return _FILTER_SELECTIVITY.get(condition.op, 0.5), 0.1
        return 1.0, 0.1  # equality bind: one new row value per row

    if isinstance(condition, InCond):
        if condition.var.name in bound:
            return min(0.1 * len(condition.values), 1.0), 0.1
        return float(len(condition.values)), 0.1

    if isinstance(condition, NotCond):
        frees = condition_variables(condition.inner) - bound
        if not frees:
            return 0.9, 1.0
        domain = float(max(stats.node_count + stats.atom_count, 1))
        return domain ** len(frees) * 0.9, 5.0

    if isinstance(condition, AggregateCond):
        # Blocking pass over the rows; cardinality preserved.
        return 1.0, 1.0

    raise TypeError(f"not a condition: {condition!r}")


# -- access paths and decision traces (EXPLAIN support) -----------------------


def _single_label(path: RegularPath) -> str | None:
    """The label when a regular path is one constant-label step."""
    if isinstance(path, RLabel) and isinstance(path.pred, LabelEquals):
        return path.pred.label
    return None


def candidate_access_paths(condition: Condition, bound: set[str],
                           stats: GraphStatistics,
                           graph: Graph | None = None) -> list[dict]:
    """The access-path arms an operator could take for ``condition``.

    Mirrors the adaptive dispatch inside :mod:`repro.struql.plan`: each
    arm says whether it applies given the ``bound`` variables, a rough
    per-input-row cost from statistics, and whether the operator would
    actually choose it (the first applicable arm in dispatch priority).
    This is what the optimizer decision trace shows per candidate.
    """
    def arm(name: str, applicable: bool, cost: float) -> dict:
        return {"access_path": name, "applicable": applicable,
                "est_cost": round(max(cost, 0.0), 4), "chosen": False}

    domain = max(stats.node_count + stats.atom_count, 1)
    arms: list[dict] = []
    if isinstance(condition, PathCond):
        src = _anchored(condition.source, bound)
        tgt = _anchored(condition.target, bound)
        if condition.arc_var is not None:
            arc = condition.arc_var in bound
            fan_out = max(stats.any_label_fan_out(), 0.01)
            fan_in = max(stats.edge_count / domain, 0.01)
            per_label = stats.edge_count / max(len(stats.labels), 1) \
                if stats.labels else float(stats.edge_count)
            arms = [
                arm("forward-index" if arc else "out-edge-scan", src,
                    fan_out * (0.5 if arc else 1.0)),
                arm("backward-index" if arc else "in-edge-scan", tgt,
                    fan_in),
                arm("attribute-extent-scan", arc, per_label),
                arm("full-edge-scan", True, float(stats.edge_count)),
            ]
        else:
            assert condition.path is not None
            label = _single_label(condition.path)
            if label is not None:
                arms = [
                    arm("forward-index", src,
                        max(stats.label_fan_out(label), 0.001)),
                    arm("backward-index", tgt,
                        max(stats.label_fan_in(label), 0.001)),
                    arm("attribute-extent-scan", True,
                        float(stats.label_edges(label))),
                ]
            else:
                fan = estimate_path_fanout(condition.path, stats)
                arms = [
                    arm("automaton-connect", src and tgt,
                        fan / max(stats.node_count, 1)),
                    arm("automaton-forward", src, fan),
                    arm("automaton-backward", tgt, fan),
                    arm("automaton-pairs", True,
                        max(stats.node_count, 1) * max(fan, 0.01)),
                ]
    elif isinstance(condition, MembershipCond):
        size = stats.collection_size(condition.name)
        is_collection = (graph.has_collection(condition.name)
                         if graph is not None else size > 0)
        if is_collection:
            args = condition.args
            arg_bound = bool(args) and (
                isinstance(args[0], Const) or args[0].name in bound)
            arms = [
                arm("membership-test", arg_bound, 1.0),
                arm("collection-scan", True, float(size)),
            ]
        else:
            arms = [arm("predicate-filter", True, 1.0)]
    elif isinstance(condition, ComparisonCond):
        frees = condition_variables(condition) - bound
        arms = [
            arm("filter", not frees, 0.1),
            arm("equality-bind",
                bool(frees) and condition.op == "=" and len(frees) == 1,
                0.1),
        ]
    elif isinstance(condition, InCond):
        arms = [
            arm("filter", condition.var.name in bound,
                0.1 * len(condition.values)),
            arm("constant-list-bind", True, float(len(condition.values))),
        ]
    elif isinstance(condition, NotCond):
        frees = condition_variables(condition.inner) - bound
        arms = [
            arm("anti-filter", not frees, 1.0),
            arm("active-domain-scan", True,
                float(domain) ** max(len(frees), 1)),
        ]
    elif isinstance(condition, AggregateCond):
        arms = [arm("blocking-aggregate", True, 1.0)]
    else:
        raise TypeError(f"not a condition: {condition!r}")
    for candidate in arms:
        if candidate["applicable"]:
            candidate["chosen"] = True
            break
    return arms


def access_path_for(condition: Condition, bound: set[str],
                    stats: GraphStatistics,
                    graph: Graph | None = None) -> str:
    """The access path the operator will take given the bound set."""
    for candidate in candidate_access_paths(condition, bound, stats, graph):
        if candidate["chosen"]:
            return candidate["access_path"]
    return "unknown"


def annotate_plan(ops, bound: set[str], stats: GraphStatistics,
                  parent_rows: float = 1.0,
                  graph: Graph | None = None) -> float:
    """Thread cost-model estimates into an ordered operator pipeline.

    Sets ``est_multiplier``/``cost_weight``/``est_rows``/``access_path``
    on each :class:`~repro.struql.plan.PhysicalOp` so ``Plan.explain()``
    and EXPLAIN ANALYZE can show estimated-vs-actual side by side.
    Returns the final cardinality estimate.
    """
    rows = max(float(parent_rows), 1.0)
    known = set(bound)
    for op in ops:
        multiplier, weight = estimate_condition(op.condition, known, stats)
        rows = max(rows * multiplier, 0.0)
        op.est_multiplier = multiplier
        op.cost_weight = weight
        op.est_rows = round(rows, 2)
        op.access_path = access_path_for(op.condition, known, stats, graph)
        known |= condition_variables(op.condition)
    return rows


def trace_decisions(ordered: Sequence[Condition], bound: set[str],
                    stats: GraphStatistics, graph: Graph,
                    predicates: PredicateRegistry,
                    optimizer: Optimizer | None = None,
                    parent_rows: float = 1.0) -> list[OrderDecision]:
    """Replay an ordering as a step-by-step decision trace.

    For every position in ``ordered``, lists the candidates that were
    still pending — executability, cost-model multiplier/weight, the
    access path each would use, and the incremental cost the greedy
    objective assigns — marking the condition actually placed there.
    ``optimizer.annotate_candidate`` merges in optimizer-specific extras
    (e.g. the heuristic rank tier).
    """
    decisions: list[OrderDecision] = []
    pending = list(ordered)
    known = set(bound)
    rows = max(float(parent_rows), 1.0)
    for step, condition in enumerate(ordered, start=1):
        candidates = []
        for pending_condition in pending:
            runnable = executable(pending_condition, known, graph,
                                  predicates)
            multiplier, weight = estimate_condition(pending_condition,
                                                    known, stats)
            candidate = {
                "condition": str(pending_condition),
                "executable": runnable,
                "multiplier": round(multiplier, 4),
                "cost_weight": weight,
                "est_cost": round(rows * weight + rows * multiplier, 4),
                "access_path": access_path_for(pending_condition, known,
                                               stats, graph),
                "chosen": pending_condition is condition,
            }
            if optimizer is not None:
                candidate.update(optimizer.annotate_candidate(
                    pending_condition, known, graph))
            candidates.append(candidate)
        multiplier, _ = estimate_condition(condition, known, stats)
        rows = max(rows * multiplier, 0.0)
        known |= condition_variables(condition)
        pending.remove(condition)
        decisions.append(OrderDecision(
            step=step, chosen=str(condition),
            est_rows=round(rows, 2), candidates=candidates))
    return decisions


@register_optimizer
class CostBasedOptimizer(Optimizer):
    """DP plan enumeration with statistics; greedy beyond the DP limit."""

    name = "cost"

    def order(self, conditions: Sequence[Condition], bound: set[str],
              graph: Graph, predicates: PredicateRegistry,
              stats: GraphStatistics | None = None) -> list[Condition]:
        if stats is None:
            stats = GraphStatistics.gather(graph)
        if len(conditions) <= 1:
            return list(conditions)
        if len(conditions) <= DP_LIMIT:
            return self._dp_order(conditions, bound, graph, predicates,
                                  stats)
        return self._greedy_order(conditions, bound, graph, predicates,
                                  stats)

    # -- exact: DP over subsets ------------------------------------------------

    def _dp_order(self, conditions: Sequence[Condition], bound: set[str],
                  graph: Graph, predicates: PredicateRegistry,
                  stats: GraphStatistics) -> list[Condition]:
        n = len(conditions)
        full = (1 << n) - 1
        # best[mask] = (cost, rows, order, bound_set)
        best: dict[int, tuple[float, float, tuple[int, ...], frozenset[str]]]
        best = {0: (0.0, 1.0, (), frozenset(bound))}
        for mask in range(full + 1):
            if mask not in best:
                continue
            cost, rows, order, known = best[mask]
            for i in range(n):
                bit = 1 << i
                if mask & bit:
                    continue
                condition = conditions[i]
                if not executable(condition, set(known), graph, predicates):
                    continue
                multiplier, weight = estimate_condition(
                    condition, set(known), stats)
                new_rows = max(rows * multiplier, 0.0)
                new_cost = cost + rows * weight + new_rows
                new_mask = mask | bit
                entry = best.get(new_mask)
                if entry is None or new_cost < entry[0]:
                    best[new_mask] = (
                        new_cost, new_rows, order + (i,),
                        known | condition_variables(condition))
        final = best.get(full)
        if final is None:
            # No fully executable order exists (will error at runtime
            # regardless of order); keep source order.
            return list(conditions)
        return [conditions[i] for i in final[2]]

    # -- greedy fallback ----------------------------------------------------------

    def _greedy_order(self, conditions: Sequence[Condition],
                      bound: set[str], graph: Graph,
                      predicates: PredicateRegistry,
                      stats: GraphStatistics) -> list[Condition]:
        pending = list(conditions)
        ordered: list[Condition] = []
        known = set(bound)
        rows = 1.0
        while pending:
            best_index = None
            best_key = None
            for i, condition in enumerate(pending):
                if not executable(condition, known, graph, predicates):
                    continue
                multiplier, weight = estimate_condition(
                    condition, known, stats)
                key = rows * weight + rows * multiplier
                if best_key is None or key < best_key:
                    best_key = key
                    best_index = i
            if best_index is None:
                ordered.extend(pending)
                break
            condition = pending.pop(best_index)
            multiplier, _ = estimate_condition(condition, known, stats)
            rows = max(rows * multiplier, 0.0)
            known |= condition_variables(condition)
            ordered.append(condition)
        return ordered
