"""StruQL query optimizers (paper section 2.4).

    In S TRUDEL's first implementation, we built a simple heuristic-based
    optimizer.  Later, we developed a more comprehensive cost-based
    optimization algorithm [FLO 97].  The new optimizer can enumerate
    plans that exploit indexes on the data and the schema in order to
    choose the best plan.

Three optimizer generations are available, selectable by name:

* ``"naive"`` — evaluate conditions in source order (the semantics
  reference; also the baseline for benchmark A2);
* ``"heuristic"`` — the first prototype: rank-based greedy ordering with
  no statistics;
* ``"cost"`` — the [FLO 97]-style optimizer: dynamic-programming plan
  enumeration over condition orders using repository statistics, greedy
  fallback for large conjunctions.
"""

from repro.struql.optimizer.base import Optimizer, get_optimizer
from repro.struql.optimizer.cost import CostBasedOptimizer
from repro.struql.optimizer.heuristic import HeuristicOptimizer, NaiveOptimizer

__all__ = [
    "CostBasedOptimizer",
    "HeuristicOptimizer",
    "NaiveOptimizer",
    "Optimizer",
    "get_optimizer",
]
