"""Optimizer interface and executability rules shared by all generations.

An optimizer's job here is to choose the *order* in which a block's
conditions run (access-path choice inside each operator is adaptive; see
:mod:`repro.struql.plan`).  Orders must be *executable*: an operator
whose semantics cannot generate bindings (external predicates, ordered
comparisons, negations that would otherwise enumerate huge domains) must
not run before its variables are bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graph.model import Graph
from repro.struql.ast import (
    AggregateCond,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    MembershipCond,
    NotCond,
    PathCond,
    Var,
    condition_variables,
)
from repro.struql.predicates import PredicateRegistry


def executable(condition: Condition, bound: set[str], graph: Graph,
               predicates: PredicateRegistry) -> bool:
    """Whether ``condition`` may run when ``bound`` variables are bound."""
    if isinstance(condition, MembershipCond):
        if graph.has_collection(condition.name):
            return True
        # External predicates only filter: every variable argument must
        # already be bound.
        return all(not isinstance(arg, Var) or arg.name in bound
                   for arg in condition.args)
    if isinstance(condition, ComparisonCond):
        left_ok = isinstance(condition.left, Const) or \
            condition.left.name in bound
        right_ok = isinstance(condition.right, Const) or \
            condition.right.name in bound
        if condition.op == "=":
            return left_ok or right_ok
        return left_ok and right_ok
    if isinstance(condition, (PathCond, InCond)):
        return True
    if isinstance(condition, NotCond):
        # Always executable via active-domain enumeration, but orderings
        # should bind the inner variables first; the schedulers below
        # treat fully-bound negation as vastly cheaper.
        return True
    if isinstance(condition, AggregateCond):
        # Blocking: its input variables must be bound first.
        needed = {condition.var.name} | {g.name for g in condition.group}
        return needed <= bound
    raise TypeError(f"not a condition: {condition!r}")


@dataclass
class OrderDecision:
    """One step of an optimizer decision trace.

    Records, for the condition the optimizer placed at ``step``, every
    pending candidate it weighed at that point — each with its
    executability, cost-model numbers, and the access path the operator
    would choose given the bound set — plus the running cardinality
    estimate after applying the winner.  Produced by
    :func:`repro.struql.optimizer.cost.trace_decisions`.
    """

    step: int
    chosen: str
    est_rows: float
    candidates: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "chosen": self.chosen,
            "est_rows": self.est_rows,
            "candidates": self.candidates,
        }


class Optimizer:
    """Base class: order a conjunction of conditions."""

    #: Registry name used by :func:`get_optimizer`.
    name = "base"

    def order(self, conditions: Sequence[Condition], bound: set[str],
              graph: Graph, predicates: PredicateRegistry,
              stats=None) -> list[Condition]:
        """Return the conditions in execution order.

        ``bound`` names the variables already bound by ancestor blocks;
        ``stats`` is a :class:`~repro.repository.GraphStatistics` or
        ``None``.
        """
        raise NotImplementedError

    def annotate_candidate(self, condition: Condition, bound: set[str],
                           graph: Graph) -> dict:
        """Optimizer-specific extras for a decision-trace candidate.

        Subclasses override to expose the quantity their ordering
        actually ranks on (the heuristic optimizer reports its structural
        rank tier); the base contributes nothing.
        """
        return {}


_REGISTRY: dict[str, type[Optimizer]] = {}


def register_optimizer(cls: type[Optimizer]) -> type[Optimizer]:
    """Class decorator adding an optimizer to the name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def get_optimizer(name: str) -> Optimizer:
    """Instantiate an optimizer by registry name.

    Known names: ``naive``, ``heuristic``, ``cost``.
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown optimizer {name!r} (known: {known})") \
            from None


def newly_bound(condition: Condition, bound: set[str]) -> set[str]:
    """Variables ``condition`` would add to the bound set."""
    return condition_variables(condition) - bound
