"""The naive ordering and the first-prototype heuristic optimizer.

The heuristic optimizer uses no statistics — only structural ranks, in
the spirit of STRUDEL's "simple heuristic-based optimizer" first cut:

1. run filters (everything bound) as early as possible;
2. prefer binders that are cheap and selective (equality/``in`` binds);
3. then collection scans (anchored generators);
4. then edge steps / paths with at least one anchored endpoint;
5. leave unanchored scans and negations for last.
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.model import Graph
from repro.struql.ast import (
    AggregateCond,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    MembershipCond,
    NotCond,
    PathCond,
    Var,
    condition_variables,
)
from repro.struql.optimizer.base import (
    Optimizer,
    executable,
    register_optimizer,
)
from repro.struql.predicates import PredicateRegistry


@register_optimizer
class NaiveOptimizer(Optimizer):
    """Source order, except that non-executable conditions are delayed
    until their variables are bound (otherwise evaluation would error,
    not merely be slow)."""

    name = "naive"

    def order(self, conditions: Sequence[Condition], bound: set[str],
              graph: Graph, predicates: PredicateRegistry,
              stats=None) -> list[Condition]:
        pending = list(conditions)
        ordered: list[Condition] = []
        known = set(bound)
        while pending:
            for i, condition in enumerate(pending):
                if executable(condition, known, graph, predicates):
                    ordered.append(pending.pop(i))
                    known |= condition_variables(condition)
                    break
            else:
                # Nothing executable: emit the rest in order and let the
                # runtime raise its precise unbound-variable error.
                ordered.extend(pending)
                break
        return ordered


def _anchored(term: Var | Const, bound: set[str]) -> bool:
    return isinstance(term, Const) or term.name in bound


@register_optimizer
class HeuristicOptimizer(Optimizer):
    """Greedy rank-based ordering without statistics."""

    name = "heuristic"

    def order(self, conditions: Sequence[Condition], bound: set[str],
              graph: Graph, predicates: PredicateRegistry,
              stats=None) -> list[Condition]:
        pending = list(conditions)
        ordered: list[Condition] = []
        known = set(bound)
        while pending:
            best_index = min(
                (i for i in range(len(pending))
                 if executable(pending[i], known, graph, predicates)),
                key=lambda i: self.rank(pending[i], known, graph),
                default=None)
            if best_index is None:
                ordered.extend(pending)
                break
            condition = pending.pop(best_index)
            ordered.append(condition)
            known |= condition_variables(condition)
        return ordered

    def annotate_candidate(self, condition: Condition, bound: set[str],
                           graph: Graph) -> dict:
        """Expose the structural rank tier in decision traces."""
        tier, new = self.rank(condition, bound, graph)
        return {"rank_tier": tier, "new_vars": new}

    def rank(self, condition: Condition, bound: set[str],
             graph: Graph) -> tuple[int, int]:
        """Lower is better; the second component keeps ties stable-ish
        by preferring conditions that bind fewer new variables."""
        new = len(condition_variables(condition) - bound)
        if isinstance(condition, NotCond):
            # Fully bound negation is a plain filter; free variables make
            # it an active-domain enumeration — dead last.
            return (1, new) if new == 0 else (9, new)
        if new == 0:
            return (0, 0)  # pure filter
        if isinstance(condition, ComparisonCond):
            return (2, new)  # equality bind
        if isinstance(condition, InCond):
            return (2, new)
        if isinstance(condition, MembershipCond):
            if graph.has_collection(condition.name):
                return (3, new)
            return (8, new)  # predicate with free vars: shouldn't happen
        if isinstance(condition, AggregateCond):
            return (5, new)  # blocking; run once inputs are bound
        if isinstance(condition, PathCond):
            anchored = _anchored(condition.source, bound) or _anchored(
                condition.target, bound)
            if condition.arc_var is not None:
                return (4, new) if anchored else (6, new)
            return (5, new) if anchored else (7, new)
        raise TypeError(f"not a condition: {condition!r}")
