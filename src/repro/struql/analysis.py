"""Static analysis of StruQL queries: range restriction and lint checks.

Section 3: "the active-domain semantics is unsatisfactory because it
depends on how we define the active domain [...] there it is solved by
considering range-restricted queries [...].  We are currently specifying
range-restriction rules for StruQL."  This module supplies those rules:

A block's conditions are **range restricted** when every variable is
*positively bound* — bound by a generator whose results come from the
data itself (collection membership, a path condition anchored through
positively bound variables or constants, an ``in`` enumeration, an
equality against a constant or a positively bound variable) — before it
is used by a negation, an ordered comparison, or a construction clause.
Such queries mean the same thing under any definition of the active
domain; the complement-graph query is the canonical *non*-restricted
example (its meaning changes if the active domain changes).

:func:`analyze` returns a list of :class:`Warning` diagnostics; a query
with none is domain independent.  :func:`is_range_restricted` is the
boolean convenience.  The analyzer never rejects: the engine still
evaluates non-restricted queries under active-domain semantics, exactly
as the paper's prototype did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.struql.ast import (
    AggregateCond,
    Block,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    LabelEquals,
    MembershipCond,
    NotCond,
    PathCond,
    Query,
    RAlt,
    RConcat,
    RLabel,
    RStar,
    RegularPath,
    Var,
    condition_variables,
)
from repro.struql.parser import parse_query


@dataclass(frozen=True)
class Warning:
    """One diagnostic: which block, which condition, what's wrong."""

    block: str
    condition: str
    variables: tuple[str, ...]
    reason: str

    def __str__(self) -> str:
        block = self.block or "(top)"
        variables = ", ".join(self.variables)
        return f"[{block}] {self.condition}: {self.reason} ({variables})"


def _positively_bindable(condition: Condition,
                         bound: set[str]) -> set[str]:
    """Variables this condition can positively bind, given ``bound``."""
    if isinstance(condition, MembershipCond):
        # Collection membership generates; external predicates only
        # filter — but we cannot always distinguish statically, and a
        # filter binds nothing, so the conservative answer for arity-1
        # conditions is "generates" only when used as a collection.
        # Multi-argument conditions are certainly predicates.
        if len(condition.args) == 1 and isinstance(condition.args[0], Var):
            return {condition.args[0].name}
        return set()
    if isinstance(condition, PathCond):
        anchored = (isinstance(condition.source, Const)
                    or (isinstance(condition.source, Var)
                        and condition.source.name in bound)
                    or isinstance(condition.target, Const)
                    or (isinstance(condition.target, Var)
                        and condition.target.name in bound))
        # Paths always range over actual edges of the graph, so even an
        # unanchored path binds its variables from the data: positive.
        out = set()
        if isinstance(condition.source, Var):
            out.add(condition.source.name)
        if isinstance(condition.target, Var):
            out.add(condition.target.name)
        if condition.arc_var is not None:
            out.add(condition.arc_var)
        return out
    if isinstance(condition, ComparisonCond) and condition.op == "=":
        out = set()
        left_ok = isinstance(condition.left, Const) or (
            isinstance(condition.left, Var)
            and condition.left.name in bound)
        right_ok = isinstance(condition.right, Const) or (
            isinstance(condition.right, Var)
            and condition.right.name in bound)
        if left_ok and isinstance(condition.right, Var):
            out.add(condition.right.name)
        if right_ok and isinstance(condition.left, Var):
            out.add(condition.left.name)
        return out
    if isinstance(condition, InCond):
        return {condition.var.name}
    if isinstance(condition, AggregateCond):
        needed = {condition.var.name} | {g.name for g in condition.group}
        if needed <= bound:
            return {condition.out.name}
        return set()
    return set()


def _block_warnings(block: Block, inherited: set[str],
                    warnings: list[Warning]) -> set[str]:
    """Check one block; returns the positively-bound set it exports."""
    bound = set(inherited)
    # Fixpoint: conditions may bind in any order, so saturate.
    changed = True
    positive_conditions = [c for c in block.conditions
                           if not isinstance(c, NotCond)]
    while changed:
        changed = False
        for condition in positive_conditions:
            new = _positively_bindable(condition, bound) - bound
            if new:
                bound |= new
                changed = True
    # Now flag the offenders.
    for condition in block.conditions:
        if isinstance(condition, NotCond):
            free = tuple(sorted(
                condition_variables(condition.inner) - bound))
            if free:
                warnings.append(Warning(
                    block=block.label, condition=str(condition),
                    variables=free,
                    reason="negation over variables not positively "
                           "bound: meaning depends on the active domain"))
        elif isinstance(condition, ComparisonCond):
            if condition.op == "=":
                frees = tuple(sorted(
                    condition_variables(condition) - bound))
            else:
                frees = tuple(sorted(
                    name for name in condition_variables(condition)
                    if name not in bound))
            if frees:
                warnings.append(Warning(
                    block=block.label, condition=str(condition),
                    variables=frees,
                    reason="comparison over unbound variables"))
    for term in block.creates:
        frees = tuple(sorted(
            {arg.name for arg in term.args if isinstance(arg, Var)}
            - bound))
        if frees:
            warnings.append(Warning(
                block=block.label, condition=f"create {term}",
                variables=frees,
                reason="Skolem arguments not positively bound"))
    return bound


def analyze(query: Query | str) -> list[Warning]:
    """All range-restriction warnings for ``query`` (empty = safe)."""
    if isinstance(query, str):
        query = parse_query(query)
    warnings: list[Warning] = []

    def walk(block: Block, inherited: set[str]) -> None:
        bound = _block_warnings(block, inherited, warnings)
        for child in block.children:
            walk(child, bound)

    # Declared form parameters are bound by the caller.
    walk(query.root, set(query.params))
    return warnings


def is_range_restricted(query: Query | str) -> bool:
    """Whether the query's meaning is independent of the active domain."""
    return not analyze(query)


# --------------------------------------------------------------------------
# Read footprints — what part of the data graph a query depends on.
#
# A materialized query result stays valid until the data it *read*
# changes.  The footprint is the static over-approximation of that read
# set: which collections the conditions enumerate and which edge labels
# they traverse.  ``any_label``/``any_collection`` mark the wildcard
# reads (``->*->``, arc variables without a narrowing equality, blocks
# that are not range restricted) where precision is impossible and the
# only sound answer is "everything".


@dataclass(frozen=True)
class Footprint:
    """Collections and edge labels a set of conditions may read.

    Soundness contract: if a data change is not matched by
    :meth:`intersects`, re-evaluating the conditions is guaranteed to
    produce the same result.  Over-approximation is fine (a spurious
    invalidation recomputes an identical view); missing a read is not.
    """

    collections: frozenset[str] = frozenset()
    labels: frozenset[str] = frozenset()
    any_label: bool = False
    any_collection: bool = False

    def union(self, other: "Footprint") -> "Footprint":
        return Footprint(
            collections=self.collections | other.collections,
            labels=self.labels | other.labels,
            any_label=self.any_label or other.any_label,
            any_collection=self.any_collection or other.any_collection)

    def intersects(self, change) -> bool:
        """Whether ``change`` (duck-typed: ``labels``, ``collections``,
        ``full``) may affect data this footprint reads."""
        if change is None or getattr(change, "full", False):
            return True
        labels = getattr(change, "labels", frozenset())
        collections = getattr(change, "collections", frozenset())
        if labels and (self.any_label or (self.labels & labels)):
            return True
        if collections and (self.any_collection
                            or (self.collections & collections)):
            return True
        return False

    def as_dict(self) -> dict:
        return {
            "collections": sorted(self.collections),
            "labels": sorted(self.labels),
            "any_label": self.any_label,
            "any_collection": self.any_collection,
        }

    def __str__(self) -> str:
        parts = []
        if self.any_collection:
            parts.append("collections:*")
        elif self.collections:
            parts.append("collections:" + ",".join(sorted(self.collections)))
        if self.any_label:
            parts.append("labels:*")
        elif self.labels:
            parts.append("labels:" + ",".join(sorted(self.labels)))
        return " ".join(parts) or "(empty)"


#: The footprint that intersects every change — the sound fallback.
ANY_FOOTPRINT = Footprint(any_label=True, any_collection=True)


def _path_footprint(path: RegularPath) -> Footprint:
    """Labels a regular path expression may traverse."""
    if isinstance(path, RLabel):
        if isinstance(path.pred, LabelEquals):
            return Footprint(labels=frozenset({path.pred.label}))
        # AnyLabel and named label predicates range over all edges.
        return Footprint(any_label=True)
    if isinstance(path, (RConcat, RAlt)):
        parts = path.parts if isinstance(path, RConcat) else path.options
        out = Footprint()
        for part in parts:
            out = out.union(_path_footprint(part))
        return out
    if isinstance(path, RStar):
        return _path_footprint(path.inner)
    return ANY_FOOTPRINT


def _arc_constants(conditions: Iterable[Condition]) -> dict[str, set[str]]:
    """Arc variable -> the constant labels it is pinned to, if any.

    ``x -> l -> v, l = "year"`` reads only ``year`` edges: the equality
    (or an ``in`` enumeration) narrows the wildcard.  Only top-level
    positive constraints narrow; anything inside ``not(...)`` does not
    restrict the rows the path itself enumerates.
    """
    pinned: dict[str, set[str]] = {}
    for condition in conditions:
        if isinstance(condition, ComparisonCond) and condition.op == "=":
            pairs = [(condition.left, condition.right),
                     (condition.right, condition.left)]
            for var, const in pairs:
                if isinstance(var, Var) and isinstance(const, Const):
                    pinned.setdefault(var.name, set()).add(
                        str(const.value.value))
        elif isinstance(condition, InCond):
            pinned.setdefault(condition.var.name, set()).update(
                str(v.value.value) for v in condition.values)
    return pinned


def conditions_footprint(
        conditions: Iterable[Condition]) -> Footprint:
    """The read footprint of one conjunction of conditions."""
    conditions = list(conditions)
    pinned = _arc_constants(conditions)
    out = Footprint()

    def visit(condition: Condition, narrowing: bool) -> None:
        nonlocal out
        if isinstance(condition, MembershipCond):
            # Arity-1 is a collection read (or a pure predicate over an
            # already-bound value — treating it as a collection read is
            # a harmless over-approximation).  Multi-argument conditions
            # are external predicates: pure functions, no data read.
            if len(condition.args) == 1:
                out = out.union(Footprint(
                    collections=frozenset({condition.name})))
        elif isinstance(condition, PathCond):
            if condition.path is not None:
                out = out.union(_path_footprint(condition.path))
            else:
                labels = pinned.get(condition.arc_var) if narrowing else None
                if labels:
                    out = out.union(Footprint(labels=frozenset(labels)))
                else:
                    out = out.union(Footprint(any_label=True))
        elif isinstance(condition, NotCond):
            # The negation flips when data matching the inner condition
            # appears; its reads count.  Narrowing equalities scoped
            # outside the negation do not restrict what the inner path
            # ranges over, so the inner arc variables stay wildcards.
            visit(condition.inner, narrowing=False)
        # Comparisons, in-lists and aggregates consume values that flow
        # from the conditions above: no direct data read.

    for condition in conditions:
        visit(condition, narrowing=True)
    return out


def _restricted(conditions: list[Condition]) -> bool:
    """Whether a condition list is range restricted on its own."""
    block = Block(conditions=list(conditions))
    warnings: list[Warning] = []
    _block_warnings(block, set(), warnings)
    return not warnings


def unit_footprint(unit) -> Footprint:
    """Footprint of one flattened conjunctive unit.

    A unit whose conditions are not range restricted evaluates under
    active-domain semantics: *any* new object can change its meaning,
    so the only sound footprint is :data:`ANY_FOOTPRINT`.
    """
    conditions = list(unit.conditions)
    if not _restricted(conditions):
        return ANY_FOOTPRINT
    return conditions_footprint(conditions)


def query_footprint(query: Query | str) -> Footprint:
    """The read footprint of a whole query: union over its blocks.

    Each block's effective conditions are its own conjoined with its
    ancestors' (the paper's block semantics), so narrowing equalities
    inherited from enclosing blocks apply.
    """
    if isinstance(query, str):
        query = parse_query(query)
    out = Footprint()

    def walk(block: Block, inherited: list[Condition]) -> None:
        nonlocal out
        effective = inherited + list(block.conditions)
        if not _restricted(effective):
            out = out.union(ANY_FOOTPRINT)
        else:
            out = out.union(conditions_footprint(effective))
        for child in block.children:
            walk(child, effective)

    walk(query.root, [])
    return out
