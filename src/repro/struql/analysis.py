"""Static analysis of StruQL queries: range restriction and lint checks.

Section 3: "the active-domain semantics is unsatisfactory because it
depends on how we define the active domain [...] there it is solved by
considering range-restricted queries [...].  We are currently specifying
range-restriction rules for StruQL."  This module supplies those rules:

A block's conditions are **range restricted** when every variable is
*positively bound* — bound by a generator whose results come from the
data itself (collection membership, a path condition anchored through
positively bound variables or constants, an ``in`` enumeration, an
equality against a constant or a positively bound variable) — before it
is used by a negation, an ordered comparison, or a construction clause.
Such queries mean the same thing under any definition of the active
domain; the complement-graph query is the canonical *non*-restricted
example (its meaning changes if the active domain changes).

:func:`analyze` returns a list of :class:`Warning` diagnostics; a query
with none is domain independent.  :func:`is_range_restricted` is the
boolean convenience.  The analyzer never rejects: the engine still
evaluates non-restricted queries under active-domain semantics, exactly
as the paper's prototype did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.struql.ast import (
    AggregateCond,
    Block,
    ComparisonCond,
    Condition,
    Const,
    InCond,
    MembershipCond,
    NotCond,
    PathCond,
    Query,
    Var,
    condition_variables,
)
from repro.struql.parser import parse_query


@dataclass(frozen=True)
class Warning:
    """One diagnostic: which block, which condition, what's wrong."""

    block: str
    condition: str
    variables: tuple[str, ...]
    reason: str

    def __str__(self) -> str:
        block = self.block or "(top)"
        variables = ", ".join(self.variables)
        return f"[{block}] {self.condition}: {self.reason} ({variables})"


def _positively_bindable(condition: Condition,
                         bound: set[str]) -> set[str]:
    """Variables this condition can positively bind, given ``bound``."""
    if isinstance(condition, MembershipCond):
        # Collection membership generates; external predicates only
        # filter — but we cannot always distinguish statically, and a
        # filter binds nothing, so the conservative answer for arity-1
        # conditions is "generates" only when used as a collection.
        # Multi-argument conditions are certainly predicates.
        if len(condition.args) == 1 and isinstance(condition.args[0], Var):
            return {condition.args[0].name}
        return set()
    if isinstance(condition, PathCond):
        anchored = (isinstance(condition.source, Const)
                    or (isinstance(condition.source, Var)
                        and condition.source.name in bound)
                    or isinstance(condition.target, Const)
                    or (isinstance(condition.target, Var)
                        and condition.target.name in bound))
        # Paths always range over actual edges of the graph, so even an
        # unanchored path binds its variables from the data: positive.
        out = set()
        if isinstance(condition.source, Var):
            out.add(condition.source.name)
        if isinstance(condition.target, Var):
            out.add(condition.target.name)
        if condition.arc_var is not None:
            out.add(condition.arc_var)
        return out
    if isinstance(condition, ComparisonCond) and condition.op == "=":
        out = set()
        left_ok = isinstance(condition.left, Const) or (
            isinstance(condition.left, Var)
            and condition.left.name in bound)
        right_ok = isinstance(condition.right, Const) or (
            isinstance(condition.right, Var)
            and condition.right.name in bound)
        if left_ok and isinstance(condition.right, Var):
            out.add(condition.right.name)
        if right_ok and isinstance(condition.left, Var):
            out.add(condition.left.name)
        return out
    if isinstance(condition, InCond):
        return {condition.var.name}
    if isinstance(condition, AggregateCond):
        needed = {condition.var.name} | {g.name for g in condition.group}
        if needed <= bound:
            return {condition.out.name}
        return set()
    return set()


def _block_warnings(block: Block, inherited: set[str],
                    warnings: list[Warning]) -> set[str]:
    """Check one block; returns the positively-bound set it exports."""
    bound = set(inherited)
    # Fixpoint: conditions may bind in any order, so saturate.
    changed = True
    positive_conditions = [c for c in block.conditions
                           if not isinstance(c, NotCond)]
    while changed:
        changed = False
        for condition in positive_conditions:
            new = _positively_bindable(condition, bound) - bound
            if new:
                bound |= new
                changed = True
    # Now flag the offenders.
    for condition in block.conditions:
        if isinstance(condition, NotCond):
            free = tuple(sorted(
                condition_variables(condition.inner) - bound))
            if free:
                warnings.append(Warning(
                    block=block.label, condition=str(condition),
                    variables=free,
                    reason="negation over variables not positively "
                           "bound: meaning depends on the active domain"))
        elif isinstance(condition, ComparisonCond):
            if condition.op == "=":
                frees = tuple(sorted(
                    condition_variables(condition) - bound))
            else:
                frees = tuple(sorted(
                    name for name in condition_variables(condition)
                    if name not in bound))
            if frees:
                warnings.append(Warning(
                    block=block.label, condition=str(condition),
                    variables=frees,
                    reason="comparison over unbound variables"))
    for term in block.creates:
        frees = tuple(sorted(
            {arg.name for arg in term.args if isinstance(arg, Var)}
            - bound))
        if frees:
            warnings.append(Warning(
                block=block.label, condition=f"create {term}",
                variables=frees,
                reason="Skolem arguments not positively bound"))
    return bound


def analyze(query: Query | str) -> list[Warning]:
    """All range-restriction warnings for ``query`` (empty = safe)."""
    if isinstance(query, str):
        query = parse_query(query)
    warnings: list[Warning] = []

    def walk(block: Block, inherited: set[str]) -> None:
        bound = _block_warnings(block, inherited, warnings)
        for child in block.children:
            walk(child, bound)

    # Declared form parameters are bound by the caller.
    walk(query.root, set(query.params))
    return warnings


def is_range_restricted(query: Query | str) -> bool:
    """Whether the query's meaning is independent of the active domain."""
    return not analyze(query)
