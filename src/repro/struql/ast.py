"""Abstract syntax of StruQL (Site TRansformation Und Query Language).

The core fragment (paper section 3):

.. code-block:: text

    input  G
    where  C1, ..., Ck
    [create N1, ..., Nn]
    [link   L1, ..., Lp]
    [collect G1, ..., Gq]
    output R

plus the *block* facility: ``where/create/link/collect`` clauses may be
intermixed and nested in ``{ ... }`` blocks; a nested block's conditions
conjoin with its ancestors'.  The AST mirrors that structure directly:

* a :class:`Query` holds the input/output graph names and a root
  :class:`Block`;
* a :class:`Block` holds conditions, create/link/collect specs, and
  child blocks;
* conditions are :class:`MembershipCond` (collection membership or
  external predicate — disambiguated *semantically*, per the paper),
  :class:`PathCond` (regular path expressions or single arc-variable
  edges), :class:`ComparisonCond`, :class:`InCond`, :class:`NotCond`;
* regular path expressions are trees of :class:`RLabel`,
  :class:`RConcat`, :class:`RAlt`, :class:`RStar` whose leaves are label
  predicates (:class:`LabelEquals`, :class:`AnyLabel`,
  :class:`LabelPredicate`).

Terms are :class:`Var`, :class:`Const` and — in construction clauses —
:class:`SkolemTerm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.graph.values import Atom

# --------------------------------------------------------------------------
# Terms


@dataclass(frozen=True)
class Var:
    """A query variable; node or arc is decided by syntactic position."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant value (wrapping an :class:`~repro.graph.Atom`)."""

    value: Atom

    def __str__(self) -> str:
        if self.value.type.name == "STRING":
            return f'"{self.value.value}"'
        return str(self.value)


@dataclass(frozen=True)
class SkolemTerm:
    """An application of a Skolem function, e.g. ``YearPage(v)``.

    Arguments are variables or constants; by convention the same function
    applied to the same inputs yields the same new oid.
    """

    fn: str
    args: tuple[Union[Var, Const], ...] = ()

    def __str__(self) -> str:
        return f"{self.fn}({', '.join(str(a) for a in self.args)})"


#: Anything that may appear as a link endpoint.
Term = Union[Var, Const, SkolemTerm]

#: A link's label: a constant string or an arc variable.
LabelTerm = Union[Var, Const]


# --------------------------------------------------------------------------
# Regular path expressions  (R ::= Pred | R.R | R|R | R*)


@dataclass(frozen=True)
class LabelEquals:
    """Leaf predicate: the edge label equals a constant string."""

    label: str

    def __str__(self) -> str:
        return f'"{self.label}"'


@dataclass(frozen=True)
class AnyLabel:
    """Leaf predicate ``true``: any edge label matches."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class LabelPredicate:
    """Leaf predicate: a named (built-in or external) predicate applied
    to the edge label, e.g. ``isName`` in ``isName*``."""

    name: str

    def __str__(self) -> str:
        return self.name


LabelPred = Union[LabelEquals, AnyLabel, LabelPredicate]


@dataclass(frozen=True)
class RLabel:
    """A single edge whose label satisfies a leaf predicate."""

    pred: LabelPred

    def __str__(self) -> str:
        return str(self.pred)


@dataclass(frozen=True)
class RConcat:
    """Path concatenation ``R.R``."""

    parts: tuple["RegularPath", ...]

    def __str__(self) -> str:
        return ".".join(_wrap(p) for p in self.parts)


@dataclass(frozen=True)
class RAlt:
    """Alternation ``R|R``."""

    options: tuple["RegularPath", ...]

    def __str__(self) -> str:
        return "|".join(_wrap(o) for o in self.options)


@dataclass(frozen=True)
class RStar:
    """Kleene closure ``R*`` (zero or more repetitions)."""

    inner: "RegularPath"

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


RegularPath = Union[RLabel, RConcat, RAlt, RStar]

#: The abbreviation ``*`` of the paper: ``true*`` — any path, any length.
ANY_PATH: RegularPath = RStar(RLabel(AnyLabel()))


def _wrap(expr: "RegularPath") -> str:
    text = str(expr)
    if isinstance(expr, (RAlt, RConcat)):
        return f"({text})"
    return text


# --------------------------------------------------------------------------
# Conditions


@dataclass(frozen=True)
class MembershipCond:
    """``Name(t1, ..., tn)`` — collection membership (arity 1, name is a
    collection of the input graph) or an external/built-in predicate.

    The paper resolves the ambiguity semantically; so do we, at
    evaluation time against the input graph's collections and the
    predicate registry.
    """

    name: str
    args: tuple[Union[Var, Const], ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class PathCond:
    """``x -> R -> y`` (regular path) or ``x -> l -> y`` (arc variable).

    Exactly one of ``path`` and ``arc_var`` is set: an identifier in edge
    position that is not a registered predicate is an arc variable and
    binds to the label of a single edge.
    """

    source: Union[Var, Const]
    target: Union[Var, Const]
    path: RegularPath | None = None
    arc_var: str | None = None

    def __post_init__(self) -> None:
        if (self.path is None) == (self.arc_var is None):
            raise ValueError("PathCond needs exactly one of path/arc_var")

    def __str__(self) -> str:
        middle = self.arc_var if self.arc_var else str(self.path)
        return f"{self.source} -> {middle} -> {self.target}"


#: Comparison operators of the language.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class ComparisonCond:
    """``left op right`` with dynamic value coercion."""

    left: Union[Var, Const]
    op: str
    right: Union[Var, Const]

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InCond:
    """``l in { "Paper", "TechReport", ... }`` — label-set membership."""

    var: Var
    values: tuple[Const, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(v) for v in self.values)
        return f"{self.var} in {{{inner}}}"


@dataclass(frozen=True)
class NotCond:
    """``not(C)`` — negation, under active-domain semantics."""

    inner: "Condition"

    def __str__(self) -> str:
        return f"not({self.inner})"


#: Aggregate functions of the grouping extension.
AGGREGATE_FUNCTIONS = ("count", "min", "max", "sum", "avg")


@dataclass(frozen=True)
class AggregateCond:
    """``fn(v) [per x, y] as n`` — the grouping/aggregation extension.

    The paper notes the query stage "is independently extensible; for
    example, we could extend it to include grouping and aggregation"
    (section 5.2).  Semantics (window-function style, which keeps the
    two-stage model intact): partition the current binding relation by
    the ``group`` variables' values, aggregate the *distinct* values of
    ``var`` within each partition, and extend every row with ``out``
    bound to its partition's aggregate.  ``count`` works on anything;
    ``min``/``max`` use atom ordering; ``sum``/``avg`` require numeric
    coercion.
    """

    fn: str
    var: Var
    group: tuple[Var, ...]
    out: Var

    def __str__(self) -> str:
        per = f" per {', '.join(str(g) for g in self.group)}" \
            if self.group else ""
        return f"{self.fn}({self.var}){per} as {self.out}"


Condition = Union[MembershipCond, PathCond, ComparisonCond, InCond,
                  NotCond, AggregateCond]


# --------------------------------------------------------------------------
# Construction clauses


@dataclass(frozen=True)
class LinkSpec:
    """One ``link`` expression ``source -> label -> target``.

    StruQL's semantics require the source to be a Skolem term (edges are
    only added out of new nodes); the parser enforces this.
    """

    source: SkolemTerm
    label: LabelTerm
    target: Term

    def __str__(self) -> str:
        return f"{self.source} -> {self.label} -> {self.target}"


@dataclass(frozen=True)
class CollectSpec:
    """One ``collect`` expression ``Name(term)``."""

    name: str
    term: Term

    def __str__(self) -> str:
        return f"{self.name}({self.term})"


@dataclass
class Block:
    """A ``where/create/link/collect`` group plus nested child blocks.

    A block's *effective* conditions are its own conjoined with every
    ancestor's; the construction clauses run once per binding of the
    effective conditions (the paper's two-stage semantics applied per
    block, equivalent to the flattened joint query).
    """

    conditions: list[Condition] = field(default_factory=list)
    creates: list[SkolemTerm] = field(default_factory=list)
    links: list[LinkSpec] = field(default_factory=list)
    collects: list[CollectSpec] = field(default_factory=list)
    children: list["Block"] = field(default_factory=list)
    #: Short label (Q1, Q2, ...) assigned in parse order; used by site
    #: schemas to name the where-clauses governing each link.
    label: str = ""

    def walk(self) -> Iterator["Block"]:
        """This block and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def variables(self) -> set[str]:
        """Names of all variables mentioned in this block's conditions."""
        out: set[str] = set()
        for condition in self.conditions:
            out |= condition_variables(condition)
        return out


@dataclass
class Query:
    """A complete StruQL query.

    ``params`` names evaluation-time parameters (form/user input) that
    the caller binds via ``QueryEngine.evaluate(..., initial=...)``.
    """

    input_name: str
    output_name: str
    root: Block
    text: str = ""
    params: tuple[str, ...] = ()

    def blocks(self) -> Iterator[Block]:
        """All blocks, preorder from the root."""
        return self.root.walk()

    def skolem_functions(self) -> list[str]:
        """Names of every Skolem function created anywhere in the query."""
        seen: dict[str, None] = {}
        for block in self.blocks():
            for term in block.creates:
                seen.setdefault(term.fn, None)
        return list(seen)

    def link_count(self) -> int:
        """Total number of ``link`` expressions — the paper's measure of
        a site's structural complexity (Fig 8)."""
        return sum(len(block.links) for block in self.blocks())

    def __str__(self) -> str:
        return self.text or f"input {self.input_name} ... output {self.output_name}"


# --------------------------------------------------------------------------
# Variable accounting helpers


def term_variables(term: Term) -> set[str]:
    """Variable names appearing in a term."""
    if isinstance(term, Var):
        return {term.name}
    if isinstance(term, SkolemTerm):
        out: set[str] = set()
        for arg in term.args:
            out |= term_variables(arg)
        return out
    return set()


def condition_variables(condition: Condition) -> set[str]:
    """Variable names appearing anywhere in a condition."""
    if isinstance(condition, MembershipCond):
        out: set[str] = set()
        for arg in condition.args:
            out |= term_variables(arg)
        return out
    if isinstance(condition, PathCond):
        out = term_variables(condition.source) | term_variables(
            condition.target)
        if condition.arc_var:
            out.add(condition.arc_var)
        return out
    if isinstance(condition, ComparisonCond):
        return term_variables(condition.left) | term_variables(
            condition.right)
    if isinstance(condition, InCond):
        return {condition.var.name}
    if isinstance(condition, NotCond):
        return condition_variables(condition.inner)
    if isinstance(condition, AggregateCond):
        out = {condition.var.name, condition.out.name}
        out.update(g.name for g in condition.group)
        return out
    raise TypeError(f"not a condition: {condition!r}")


def condition_generates(condition: Condition) -> set[str]:
    """Variables a condition can *bind* (vs merely test).

    Negations and comparisons only filter; membership and path
    conditions can enumerate bindings for their free variables.
    """
    if isinstance(condition, (MembershipCond, PathCond)):
        return condition_variables(condition)
    if isinstance(condition, ComparisonCond) and condition.op == "=":
        # An equality against a constant can bind its variable side.
        out: set[str] = set()
        if isinstance(condition.left, Var) and isinstance(
                condition.right, Const):
            out.add(condition.left.name)
        if isinstance(condition.right, Var) and isinstance(
                condition.left, Const):
            out.add(condition.right.name)
        return out
    if isinstance(condition, InCond):
        return {condition.var.name}
    if isinstance(condition, AggregateCond):
        return {condition.out.name}
    return set()
