"""Regular path expression compilation and evaluation.

StruQL's regular path expressions (``R ::= Pred | R.R | R|R | R*``) are
more general than regular expressions because their leaves are
*predicates on edge labels*.  Following the classic approach (also used
by G+ and LOREL), an expression compiles to a nondeterministic finite
automaton over label predicates (:class:`PathAutomaton`); the condition
``x -> R -> y`` is evaluated by a breadth-first search over the *product*
of the data graph and the automaton, which computes exactly the pairs
connected by a matching path — including transitive closure for ``*``.

Three evaluation directions are provided, chosen by which endpoint is
bound at run time:

* :func:`eval_forward` — source bound: all matching targets;
* :func:`eval_backward` — target bound: all matching sources (runs the
  reversed automaton over reversed edges);
* :func:`eval_pairs` — neither bound: all matching pairs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.graph.model import Graph, GraphObject, Oid
from repro.graph.values import Atom
from repro.struql.ast import (
    AnyLabel,
    LabelEquals,
    LabelPred,
    LabelPredicate,
    RAlt,
    RConcat,
    RegularPath,
    RLabel,
    RStar,
)
from repro.struql.predicates import PredicateRegistry

#: Evaluates a leaf label predicate against a concrete label.
LabelTest = Callable[[str], bool]


@dataclass
class PathAutomaton:
    """An NFA over edge-label predicates.

    States are integers.  ``transitions[s]`` lists ``(pred, t)`` pairs;
    ``epsilon[s]`` lists epsilon-successor states.
    """

    start: int
    accept: int
    transitions: dict[int, list[tuple[LabelPred, int]]] = field(
        default_factory=dict)
    epsilon: dict[int, list[int]] = field(default_factory=dict)
    state_count: int = 0

    def add_transition(self, src: int, pred: LabelPred, dst: int) -> None:
        self.transitions.setdefault(src, []).append((pred, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon.setdefault(src, []).append(dst)

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """All states reachable from ``states`` by epsilon moves."""
        seen = set(states)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon.get(state, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    @property
    def accepts_empty(self) -> bool:
        """Whether the empty path matches (e.g. ``R*`` with zero steps)."""
        return self.accept in self.epsilon_closure([self.start])

    def reversed(self) -> "PathAutomaton":
        """The automaton of the reversed language."""
        out = PathAutomaton(start=self.accept, accept=self.start,
                            state_count=self.state_count)
        for src, edges in self.transitions.items():
            for pred, dst in edges:
                out.add_transition(dst, pred, src)
        for src, dsts in self.epsilon.items():
            for dst in dsts:
                out.add_epsilon(dst, src)
        return out


def compile_path(expr: RegularPath) -> PathAutomaton:
    """Thompson-construct an automaton from a regular path expression."""
    builder = _Builder()
    start, accept = builder.build(expr)
    automaton = PathAutomaton(start=start, accept=accept,
                              transitions=builder.transitions,
                              epsilon=builder.epsilon,
                              state_count=builder.count)
    return automaton


class _Builder:
    def __init__(self) -> None:
        self.count = 0
        self.transitions: dict[int, list[tuple[LabelPred, int]]] = {}
        self.epsilon: dict[int, list[int]] = {}

    def _fresh(self) -> int:
        state = self.count
        self.count += 1
        return state

    def _trans(self, src: int, pred: LabelPred, dst: int) -> None:
        self.transitions.setdefault(src, []).append((pred, dst))

    def _eps(self, src: int, dst: int) -> None:
        self.epsilon.setdefault(src, []).append(dst)

    def build(self, expr: RegularPath) -> tuple[int, int]:
        if isinstance(expr, RLabel):
            start, accept = self._fresh(), self._fresh()
            self._trans(start, expr.pred, accept)
            return start, accept
        if isinstance(expr, RConcat):
            start, cursor = None, None
            for part in expr.parts:
                s, a = self.build(part)
                if start is None:
                    start = s
                else:
                    self._eps(cursor, s)
                cursor = a
            assert start is not None and cursor is not None
            return start, cursor
        if isinstance(expr, RAlt):
            start, accept = self._fresh(), self._fresh()
            for option in expr.options:
                s, a = self.build(option)
                self._eps(start, s)
                self._eps(a, accept)
            return start, accept
        if isinstance(expr, RStar):
            start, accept = self._fresh(), self._fresh()
            s, a = self.build(expr.inner)
            self._eps(start, s)
            self._eps(a, accept)
            self._eps(start, accept)
            self._eps(accept, start)
            return start, accept
        raise TypeError(f"not a regular path expression: {expr!r}")


def make_label_test(pred: LabelPred,
                    registry: PredicateRegistry) -> LabelTest:
    """Turn a leaf predicate into a concrete label test."""
    if isinstance(pred, LabelEquals):
        wanted = pred.label
        return lambda label: label == wanted
    if isinstance(pred, AnyLabel):
        return lambda label: True
    if isinstance(pred, LabelPredicate):
        fn = registry.lookup(pred.name)
        return lambda label: bool(fn(Atom.string(label)))
    raise TypeError(f"not a label predicate: {pred!r}")


class PathEvaluator:
    """Evaluates one compiled path expression over one graph.

    Construct once per (expression, graph, registry) and reuse: label
    tests are memoized per distinct label, which matters on graphs with
    many edges but few labels (the common case for site graphs).
    """

    def __init__(self, expr: RegularPath, registry: PredicateRegistry) -> None:
        self.automaton = compile_path(expr)
        self._reversed: PathAutomaton | None = None
        self._registry = registry
        self._tests: dict[int, LabelTest] = {}
        self._label_cache: dict[tuple[int, str], bool] = {}

    def _test(self, pred: LabelPred, label: str) -> bool:
        key = (id(pred), label)
        cached = self._label_cache.get(key)
        if cached is None:
            test = self._tests.get(id(pred))
            if test is None:
                test = make_label_test(pred, self._registry)
                self._tests[id(pred)] = test
            cached = test(label)
            self._label_cache[key] = cached
        return cached

    # -- directed evaluations ------------------------------------------------

    def forward(self, graph: Graph, source: GraphObject
                ) -> set[GraphObject]:
        """All objects ``y`` with a matching path ``source -> ... -> y``."""
        return self._search(graph, source, self.automaton, forward=True)

    def backward(self, graph: Graph, target: GraphObject
                 ) -> set[GraphObject]:
        """All nodes ``x`` with a matching path ``x -> ... -> target``."""
        if self._reversed is None:
            self._reversed = self.automaton.reversed()
        return self._search(graph, target, self._reversed, forward=False)

    def pairs(self, graph: Graph) -> set[tuple[GraphObject, GraphObject]]:
        """All matching ``(x, y)`` pairs in the graph."""
        out: set[tuple[GraphObject, GraphObject]] = set()
        for node in graph.nodes():
            for target in self.forward(graph, node):
                out.add((node, target))
        return out

    def connects(self, graph: Graph, source: GraphObject,
                 target: GraphObject) -> bool:
        """Whether a matching path connects ``source`` to ``target``."""
        return target in self.forward(graph, source)

    # -- product search ----------------------------------------------------------

    def _search(self, graph: Graph, origin: GraphObject,
                automaton: PathAutomaton, forward: bool) -> set[GraphObject]:
        results: set[GraphObject] = set()
        start_states = automaton.epsilon_closure([automaton.start])
        if automaton.accept in start_states:
            results.add(origin)
        seen: set[tuple[GraphObject, int]] = {
            (origin, s) for s in start_states}
        queue: deque[tuple[GraphObject, int]] = deque(seen)
        while queue:
            obj, state = queue.popleft()
            edges = (graph.out_edges(obj) if forward and isinstance(obj, Oid)
                     else graph.in_edges(obj) if not forward
                     else ())
            transitions = automaton.transitions.get(state, ())
            if not transitions:
                continue
            for edge in edges:
                neighbour = edge.target if forward else edge.source
                for pred, next_state in transitions:
                    if not self._test(pred, edge.label):
                        continue
                    for closed in automaton.epsilon_closure([next_state]):
                        key = (neighbour, closed)
                        if key in seen:
                            continue
                        seen.add(key)
                        if closed == automaton.accept:
                            results.add(neighbour)
                        queue.append(key)
        return results
