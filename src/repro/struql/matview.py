"""Materialized StruQL views with footprint-based invalidation.

The paper's central move — a site is a *declared query* over the data
graph — makes every derived result re-computable, and therefore
cacheable, by construction.  This module is the serving-path cache that
exploits it: a :class:`MatViewRegistry` stores computed values (query
result graphs, rendered page bodies) keyed by a stable identifier, and
each entry carries a *dependency summary*: the source ids it was
computed from plus the collection/label read footprint
(:class:`repro.struql.analysis.Footprint`) of the query that produced
it.  When a source changes, callers describe the change as a
:class:`ChangeSummary` and the registry drops only the views whose
footprint intersects it — views with no footprint recorded fall back to
an unconditional drop, which is the sound default.

Two serving-path guards ride along:

* **per-view single-flight** — N concurrent misses on the same key run
  one computation; the other N-1 wait on it and then read the stored
  view (``matview.singleflight_waits`` counts the waits);
* **admission control** — a bounded semaphore caps concurrent
  computations across all keys, so a cold cache under heavy traffic
  degrades to a queue instead of a thundering herd
  (``matview.admission_waits`` counts the stalls).

Every invalidation bumps a registry generation; a computation that
straddles an invalidation returns its value to the caller but does
*not* enter the cache (it may have read pre-change data), so a request
issued after ``invalidate()`` returns can never be served a stale view.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.obs.trace import get_recorder
from repro.struql.analysis import Footprint, query_footprint
from repro.obs.queries import fingerprint as query_fingerprint

#: Default bound on concurrently running computations per registry.
DEFAULT_MAX_INFLIGHT = 8

#: Default LRU bound on stored views per registry.
DEFAULT_MAX_VIEWS = 4096


@dataclass(frozen=True)
class ChangeSummary:
    """What a data mutation touched, as seen by view invalidation.

    ``labels`` are the edge labels added or modified, ``collections``
    the collection names whose membership changed, ``sources`` the
    source/graph ids affected.  ``full=True`` (or an empty summary via
    :meth:`ChangeSummary.full_change`) means "assume everything
    changed" — every view is dropped.
    """

    labels: frozenset[str] = frozenset()
    collections: frozenset[str] = frozenset()
    sources: frozenset[str] = frozenset()
    full: bool = False

    @classmethod
    def for_labels(cls, *labels: str) -> "ChangeSummary":
        return cls(labels=frozenset(labels))

    @classmethod
    def for_collections(cls, *names: str) -> "ChangeSummary":
        return cls(collections=frozenset(names))

    @classmethod
    def for_sources(cls, *sources: str) -> "ChangeSummary":
        return cls(sources=frozenset(sources))

    @classmethod
    def full_change(cls) -> "ChangeSummary":
        return cls(full=True)

    def union(self, other: "ChangeSummary") -> "ChangeSummary":
        return ChangeSummary(
            labels=self.labels | other.labels,
            collections=self.collections | other.collections,
            sources=self.sources | other.sources,
            full=self.full or other.full)

    def as_dict(self) -> dict:
        return {
            "labels": sorted(self.labels),
            "collections": sorted(self.collections),
            "sources": sorted(self.sources),
            "full": self.full,
        }

    def __str__(self) -> str:
        if self.full:
            return "(full)"
        parts = []
        if self.labels:
            parts.append("labels:" + ",".join(sorted(self.labels)))
        if self.collections:
            parts.append(
                "collections:" + ",".join(sorted(self.collections)))
        if self.sources:
            parts.append("sources:" + ",".join(sorted(self.sources)))
        return " ".join(parts) or "(empty)"


@dataclass
class MaterializedView:
    """One stored view: the value plus its dependency summary."""

    key: str
    value: object
    fingerprint: str = ""
    footprint: Optional[Footprint] = None
    sources: frozenset[str] = frozenset()
    compute_seconds: float = 0.0
    created_at: float = field(default_factory=time.time)
    hits: int = 0

    def depends_on(self, change: Optional[ChangeSummary]) -> bool:
        """Whether ``change`` may affect this view (conservative)."""
        if change is None or getattr(change, "full", False):
            return True
        if self.footprint is None:
            # Unknown dependencies: the only sound answer is "drop".
            return True
        sources = getattr(change, "sources", frozenset())
        if sources and (self.sources & sources):
            return True
        return self.footprint.intersects(change)

    def summary(self) -> dict:
        return {
            "key": self.key,
            "fingerprint": self.fingerprint,
            "footprint": (self.footprint.as_dict()
                          if self.footprint is not None else None),
            "sources": sorted(self.sources),
            "hits": self.hits,
            "compute_seconds": round(self.compute_seconds, 6),
            "age_seconds": round(time.time() - self.created_at, 3),
        }


class _Flight:
    """In-flight computation marker for single-flight coordination."""

    __slots__ = ("event", "generation")

    def __init__(self, generation: int) -> None:
        self.event = threading.Event()
        self.generation = generation


class MatViewRegistry:
    """Bounded, thread-safe store of materialized views.

    ``max_views`` is the LRU capacity; ``max_inflight`` bounds the
    number of computations running at once (the admission guard).
    All mutating operations are safe to call from any thread.
    """

    def __init__(self, max_views: int = DEFAULT_MAX_VIEWS,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT) -> None:
        self.max_views = max_views
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._views: "OrderedDict[str, MaterializedView]" = OrderedDict()
        self._inflight: dict[str, _Flight] = {}
        self._gate = threading.BoundedSemaphore(max_inflight)
        self._generation = 0
        self.stats = {
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "views_dropped": 0,
            "singleflight_waits": 0,
            "admission_waits": 0,
            "evictions": 0,
            "stale_discards": 0,
        }

    # -- serving ----------------------------------------------------------

    def get(self, key: str):
        """The stored view for ``key``, or ``None`` (counts a hit)."""
        with self._lock:
            view = self._views.get(key)
            if view is None:
                return None
            view.hits += 1
            self._views.move_to_end(key)
            self.stats["hits"] += 1
        get_recorder().metrics.counter("matview.hits").inc()
        return view

    def get_or_compute(self, key: str, compute: Callable[[], object], *,
                       fingerprint: str = "",
                       footprint=None,
                       sources: Iterable[str] = ()) -> object:
        """The view's value, computing and storing it on a miss.

        ``footprint`` is a :class:`Footprint`, ``None`` (unknown —
        the view is dropped on *any* invalidation), or a zero-argument
        callable evaluated after ``compute()`` returns (for callers
        that discover dependencies during the computation).
        Concurrent misses on the same key run ``compute`` once.
        """
        while True:
            leader = False
            with self._lock:
                view = self._views.get(key)
                if view is not None:
                    view.hits += 1
                    self._views.move_to_end(key)
                    self.stats["hits"] += 1
                    value = view.value
                    break
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight(self._generation)
                    self._inflight[key] = flight
                    leader = True
            if leader:
                return self._run_flight(
                    key, flight, compute, fingerprint=fingerprint,
                    footprint=footprint, sources=sources)
            # Single-flight: wait for the leader, then re-check the
            # store (or take over if the leader failed / went stale).
            with self._lock:
                self.stats["singleflight_waits"] += 1
            get_recorder().metrics.counter(
                "matview.singleflight_waits").inc()
            flight.event.wait()
        get_recorder().metrics.counter("matview.hits").inc()
        return value

    def _run_flight(self, key: str, flight: _Flight,
                    compute: Callable[[], object], *,
                    fingerprint: str, footprint,
                    sources: Iterable[str]) -> object:
        with self._lock:
            self.stats["misses"] += 1
        get_recorder().metrics.counter("matview.misses").inc()
        # Admission guard: bound concurrent computations.
        if not self._gate.acquire(blocking=False):
            with self._lock:
                self.stats["admission_waits"] += 1
            get_recorder().metrics.counter("matview.admission_waits").inc()
            self._gate.acquire()
        started = time.perf_counter()
        try:
            value = compute()
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            self._gate.release()
            flight.event.set()
            raise
        seconds = time.perf_counter() - started
        if callable(footprint):
            footprint = footprint()
        view = MaterializedView(
            key=key, value=value, fingerprint=fingerprint,
            footprint=footprint, sources=frozenset(sources),
            compute_seconds=seconds)
        with self._lock:
            self._inflight.pop(key, None)
            if self._generation == flight.generation:
                self._views[key] = view
                self._views.move_to_end(key)
                while len(self._views) > self.max_views:
                    self._views.popitem(last=False)
                    self.stats["evictions"] += 1
            else:
                # An invalidation landed while we were computing: the
                # value may predate the change, so hand it to our
                # caller but keep it out of the cache.
                self.stats["stale_discards"] += 1
        self._gate.release()
        flight.event.set()
        return value

    # -- invalidation -----------------------------------------------------

    def invalidate(self, change: Optional[ChangeSummary] = None) -> int:
        """Drop views affected by ``change`` (all of them if ``None``).

        Returns the number of views dropped.  Views without a recorded
        footprint are always dropped — unknown dependencies make a full
        drop the only sound choice.
        """
        with self._lock:
            self._generation += 1
            if change is None or getattr(change, "full", False):
                dropped = len(self._views)
                self._views.clear()
            else:
                victims = [k for k, v in self._views.items()
                           if v.depends_on(change)]
                for k in victims:
                    del self._views[k]
                dropped = len(victims)
            self.stats["invalidations"] += 1
            self.stats["views_dropped"] += dropped
        metrics = get_recorder().metrics
        metrics.counter("matview.invalidations").inc()
        if dropped:
            metrics.counter("matview.views_dropped").inc(dropped)
        return dropped

    def drop(self, key: str) -> bool:
        """Drop one view by key."""
        with self._lock:
            self._generation += 1
            present = self._views.pop(key, None) is not None
            if present:
                self.stats["views_dropped"] += 1
        return present

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    def snapshot(self, limit: int = 50) -> dict:
        """The /debug/matviews document: totals plus hottest views."""
        with self._lock:
            stats = dict(self.stats)
            views = list(self._views.values())
            inflight = len(self._inflight)
            generation = self._generation
        views.sort(key=lambda v: v.hits, reverse=True)
        return {
            "enabled": True,
            "views": len(views),
            "max_views": self.max_views,
            "max_inflight": self.max_inflight,
            "inflight": inflight,
            "generation": generation,
            **stats,
            "top": [view.summary() for view in views[:limit]],
        }


# --------------------------------------------------------------------------
# Query-level materialization


def materialize_query(engine, query, graph,
                      registry: MatViewRegistry, *,
                      sources: Iterable[str] = ()):
    """Evaluate ``query`` through the registry, keyed by fingerprint.

    The stored view is the query's result graph; its dependency summary
    is the static :func:`~repro.struql.analysis.query_footprint` plus
    the given source ids (defaulting to the input graph's name).  The
    same (query, graph) pair served again is a cache hit until an
    intersecting :class:`ChangeSummary` invalidates it.
    """
    from repro.struql.parser import parse_query
    if isinstance(query, str):
        query = parse_query(query)
    fp = query_fingerprint(query)
    key = f"query:{fp}:{graph.name}"
    source_ids = frozenset(sources) or frozenset({graph.name})

    def compute():
        return engine.evaluate(query, graph).output

    return registry.get_or_compute(
        key, compute, fingerprint=fp,
        footprint=query_footprint(query), sources=source_ids)
