"""StruQL's construction stage: ``create``, ``link``, ``collect``.

Paper section 3 (Semantics):

    For each row in the relation, first construct all new node oids, as
    specified in the ``create`` clause. [...] Next, construct the new
    edges, as described in the ``link`` clause. [...] edges can only be
    added from new nodes to new or existing nodes; existing nodes are
    immutable [...].  Finally, the semantic of the ``collect`` clause is
    obvious.

:class:`GraphBuilder` applies one block's construction clauses to each
binding row, materializing the output graph.  It enforces the
immutability rule dynamically as well (the parser already enforces it
statically): nodes imported from the input graph are fenced with
:meth:`~repro.graph.Graph.freeze_existing` semantics.
"""

from __future__ import annotations

from repro.errors import StruQLSemanticError
from repro.graph.model import Graph, GraphObject, Oid
from repro.graph.values import Atom
from repro.obs.lineage import get_lineage
from repro.struql.ast import (
    Block,
    CollectSpec,
    Const,
    LinkSpec,
    SkolemTerm,
    Term,
    Var,
)
from repro.struql.bindings import Binding, RuntimeValue, as_label
from repro.struql.skolem import SkolemRegistry


class GraphBuilder:
    """Builds the output graph of a query, row by row."""

    def __init__(self, output: Graph, input_graph: Graph,
                 skolem: SkolemRegistry) -> None:
        self.output = output
        self.input_graph = input_graph
        self.skolem = skolem
        #: Input-graph nodes are immutable; Skolem nodes minted here are
        #: not.  Tracked per builder, since a pre-existing output graph
        #: (multi-query composition) keeps its own created nodes mutable.
        self._input_nodes: set[Oid] = set(input_graph.nodes())

    # -- term resolution ---------------------------------------------------

    def resolve(self, term: Term, row: Binding) -> RuntimeValue:
        """The runtime value of a construction term under a binding."""
        if isinstance(term, Const):
            return term.value
        if isinstance(term, Var):
            try:
                return row[term.name]
            except KeyError:
                raise StruQLSemanticError(
                    f"variable {term.name!r} unbound at construction "
                    f"time") from None
        if isinstance(term, SkolemTerm):
            args = [self.resolve(arg, row) for arg in term.args]
            return self.skolem.apply(term.fn, args)
        raise TypeError(f"not a term: {term!r}")

    def _as_node(self, value: RuntimeValue, context: str) -> GraphObject:
        if isinstance(value, str):
            return Atom.string(value)
        return value

    # -- clause application ------------------------------------------------------

    def apply_creates(self, creates: list[SkolemTerm], row: Binding) -> None:
        """Mint and add all ``create`` nodes for one binding row."""
        for term in creates:
            oid = self.resolve(term, row)
            assert isinstance(oid, Oid)
            self.output.add_node(oid)

    def apply_links(self, links: list[LinkSpec], row: Binding) -> None:
        """Add all ``link`` edges for one binding row."""
        lineage = get_lineage()
        for link in links:
            source = self.resolve(link.source, row)
            assert isinstance(source, Oid)
            if source in self._input_nodes:
                raise StruQLSemanticError(
                    f"link {link} would add an edge out of immutable "
                    f"input node {source}")
            label_value = self.resolve(link.label, row)
            label = as_label(label_value)
            if label is None:
                raise StruQLSemanticError(
                    f"link {link}: label value {label_value!r} is not "
                    f"usable as an edge label")
            target = self._as_node(self.resolve(link.target, row),
                                   f"link {link}")
            self.output.add_edge(source, label, target)
            # Provenance: a created node's content depends on every
            # node it links to (zero-argument pages like OrgIndex()
            # reach their sources only through these edges).
            if lineage.enabled:
                lineage.record_dep(source, target)

    def apply_collects(self, collects: list[CollectSpec],
                       row: Binding) -> None:
        """Add all ``collect`` memberships for one binding row."""
        for collect in collects:
            value = self._as_node(self.resolve(collect.term, row),
                                  f"collect {collect}")
            self.output.declare_collection(collect.name)
            self.output.add_to_collection(collect.name, value)

    def apply_block_row(self, block: Block, row: Binding) -> None:
        """Apply one block's construction clauses to one binding row."""
        self.apply_creates(block.creates, row)
        self.apply_links(block.links, row)
        self.apply_collects(block.collects, row)
