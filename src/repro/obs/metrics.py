"""Counters, gauges and fixed-bucket histograms.

The instruments follow the conventional trio:

* :class:`Counter` — monotonically increasing count (index hits, rows
  produced, cache misses);
* :class:`Gauge` — last-written value (index sizes, warehouse
  staleness);
* :class:`Histogram` — fixed-bucket distribution of observations with
  p50/p90/p95/p99 summaries estimated by linear interpolation inside the
  winning bucket, clamped to the observed min/max.  Memory is O(buckets)
  however many values are observed — safe for unbounded request streams.

A :class:`MetricsRegistry` names and owns instruments; the null variants
at the bottom back the disabled global recorder so instrumented hot
paths cost a no-op method call when observability is off.  All mutating
paths are thread-safe.

:class:`WindowedSeries` is the time dimension the cumulative
instruments lack: it samples a registry into aligned ring-buffer
buckets so "requests per second over the last 5 minutes" and
"p99 latency over the last hour" become answerable — the substrate the
SLO / burn-rate layer (:mod:`repro.obs.slo`) evaluates against.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from collections import deque

#: Default bucket upper bounds, in seconds: 100 µs .. 10 s, roughly
#: geometric — sized for per-request / per-block latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1)."""
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket histogram with percentile summaries."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.bounds = tuple(sorted(buckets or DEFAULT_BUCKETS))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket")
        # One overflow bucket past the last bound.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]), interpolated.

        Resolution is bounded by bucket width; estimates are clamped to
        the observed min/max so small sample counts stay sensible.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(
                    self.min, self.bounds[0])
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + fraction * max(upper - lower, 0.0)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        return self.percentile(0.90)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, observations <= bound)`` pairs, Prometheus
        style: counts are cumulative and the final pair's bound is
        ``inf`` (the ``+Inf`` bucket), whose count equals ``count``."""
        with self._lock:
            pairs: list[tuple[float, int]] = []
            running = 0
            for bound, bucket_count in zip(self.bounds, self.bucket_counts):
                running += bucket_count
                pairs.append((bound, running))
            pairs.append((math.inf, self.count))
            return pairs

    def summary(self) -> dict:
        """The exportable digest of this histogram.

        ``buckets`` lists cumulative ``[upper_bound, count]`` pairs
        (the ``+Inf`` bound serialized as the string ``"+Inf"`` so the
        digest stays valid JSON), which is enough detail to re-render
        a Prometheus exposition from an exported document.
        """
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": [["+Inf" if math.isinf(bound) else bound, count]
                        for bound, count in self.cumulative_buckets()],
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.p50:.6f})")


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on demand)."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        """The histogram under ``name`` (created on demand).

        ``buckets`` only applies on first creation.
        """
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets)
            return instrument

    def reset(self) -> None:
        """Forget every instrument."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def as_dict(self) -> dict:
        """Plain-data form of every instrument (the JSON export shape)."""
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.summary()
                               for n, h in sorted(self._histograms.items())},
            }


# -- windowed time series ------------------------------------------------------


#: Default sampling step for :class:`WindowedSeries`, in seconds.
DEFAULT_WINDOW_STEP = 5.0

#: Default retention for :class:`WindowedSeries`: long enough to cover
#: the slow 6 h burn-rate window plus one spare step.
DEFAULT_WINDOW_RETENTION = 6 * 3600.0 + DEFAULT_WINDOW_STEP


class _HistSample:
    """One histogram's cumulative state at a sample instant."""

    __slots__ = ("bounds", "cumulative", "count", "total")

    def __init__(self, bounds: tuple[float, ...],
                 cumulative: tuple[float, ...], count: int,
                 total: float) -> None:
        self.bounds = bounds          # finite upper bounds, ascending
        self.cumulative = cumulative  # one entry per bound + the +Inf one
        self.count = count
        self.total = total


class _Sample:
    """Cumulative values of every registered instrument at one instant."""

    __slots__ = ("ts", "counters", "gauges", "histograms")

    def __init__(self, ts: float, counters: dict, gauges: dict,
                 histograms: dict) -> None:
        self.ts = ts
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms


class WindowedSeries:
    """Aligned ring-buffer sampling of a registry's cumulative state.

    Counters, gauges and histograms are *cumulative since start*; a
    :class:`WindowedSeries` adds the time dimension by snapshotting the
    whole registry into buckets aligned to ``step``-second boundaries,
    keeping at most ``retention / step`` of them (O(windows) memory
    however long the process runs).  Windowed queries then difference
    two samples:

    * :meth:`increase` — how much a counter (or a histogram's count)
      grew over the last ``window`` seconds;
    * :meth:`rate` — that increase per second;
    * :meth:`quantile` — a histogram quantile computed over only the
      observations that arrived inside the window;
    * :meth:`fraction_below` — the share of windowed observations at or
      under a latency threshold (the latency-SLO primitive).

    A window that reaches past the oldest retained sample is clipped to
    the data actually available (a freshly started server answers
    "error rate over the last hour" with "over its whole lifetime so
    far", the useful degradation for burn-rate alerting); queries over
    fewer than two samples return ``None`` ("no data" — distinct from a
    healthy zero).  Counter resets (a registry ``reset()``) are handled
    Prometheus-style: a negative delta is read as a restart and the
    newer cumulative value is used.  All paths are lock-guarded like
    the instruments themselves.
    """

    def __init__(self, registry: "MetricsRegistry",
                 step: float = DEFAULT_WINDOW_STEP,
                 retention: float = DEFAULT_WINDOW_RETENTION) -> None:
        if step <= 0:
            raise ValueError(f"step must be positive: {step}")
        if retention < step:
            raise ValueError("retention shorter than one step")
        self.registry = registry
        self.step = float(step)
        self.retention = float(retention)
        self._samples: deque[_Sample] = deque(
            maxlen=int(retention / step) + 1)
        self._lock = threading.Lock()

    # -- sampling --------------------------------------------------------------

    @staticmethod
    def _snapshot_histograms(histograms: dict) -> dict:
        out: dict[str, _HistSample] = {}
        for name, summary in histograms.items():
            pairs = summary.get("buckets") or []
            bounds = tuple(float(bound) for bound, _ in pairs
                           if bound != "+Inf"
                           and not (isinstance(bound, float)
                                    and math.isinf(bound)))
            cumulative = tuple(float(count) for _, count in pairs)
            out[name] = _HistSample(bounds, cumulative,
                                    int(summary.get("count", 0)),
                                    float(summary.get("sum", 0.0)))
        return out

    def sample(self, now: float | None = None) -> float:
        """Snapshot the registry into the bucket containing ``now``.

        Buckets are aligned to ``step`` boundaries; a second sample
        landing in the same bucket replaces the first (latest data
        wins), so callers may sample faster than ``step`` without
        growing the ring.  Returns the aligned bucket timestamp.
        """
        if now is None:
            now = time.time()
        document = self.registry.as_dict()
        aligned = math.floor(now / self.step) * self.step
        snapshot = _Sample(
            aligned,
            dict(document.get("counters", {})),
            dict(document.get("gauges", {})),
            self._snapshot_histograms(document.get("histograms", {})))
        with self._lock:
            if self._samples and self._samples[-1].ts >= aligned:
                self._samples[-1] = snapshot
            else:
                self._samples.append(snapshot)
        return aligned

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def coverage(self) -> float:
        """Seconds of history currently retained (0 when < 2 samples)."""
        with self._lock:
            if len(self._samples) < 2:
                return 0.0
            return self._samples[-1].ts - self._samples[0].ts

    def clear(self) -> None:
        """Forget every retained sample."""
        with self._lock:
            self._samples.clear()

    def _bounding(self, window: float) -> tuple[_Sample, _Sample] | None:
        """The (start, end) samples spanning the last ``window`` seconds
        (clipped to available history); ``None`` under two samples."""
        with self._lock:
            if len(self._samples) < 2:
                return None
            end = self._samples[-1]
            cutoff = end.ts - window
            start = self._samples[0]
            for candidate in self._samples:
                if candidate.ts <= cutoff:
                    start = candidate
                else:
                    break
            if start.ts >= end.ts:
                return None
            return start, end

    # -- windowed queries ------------------------------------------------------

    @staticmethod
    def _delta(old: float | None, new: float | None) -> float | None:
        if new is None:
            return None
        if old is None or new < old:  # appeared, or counter reset
            return new
        return new - old

    def increase(self, name: str, window: float) -> float | None:
        """How much counter ``name`` (or histogram ``name``'s count)
        grew over the last ``window`` seconds; ``None`` without data."""
        bounding = self._bounding(window)
        if bounding is None:
            return None
        start, end = bounding
        if name in end.counters:
            return self._delta(start.counters.get(name),
                               end.counters[name])
        hist = end.histograms.get(name)
        if hist is not None:
            old = start.histograms.get(name)
            return self._delta(old.count if old else None, hist.count)
        return None

    def rate(self, name: str, window: float) -> float | None:
        """Per-second :meth:`increase` over the (clipped) window."""
        bounding = self._bounding(window)
        if bounding is None:
            return None
        amount = self.increase(name, window)
        if amount is None:
            return None
        start, end = bounding
        return amount / (end.ts - start.ts)

    def _bucket_deltas(self, name: str, window: float
                       ) -> tuple[tuple[float, ...], list[float]] | None:
        """``(bounds, per-bucket cumulative deltas)`` for histogram
        ``name`` over the window, reset-aware; ``None`` without data."""
        bounding = self._bounding(window)
        if bounding is None:
            return None
        start, end = bounding
        new = end.histograms.get(name)
        if new is None or not new.cumulative:
            return None
        old = start.histograms.get(name)
        if old is None or old.count > new.count \
                or len(old.cumulative) != len(new.cumulative):
            # Histogram appeared mid-window or was reset: the newer
            # cumulative state *is* the windowed state.
            return new.bounds, list(new.cumulative)
        deltas = [max(n - o, 0.0) for o, n
                  in zip(old.cumulative, new.cumulative)]
        return new.bounds, deltas

    def fraction_below(self, name: str, threshold: float,
                       window: float) -> tuple[float, float] | None:
        """``(observations <= threshold, total observations)`` for
        histogram ``name`` over the window, interpolating inside the
        bucket that contains ``threshold``; ``None`` without data."""
        buckets = self._bucket_deltas(name, window)
        if buckets is None:
            return None
        bounds, deltas = buckets
        total = deltas[-1] if deltas else 0.0
        if threshold <= 0 or not bounds:
            return 0.0, total
        if threshold >= bounds[-1]:
            return total, total
        i = bisect.bisect_left(bounds, threshold)
        below = deltas[i - 1] if i > 0 else 0.0
        in_bucket = max(deltas[i] - below, 0.0)
        lower = bounds[i - 1] if i > 0 else 0.0
        span = bounds[i] - lower
        fraction = (threshold - lower) / span if span > 0 else 1.0
        return below + fraction * in_bucket, total

    def quantile(self, name: str, q: float,
                 window: float) -> float | None:
        """The ``q``-quantile of histogram ``name`` over the window.

        Prometheus ``histogram_quantile`` semantics: linear
        interpolation inside the winning bucket, with the overflow
        bucket answering the last finite bound (the true maximum is
        unknowable from buckets alone).  ``None`` without data or when
        no observation landed in the window.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        buckets = self._bucket_deltas(name, window)
        if buckets is None:
            return None
        bounds, deltas = buckets
        total = deltas[-1] if deltas else 0.0
        if total <= 0 or not bounds:
            return None
        rank = q * total
        previous = 0.0
        for i, cumulative in enumerate(deltas):
            if cumulative >= rank and cumulative > previous:
                if i >= len(bounds):  # the +Inf bucket
                    return bounds[-1]
                lower = bounds[i - 1] if i > 0 else 0.0
                fraction = (rank - previous) / (cumulative - previous)
                return lower + fraction * (bounds[i] - lower)
            previous = cumulative
        return bounds[-1]

    def gauge_last(self, name: str) -> float | None:
        """Gauge ``name``'s value at the newest sample, if any."""
        with self._lock:
            if not self._samples:
                return None
            return self._samples[-1].gauges.get(name)

    @classmethod
    def from_document(cls, document: dict,
                      window: float) -> "WindowedSeries":
        """A two-sample series built from an exported metrics document.

        The series holds an empty state at ``t=0`` and ``document``'s
        cumulative state at ``t=window``, so every windowed query
        answers over the whole run the dump describes — how
        ``repro slo check`` evaluates objectives offline.
        """
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        series = cls(NullMetricsRegistry(), step=float(window),
                     retention=float(window) * 2)
        end = _Sample(
            float(window),
            dict(document.get("counters", {})),
            dict(document.get("gauges", {})),
            cls._snapshot_histograms(document.get("histograms", {})))
        series._samples.append(_Sample(0.0, {}, {}, {}))
        series._samples.append(end)
        return series


# -- null instruments (the disabled fast path) --------------------------------


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0
    p50 = p90 = p95 = p99 = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict:
        return {}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """Hands out shared no-op instruments."""

    __slots__ = ()

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets=None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def reset(self) -> None:
        pass

    def as_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetricsRegistry()
