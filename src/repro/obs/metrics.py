"""Counters, gauges and fixed-bucket histograms.

The instruments follow the conventional trio:

* :class:`Counter` — monotonically increasing count (index hits, rows
  produced, cache misses);
* :class:`Gauge` — last-written value (index sizes, warehouse
  staleness);
* :class:`Histogram` — fixed-bucket distribution of observations with
  p50/p90/p95/p99 summaries estimated by linear interpolation inside the
  winning bucket, clamped to the observed min/max.  Memory is O(buckets)
  however many values are observed — safe for unbounded request streams.

A :class:`MetricsRegistry` names and owns instruments; the null variants
at the bottom back the disabled global recorder so instrumented hot
paths cost a no-op method call when observability is off.  All mutating
paths are thread-safe.
"""

from __future__ import annotations

import bisect
import math
import threading

#: Default bucket upper bounds, in seconds: 100 µs .. 10 s, roughly
#: geometric — sized for per-request / per-block latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1)."""
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket histogram with percentile summaries."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.bounds = tuple(sorted(buckets or DEFAULT_BUCKETS))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket")
        # One overflow bucket past the last bound.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]), interpolated.

        Resolution is bounded by bucket width; estimates are clamped to
        the observed min/max so small sample counts stay sensible.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(
                    self.min, self.bounds[0])
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + fraction * max(upper - lower, 0.0)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        return self.percentile(0.90)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, observations <= bound)`` pairs, Prometheus
        style: counts are cumulative and the final pair's bound is
        ``inf`` (the ``+Inf`` bucket), whose count equals ``count``."""
        with self._lock:
            pairs: list[tuple[float, int]] = []
            running = 0
            for bound, bucket_count in zip(self.bounds, self.bucket_counts):
                running += bucket_count
                pairs.append((bound, running))
            pairs.append((math.inf, self.count))
            return pairs

    def summary(self) -> dict:
        """The exportable digest of this histogram.

        ``buckets`` lists cumulative ``[upper_bound, count]`` pairs
        (the ``+Inf`` bound serialized as the string ``"+Inf"`` so the
        digest stays valid JSON), which is enough detail to re-render
        a Prometheus exposition from an exported document.
        """
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": [["+Inf" if math.isinf(bound) else bound, count]
                        for bound, count in self.cumulative_buckets()],
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.p50:.6f})")


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on demand)."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        """The histogram under ``name`` (created on demand).

        ``buckets`` only applies on first creation.
        """
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets)
            return instrument

    def reset(self) -> None:
        """Forget every instrument."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def as_dict(self) -> dict:
        """Plain-data form of every instrument (the JSON export shape)."""
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.summary()
                               for n, h in sorted(self._histograms.items())},
            }


# -- null instruments (the disabled fast path) --------------------------------


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0
    p50 = p90 = p95 = p99 = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict:
        return {}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """Hands out shared no-op instruments."""

    __slots__ = ()

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets=None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def reset(self) -> None:
        pass

    def as_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetricsRegistry()
