"""Provenance and freshness: the "why" plane of the observability stack.

STRUDEL pages are *derived artifacts*: a source object flows through a
wrapper, a mediator mapping, a StruQL block, a Skolem function, and a
template before it becomes HTML.  The span/metric/event layers (PRs
1/3/4/6) answer "how fast"; this module answers "why does this page
exist, and how stale is it?".

The pieces:

* :class:`SourceRecord` — one per loaded source: wrapper kind, fetch
  timestamp, content hash, node/edge counts.  Stamped by
  :meth:`repro.mediator.sources.DataSource.load` and by the CLI's file
  loaders.
* :class:`NodeRecord` — one per Skolem-minted oid: ``(fn, args, query
  block label, query fingerprint, input graph)``.  Recorded by
  :meth:`repro.struql.skolem.SkolemRegistry.apply`; the block label and
  fingerprint come from a thread-local *query context* that the StruQL
  evaluator (and the click-time :class:`~repro.site.incremental
  .DynamicSite`) push around construction.
* :class:`PageRecord` — ``page url -> (site-graph oid, template name)``
  edges attached by the site builder / :class:`HtmlGenerator`.
* :class:`LineageIndex` — the bounded, queryable store of all of the
  above.  :meth:`LineageIndex.why` walks the chain backwards and
  returns a derivation-tree document; :func:`render_why` prints it.
  The index serializes to JSON next to the BuildCache manifest
  (``lineage.json``) so lineage survives incremental rebuilds.

Like the trace recorder, the global index follows the Null-object
pattern: :func:`get_lineage` returns a no-op unless
:func:`enable_lineage` (or the ``lineage_recording`` context manager)
turned recording on, so the Skolem hot path pays one attribute check
when lineage is off.

Freshness rides on top: :func:`freshness_report` ages every source
record, flags pages whose *newest* contributing source is older than
``max_age``, and :func:`update_freshness_gauges` exports the result as
``lineage.source_age_seconds.<source>`` gauges plus a
``lineage.pages_stale_total`` gauge for Prometheus scrapes.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Caps keeping the index bounded on long-running servers.
MAX_NODE_RECORDS = 65536
MAX_PAGE_RECORDS = 16384
MAX_SOURCE_MEMBER_RECORDS = 131072

#: Serialized-index schema version and file name (lives next to the
#: BuildCache manifest).
LINEAGE_SCHEMA = 1
LINEAGE_NAME = "lineage.json"

#: Depth cap for derivation-tree walks (a Skolem arg can itself be a
#: Skolem oid, e.g. ``PersonCard(PersonPage(p))``).
MAX_WHY_DEPTH = 8

#: Link-target dependencies kept per created node.  Zero-argument
#: Skolem pages (``OrgIndex()``) reach their sources only through the
#: edges linked out of them, so construction records those too.
MAX_DEPS_PER_NODE = 32

#: Lazily cached Oid type — this module must not import the graph
#: model at import time (skolem.py imports us), and a per-call import
#: in record_dep shows up in build profiles.
_OID = None


def graph_content_hash(graph) -> str:
    """A stable content hash of a graph (nodes, edges, collections).

    Cheap enough to run on every source load: one pass over the edge
    list feeding sha1, no sorting (wrapper output order is
    deterministic for unchanged input).
    """
    digest = hashlib.sha1()
    for source, label, target in graph.edges():
        digest.update(repr(source).encode())
        digest.update(str(label).encode())
        digest.update(repr(target).encode())
        digest.update(b"\x00")
    for name in graph.collection_names():
        digest.update(name.encode())
        for member in graph.collection(name):
            digest.update(repr(member).encode())
        digest.update(b"\x01")
    return digest.hexdigest()[:16]


def _arg_entry(value: Any) -> dict:
    """One serialized Skolem argument: its kind plus display string."""
    # Imported lazily: graph.model must stay importable without obs.
    from repro.graph.model import Oid
    from repro.graph.values import Atom
    if isinstance(value, Oid):
        return {"kind": "oid", "value": value.name}
    if isinstance(value, Atom):
        return {"kind": "atom", "value": str(value.value)}
    return {"kind": "value", "value": str(value)}


@dataclass(eq=False)  # identity hash: records live in sets
class SourceRecord:
    """Provenance of one loaded source."""

    source: str
    kind: str = "loader"
    fetched_at: float = 0.0
    content_hash: str = ""
    nodes: int = 0
    edges: int = 0
    version: int = 0

    def to_dict(self) -> dict:
        return {"source": self.source, "kind": self.kind,
                "fetched_at": self.fetched_at,
                "content_hash": self.content_hash,
                "nodes": self.nodes, "edges": self.edges,
                "version": self.version}

    @staticmethod
    def from_dict(data: dict) -> "SourceRecord":
        return SourceRecord(
            source=str(data.get("source", "")),
            kind=str(data.get("kind", "loader")),
            fetched_at=float(data.get("fetched_at", 0.0)),
            content_hash=str(data.get("content_hash", "")),
            nodes=int(data.get("nodes", 0)),
            edges=int(data.get("edges", 0)),
            version=int(data.get("version", 0)))


@dataclass
class NodeRecord:
    """Provenance of one Skolem-minted oid."""

    oid: str
    fn: str
    args: list = field(default_factory=list)
    block: str = ""
    fingerprint: str = ""
    input: str = ""

    def to_dict(self) -> dict:
        return {"oid": self.oid, "fn": self.fn, "args": self.args,
                "block": self.block, "fingerprint": self.fingerprint,
                "input": self.input}

    @staticmethod
    def from_dict(data: dict) -> "NodeRecord":
        return NodeRecord(
            oid=str(data.get("oid", "")), fn=str(data.get("fn", "")),
            args=list(data.get("args", ())),
            block=str(data.get("block", "")),
            fingerprint=str(data.get("fingerprint", "")),
            input=str(data.get("input", "")))


@dataclass
class PageRecord:
    """One generated page: url -> site-graph oid -> template."""

    url: str
    oid: str
    template: str = ""

    def to_dict(self) -> dict:
        return {"url": self.url, "oid": self.oid,
                "template": self.template}

    @staticmethod
    def from_dict(data: dict) -> "PageRecord":
        return PageRecord(url=str(data.get("url", "")),
                          oid=str(data.get("oid", "")),
                          template=str(data.get("template", "")))


class _QueryContext(threading.local):
    """Thread-local (fingerprint, block label, input graph) stack."""

    def __init__(self) -> None:
        self.stack: list[tuple[str, str, str]] = []


class NullLineage:
    """Disabled lineage: every operation is a cheap no-op."""

    enabled = False

    def record_source(self, record) -> None:
        pass

    def record_source_nodes(self, source, graph) -> None:
        pass

    def record_node(self, oid, fn, args) -> None:
        pass

    def record_page(self, url, oid, template="") -> None:
        pass

    def record_dep(self, oid, target) -> None:
        pass

    @contextlib.contextmanager
    def query_context(self, fingerprint="", block="", input=""):
        yield

    def sources(self) -> list:
        return []

    def node_records(self) -> list:
        return []

    def page_records(self) -> list:
        return []

    def __len__(self) -> int:
        return 0


NULL_LINEAGE = NullLineage()


class LineageIndex:
    """Bounded, queryable provenance store.

    Thread safe: the site builder renders pages on a thread pool and
    ``repro serve`` computes pages from request threads, all of which
    record into one index.
    """

    enabled = True

    def __init__(self, max_nodes: int = MAX_NODE_RECORDS,
                 max_pages: int = MAX_PAGE_RECORDS,
                 max_members: int = MAX_SOURCE_MEMBER_RECORDS) -> None:
        self.max_nodes = max_nodes
        self.max_pages = max_pages
        self.max_members = max_members
        self._lock = threading.Lock()
        self._sources: dict[str, SourceRecord] = {}
        self._nodes: dict[str, NodeRecord] = {}
        self._members: dict[str, str] = {}  # oid/atom key -> source id
        # oid -> linked node keys (dict-as-ordered-set: membership is
        # checked once per link row, so O(1) matters).
        self._deps: dict[str, dict[str, None]] = {}
        self._pages: dict[str, PageRecord] = {}
        self._context = _QueryContext()
        self.dropped = 0

    # -- recording ----------------------------------------------------

    def record_source(self, record: SourceRecord) -> None:
        """Remember (or refresh) the provenance of one source."""
        with self._lock:
            self._sources[record.source] = record

    def record_source_nodes(self, source: str, graph) -> None:
        """Map every node of a freshly loaded graph to its source."""
        with self._lock:
            for node in graph.nodes():
                if len(self._members) >= self.max_members:
                    self.dropped += 1
                    return
                self._members.setdefault(node.name, source)

    def record_node(self, oid, fn: str, args) -> None:
        """Record one Skolem mint, merging the active query context."""
        key = oid.name
        stack = self._context.stack
        ctx = stack[-1] if stack else None
        # Lock-free fast path: Skolem mints repeat for every binding
        # row that references an already-created node, and a plain dict
        # read is safe under the GIL.  First mint wins, but a
        # context-bearing mint upgrades a context-free one (e.g.
        # warm-up vs click-time).
        existing = self._nodes.get(key)
        if existing is not None and (existing.block
                                     or ctx is None or not ctx[1]):
            return
        fingerprint, block, input_name = ctx if ctx else ("", "", "")
        with self._lock:
            existing = self._nodes.get(key)
            if existing is not None and (existing.block or not block):
                return
            if len(self._nodes) >= self.max_nodes and key not in self._nodes:
                self.dropped += 1
                return
            self._nodes[key] = NodeRecord(
                oid=key, fn=fn, args=[_arg_entry(a) for a in args],
                block=block, fingerprint=fingerprint, input=input_name)

    def record_dep(self, oid, target) -> None:
        """Record that a created node links to ``target`` (a node)."""
        global _OID
        if _OID is None:
            from repro.graph.model import Oid
            _OID = Oid
        if not isinstance(target, _OID):
            return
        key = oid.name
        target_name = target.name
        if target_name == key:
            return
        # Lock-free fast path for the common repeat (every binding row
        # re-adds the same edge) and for saturated dep lists.
        deps = self._deps.get(key)
        if deps is not None and (target_name in deps
                                 or len(deps) >= MAX_DEPS_PER_NODE):
            return
        with self._lock:
            deps = self._deps.setdefault(key, {})
            if target_name not in deps and len(deps) < MAX_DEPS_PER_NODE:
                deps[target_name] = None

    def record_page(self, url: str, oid, template: str = "") -> None:
        """Attach a generated page to its site-graph node + template."""
        key = oid if isinstance(oid, str) else oid.name
        with self._lock:
            if len(self._pages) >= self.max_pages and url not in self._pages:
                self.dropped += 1
                return
            self._pages[url] = PageRecord(url=url, oid=key,
                                          template=template)

    @contextlib.contextmanager
    def query_context(self, fingerprint: str = "", block: str = "",
                      input: str = "") -> Iterator[None]:
        """Scope Skolem mints to (query fingerprint, block, input)."""
        self._context.stack.append((fingerprint, block, input))
        try:
            yield
        finally:
            self._context.stack.pop()

    # -- introspection ------------------------------------------------

    def sources(self) -> list[SourceRecord]:
        with self._lock:
            return sorted(self._sources.values(),
                          key=lambda r: r.source)

    def node_records(self) -> list[NodeRecord]:
        with self._lock:
            return list(self._nodes.values())

    def page_records(self) -> list[PageRecord]:
        with self._lock:
            return sorted(self._pages.values(), key=lambda r: r.url)

    def node(self, key: str) -> NodeRecord | None:
        with self._lock:
            return self._nodes.get(key)

    def source_of(self, key: str) -> SourceRecord | None:
        with self._lock:
            source = self._members.get(key)
            return self._sources.get(source) if source else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    # -- the backward derivation tree ---------------------------------

    def resolve(self, target: str) -> tuple[str | None, PageRecord | None]:
        """A page url or oid display name -> (oid key, page record)."""
        with self._lock:
            page = self._pages.get(target) \
                or self._pages.get(target.lstrip("/"))
            if page is not None:
                return page.oid, page
            # An oid that is a page: keep its url/template context.
            for record in self._pages.values():
                if record.oid == target:
                    return record.oid, record
            if target in self._nodes or target in self._members:
                return target, None
        return None, None

    def why(self, target: str, now: float | None = None,
            max_age: float | None = None) -> dict | None:
        """The backward derivation tree for a page url or oid name.

        Returns ``None`` when the target is unknown.  The document
        nests ``inputs`` recursively: each Skolem argument that is
        itself a Skolem oid expands into its own derivation, and every
        leaf carries its source record when one is known.
        """
        key, page = self.resolve(target)
        if key is None:
            return None
        now = time.time() if now is None else now
        doc: dict[str, Any] = {"target": target, "oid": key}
        if page is not None:
            doc["url"] = page.url
            doc["template"] = page.template
        doc["derivation"] = self._derive(key, now, set(), 0)
        contributing = sorted(self._collect_sources(key, set(), 0),
                              key=lambda r: r.source)
        doc["sources"] = [dict(record.to_dict(),
                               age_seconds=max(now - record.fetched_at, 0.0))
                          for record in contributing]
        ages = [entry["age_seconds"] for entry in doc["sources"]]
        doc["newest_source_age_seconds"] = min(ages) if ages else None
        if max_age is not None:
            doc["stale"] = bool(ages) and min(ages) > max_age
        return doc

    def _derive(self, key: str, now: float, seen: set[str],
                depth: int) -> dict:
        node = self.node(key)
        entry: dict[str, Any] = {"oid": key}
        source = self.source_of(key)
        if source is not None:
            entry["source"] = dict(
                source.to_dict(),
                age_seconds=max(now - source.fetched_at, 0.0))
        if node is None or depth >= MAX_WHY_DEPTH or key in seen:
            return entry
        seen = seen | {key}
        entry.update({"fn": node.fn, "block": node.block,
                      "fingerprint": node.fingerprint,
                      "input": node.input})
        inputs = []
        for arg in node.args:
            if arg.get("kind") == "oid":
                inputs.append(self._derive(arg["value"], now, seen,
                                           depth + 1))
            else:
                inputs.append({"value": arg.get("value", ""),
                               "kind": arg.get("kind", "value")})
        entry["inputs"] = inputs
        with self._lock:
            deps = list(self._deps.get(key, ()))
        if deps:
            entry["links"] = deps
        return entry

    def _collect_sources(self, key: str, seen: set[str],
                         depth: int) -> set[SourceRecord]:
        out: set[SourceRecord] = set()
        if key in seen or depth > MAX_WHY_DEPTH:
            return out
        seen.add(key)
        source = self.source_of(key)
        if source is not None:
            out.add(source)
        node = self.node(key)
        if node is not None:
            if node.input:
                with self._lock:
                    record = self._sources.get(node.input)
                if record is not None:
                    out.add(record)
            for arg in node.args:
                if arg.get("kind") == "oid":
                    out |= self._collect_sources(arg["value"], seen,
                                                 depth + 1)
        with self._lock:
            deps = list(self._deps.get(key, ()))
        for dep in deps:
            out |= self._collect_sources(dep, seen, depth + 1)
        return out

    def page_sources(self, key: str) -> list[SourceRecord]:
        """Every source contributing to one oid's derivation."""
        return sorted(self._collect_sources(key, set(), 0),
                      key=lambda r: r.source)

    # -- persistence --------------------------------------------------

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "schema": LINEAGE_SCHEMA,
                "sources": [r.to_dict() for r in self._sources.values()],
                "nodes": [r.to_dict() for r in self._nodes.values()],
                "members": dict(self._members),
                "deps": {key: list(deps)
                         for key, deps in self._deps.items()},
                "pages": [r.to_dict() for r in self._pages.values()],
            }

    def merge_dict(self, data: dict) -> None:
        """Merge a serialized index; records already present win.

        This is the incremental-rebuild path: the fresh build re-records
        everything it touched, then merges the previous build's file so
        untouched (cache-skipped) pages keep their lineage.
        """
        if int(data.get("schema", 0)) != LINEAGE_SCHEMA:
            return
        for entry in data.get("sources", ()):  # refresh wins on sources
            record = SourceRecord.from_dict(entry)
            with self._lock:
                self._sources.setdefault(record.source, record)
        for entry in data.get("nodes", ()):
            record = NodeRecord.from_dict(entry)
            with self._lock:
                if len(self._nodes) < self.max_nodes:
                    self._nodes.setdefault(record.oid, record)
        with self._lock:
            for key, source in dict(data.get("members", {})).items():
                if len(self._members) >= self.max_members:
                    break
                self._members.setdefault(str(key), str(source))
            for key, deps in dict(data.get("deps", {})).items():
                self._deps.setdefault(str(key), dict.fromkeys(
                    [str(d) for d in deps][:MAX_DEPS_PER_NODE]))
        for entry in data.get("pages", ()):
            record = PageRecord.from_dict(entry)
            with self._lock:
                if len(self._pages) < self.max_pages:
                    self._pages.setdefault(record.url, record)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)

    def load(self, path: str) -> bool:
        """Merge a previously saved index; False when absent/corrupt."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return False
        if not isinstance(data, dict):
            return False
        self.merge_dict(data)
        return True

    def summary(self) -> dict:
        with self._lock:
            return {"enabled": True, "sources": len(self._sources),
                    "nodes": len(self._nodes),
                    "members": len(self._members),
                    "pages": len(self._pages), "dropped": self.dropped}


# -- the process-global index -----------------------------------------

_LINEAGE: LineageIndex | NullLineage = NULL_LINEAGE


def get_lineage() -> LineageIndex | NullLineage:
    """The active lineage index (a no-op unless enabled)."""
    return _LINEAGE


def enable_lineage(index: LineageIndex | None = None) -> LineageIndex:
    """Install (and return) a live lineage index."""
    global _LINEAGE
    _LINEAGE = index if index is not None else LineageIndex()
    return _LINEAGE


def disable_lineage() -> None:
    """Return to the no-op index."""
    global _LINEAGE
    _LINEAGE = NULL_LINEAGE


@contextlib.contextmanager
def lineage_recording(index: LineageIndex | None = None) \
        -> Iterator[LineageIndex]:
    """Enable lineage for a scope, restoring the previous index after."""
    global _LINEAGE
    previous = _LINEAGE
    active = enable_lineage(index)
    try:
        yield active
    finally:
        _LINEAGE = previous


# -- freshness --------------------------------------------------------

def freshness_report(index: LineageIndex | NullLineage | None = None,
                     max_age: float | None = None,
                     now: float | None = None) -> dict:
    """Per-source ages plus the pages whose sources exceed ``max_age``.

    A page is *stale* when its **newest** contributing source is older
    than ``max_age`` — i.e. nothing fresh has flowed into it recently.
    """
    index = get_lineage() if index is None else index
    now = time.time() if now is None else now
    sources = [dict(record.to_dict(),
                    age_seconds=max(now - record.fetched_at, 0.0))
               for record in index.sources()]
    stale_pages: list[str] = []
    if max_age is not None and isinstance(index, LineageIndex):
        for page in index.page_records():
            contributing = index.page_sources(page.oid)
            if not contributing:
                continue
            newest = min(max(now - r.fetched_at, 0.0)
                         for r in contributing)
            if newest > max_age:
                stale_pages.append(page.url)
    return {"sources": sources, "stale_pages": stale_pages,
            "max_age_seconds": max_age,
            "pages": len(index.page_records())}


def update_freshness_gauges(metrics, index=None, max_age=None,
                            now=None) -> dict:
    """Export the freshness report as gauges; returns the report.

    The metrics registry has no label support, so per-source series use
    the established suffix convention:
    ``lineage.source_age_seconds.<source>``.
    """
    report = freshness_report(index, max_age=max_age, now=now)
    for entry in report["sources"]:
        metrics.gauge(
            f"lineage.source_age_seconds.{entry['source']}"
        ).set(round(entry["age_seconds"], 3))
    metrics.gauge("lineage.sources").set(len(report["sources"]))
    if max_age is not None:
        metrics.gauge("lineage.pages_stale_total").set(
            len(report["stale_pages"]))
    return report


# -- rendering --------------------------------------------------------

def render_why(doc: dict) -> str:
    """The derivation tree as indented text for ``repro why``."""
    lines: list[str] = []
    title = doc.get("url") or doc.get("target", "")
    lines.append(str(title))
    template = doc.get("template")
    if template:
        lines.append(f"└─ template {template}")
    _render_entry(doc.get("derivation", {}), lines, depth=1)
    sources = doc.get("sources", ())
    if sources:
        lines.append("sources:")
        for entry in sources:
            lines.append(
                f"  - {entry['source']} ({entry['kind']}, "
                f"hash {entry['content_hash'] or '?'}, "
                f"age {entry['age_seconds']:.1f}s, "
                f"{entry['nodes']} nodes / {entry['edges']} edges)")
    if doc.get("stale"):
        lines.append("STALE: newest contributing source is older "
                     "than --max-age")
    return "\n".join(lines)


def _render_entry(entry: dict, lines: list[str], depth: int) -> None:
    pad = "   " * depth
    if "fn" in entry:
        block = entry.get("block") or "(top)"
        fingerprint = entry.get("fingerprint") or "?"
        where = f"block {block} of query {fingerprint}"
        if entry.get("input"):
            where += f" on {entry['input']}"
        lines.append(f"{pad}└─ {entry['oid']}  ← Skolem "
                     f"{entry['fn']}(...) in {where}")
        for child in entry.get("inputs", ()):
            if "oid" in child:
                _render_entry(child, lines, depth + 1)
            else:
                lines.append(f"{pad}   └─ {child.get('kind', 'value')} "
                             f"{child.get('value', '')!r}")
        links = entry.get("links", ())
        if links:
            shown = ", ".join(links[:4])
            more = f", +{len(links) - 4} more" if len(links) > 4 else ""
            lines.append(f"{pad}   └─ links → {shown}{more}")
    else:
        source = entry.get("source")
        if source:
            lines.append(
                f"{pad}└─ {entry['oid']}  ← source {source['source']} "
                f"({source['kind']}, age {source['age_seconds']:.1f}s)")
        else:
            lines.append(f"{pad}└─ {entry['oid']}")


def lineage_path(directory: str) -> str:
    """Where the serialized index lives next to a BuildCache manifest."""
    return os.path.join(directory, LINEAGE_NAME)
