"""Hierarchical span tracing for the STRUDEL pipeline.

A **span** is one timed region of work (a query block, a source fetch,
a page render) with free-form attributes and child spans.  A
**recorder** collects spans into per-thread trees and owns a
:class:`~repro.obs.metrics.MetricsRegistry`, so every layer of the
pipeline reports through one schema instead of scattered ad-hoc
``time.perf_counter()`` pairs.

The module keeps a process-global recorder that defaults to a shared
:class:`NullRecorder`: instrumented hot paths pay only an attribute
lookup and a no-op call when observability is off.  Enable collection
with :func:`enable` / :func:`recording`::

    from repro.obs import trace as obs

    with obs.recording() as recorder:
        site.build()
    print(render_tree(recorder))          # from repro.obs.export

Two span APIs with different disabled-cost trade-offs:

* ``get_recorder().span(name, **attrs)`` — free when disabled (yields a
  shared dummy span); use for purely observational regions.
* :func:`timed` — always creates and times a real :class:`Span`, and
  attaches it to the trace only when recording.  Use where the result
  object itself carries the timing (:class:`TimedResult`), so reported
  ``seconds`` and the trace tree agree by construction.
"""

from __future__ import annotations

import functools
import heapq
import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.obs.events import EventLog, NULL_EVENTS, NullEventLog
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)


@dataclass
class Span:
    """One timed, attributed region of work.

    ``span_id`` and ``trace_id`` are assigned by the recorder when the
    span joins a trace: ids are unique and stable within one recorder's
    lifetime, and every span of a tree shares its root's ``trace_id`` —
    the join key used by the event log and the request log.
    """

    name: str
    attributes: dict = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    children: list["Span"] = field(default_factory=list)
    span_id: int = 0
    trace_id: str = ""

    @property
    def seconds(self) -> float:
        """Duration; measured up to *now* while the span is open."""
        end = self.end if self.end is not None else time.perf_counter()
        return max(end - self.start, 0.0)

    def set(self, **attrs) -> "Span":
        """Attach or overwrite attributes; returns self for chaining."""
        self.attributes.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) named ``name``, preorder."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.seconds * 1000:.2f} ms, "
                f"children={len(self.children)})")


class _NoopSpan:
    """The shared span yielded by a disabled recorder."""

    __slots__ = ()
    name = "noop"
    attributes: dict = {}
    children: list = []
    seconds = 0.0
    span_id = 0
    trace_id = ""

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def walk(self):
        return iter(())

    def find(self, name: str):
        return None


_NOOP_SPAN = _NoopSpan()


class _NoopContext:
    """Reusable, reentrant context manager yielding the no-op span."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_CONTEXT = _NoopContext()


#: Bounds for :class:`TailSampler`'s three views: most-recent traces,
#: slowest-ever traces, and most-recent error traces.
TAIL_RECENT_KEPT = 32
TAIL_SLOWEST_KEPT = 16
TAIL_ERRORS_KEPT = 16


class TailSampler:
    """A bounded ring of *completed* traces with tail-based retention.

    A long-running server completes far more traces than anyone can
    keep, but the interesting ones are exactly the ones a head-based
    ring would evict: the slowest requests and the failures.  This
    sampler keeps three bounded, overlapping views of the stream of
    finished root spans:

    * the :attr:`recent` ring (last :data:`TAIL_RECENT_KEPT` traces);
    * the :attr:`slowest` table (top :data:`TAIL_SLOWEST_KEPT` by
      duration, min-heap, never evicted by newer-but-faster traces);
    * the :attr:`errors` ring (last :data:`TAIL_ERRORS_KEPT` traces in
      which any span carries a truthy ``error`` attribute or an integer
      ``status`` >= 500).

    Attach one to a :class:`TraceRecorder` (the ``tail`` constructor
    argument) and every root span is offered as its trace finishes;
    memory stays O(kept traces) however long the process serves.
    """

    def __init__(self, recent: int = TAIL_RECENT_KEPT,
                 slow: int = TAIL_SLOWEST_KEPT,
                 errors: int = TAIL_ERRORS_KEPT) -> None:
        self._lock = threading.Lock()
        self._recent: deque[Span] = deque(maxlen=recent)
        self._slow: list[tuple[float, int, Span]] = []
        self._slow_keep = slow
        self._errors: deque[Span] = deque(maxlen=errors)
        self._seq = itertools.count()
        self.offered = 0

    @staticmethod
    def is_error_trace(root: Span) -> bool:
        """Whether any span of the tree looks failed (``error`` attr or
        an integer ``status`` >= 500)."""
        for span in root.walk():
            if span.attributes.get("error"):
                return True
            status = span.attributes.get("status")
            if isinstance(status, int) and status >= 500:
                return True
        return False

    def offer(self, root: Span) -> None:
        """Consider one finished trace for every view."""
        seconds = root.seconds
        error = self.is_error_trace(root)
        with self._lock:
            self.offered += 1
            self._recent.append(root)
            item = (seconds, next(self._seq), root)
            if len(self._slow) < self._slow_keep:
                heapq.heappush(self._slow, item)
            elif seconds > self._slow[0][0]:
                heapq.heapreplace(self._slow, item)
            if error:
                self._errors.append(root)

    @property
    def recent(self) -> list[Span]:
        """The most recent traces, oldest first."""
        with self._lock:
            return list(self._recent)

    @property
    def slowest(self) -> list[Span]:
        """The slowest traces seen so far, slowest first."""
        with self._lock:
            return [span for _, _, span in
                    sorted(self._slow, reverse=True)]

    @property
    def errors(self) -> list[Span]:
        """The most recent error traces, oldest first."""
        with self._lock:
            return list(self._errors)

    def clear(self) -> None:
        """Forget every retained trace."""
        with self._lock:
            self._recent.clear()
            self._slow.clear()
            self._errors.clear()
            self.offered = 0


class NullRecorder:
    """Recorder that records nothing, as cheaply as possible."""

    enabled = False
    tail: TailSampler | None = None

    def __init__(self) -> None:
        self.metrics: NullMetricsRegistry = NULL_METRICS
        self.events: NullEventLog = NULL_EVENTS

    @property
    def roots(self) -> list[Span]:
        return []

    def span(self, name: str, **attrs) -> _NoopContext:
        return _NOOP_CONTEXT

    def current(self) -> Span | None:
        return None

    def push(self, span: Span) -> None:
        pass

    def pop(self, span: Span) -> None:
        pass

    def clear(self) -> None:
        pass


NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Thread-safe collector of span trees plus a metrics registry.

    Each thread keeps its own stack of open spans (so concurrent
    requests interleave without corrupting each other's trees); finished
    top-level spans land in :attr:`roots` under a lock.

    ``max_roots`` bounds :attr:`roots` for long-running processes: once
    exceeded, the oldest root is dropped (``roots_dropped`` counts the
    evictions).  ``tail`` is an optional :class:`TailSampler` that is
    offered every root span as its trace completes, so the slowest and
    failed traces survive the eviction that keeps memory bounded.
    """

    enabled = True

    def __init__(self, name: str = "trace",
                 tail: TailSampler | None = None,
                 max_roots: int | None = None) -> None:
        self.name = name
        self.metrics = MetricsRegistry()
        self.events = EventLog()
        self.roots: list[Span] = []
        self.tail = tail
        self.max_roots = max_roots
        self.roots_dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        # itertools.count.__next__ is atomic under the GIL, so id
        # assignment needs no extra locking.
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # -- span stack ------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def push(self, span: Span) -> None:
        """Attach ``span`` under the current span (or as a new root).

        Assigns the span's stable ``span_id`` and propagates the root's
        ``trace_id`` down the tree.
        """
        stack = self._stack()
        if not span.span_id:
            span.span_id = next(self._span_ids)
        if stack:
            span.trace_id = stack[-1].trace_id
            stack[-1].children.append(span)
        else:
            if not span.trace_id:
                span.trace_id = f"{self.name}-{next(self._trace_ids)}"
            with self._lock:
                self.roots.append(span)
                if self.max_roots is not None \
                        and len(self.roots) > self.max_roots:
                    del self.roots[0]
                    self.roots_dropped += 1
        stack.append(span)

    def pop(self, span: Span) -> None:
        """Close out ``span`` (tolerates unbalanced exits).

        When the pop empties this thread's stack, the span's trace is
        complete and is offered to the tail sampler, if one is attached.
        """
        stack = self._stack()
        while stack:
            if stack.pop() is span:
                break
        if not stack and self.tail is not None:
            self.tail.offer(span)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` body."""
        span = Span(name, attrs, start=time.perf_counter())
        self.push(span)
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            self.pop(span)

    def clear(self) -> None:
        """Drop collected spans, events, and reset every metric."""
        with self._lock:
            self.roots.clear()
            self.roots_dropped = 0
        self.metrics.reset()
        self.events.clear()
        if self.tail is not None:
            self.tail.clear()


# -- the process-global recorder ---------------------------------------------

_recorder: NullRecorder | TraceRecorder = NULL_RECORDER


def get_recorder() -> NullRecorder | TraceRecorder:
    """The active recorder (the shared no-op one unless enabled)."""
    return _recorder


def set_recorder(recorder: NullRecorder | TraceRecorder) -> None:
    """Install ``recorder`` as the process-global recorder."""
    global _recorder
    _recorder = recorder


def enable(recorder: TraceRecorder | None = None) -> TraceRecorder:
    """Start recording globally; returns the installed recorder."""
    recorder = recorder or TraceRecorder()
    set_recorder(recorder)
    return recorder


def disable() -> None:
    """Stop recording: reinstall the shared no-op recorder."""
    set_recorder(NULL_RECORDER)


@contextmanager
def recording(recorder: TraceRecorder | None = None
              ) -> Iterator[TraceRecorder]:
    """Record within a ``with`` block, restoring the previous recorder."""
    previous = _recorder
    installed = enable(recorder)
    try:
        yield installed
    finally:
        set_recorder(previous)


# -- convenience pass-throughs -------------------------------------------------


def span(name: str, **attrs):
    """A span on the active recorder (no-op context when disabled)."""
    return _recorder.span(name, **attrs)


def counter(name: str):
    """A counter from the active recorder's metrics registry."""
    return _recorder.metrics.counter(name)


def gauge(name: str):
    """A gauge from the active recorder's metrics registry."""
    return _recorder.metrics.gauge(name)


def histogram(name: str, buckets=None):
    """A histogram from the active recorder's metrics registry."""
    return _recorder.metrics.histogram(name, buckets=buckets)


def emit_event(level: str, name: str, message: str = "",
               **attributes):
    """Emit a structured event on the active recorder's event log.

    The record carries the ids of the innermost open span on this
    thread (if any), so log lines join the span tree.  A no-op (one
    attribute lookup plus a no-op call) while recording is disabled.
    """
    recorder = _recorder
    return recorder.events.emit(level, name, message,
                                span=recorder.current(), **attributes)


@contextmanager
def timed(name: str, **attrs) -> Iterator[Span]:
    """A *real* span even when recording is disabled.

    The span is always created and timed — callers keep it as the
    authoritative duration of the work (see :class:`TimedResult`) — but
    it joins the trace tree only while a recorder is enabled.
    """
    recorder = _recorder
    span = Span(name, attrs, start=time.perf_counter())
    if recorder.enabled:
        recorder.push(span)
    try:
        yield span
    finally:
        span.end = time.perf_counter()
        if recorder.enabled:
            recorder.pop(span)


def traced(name: str | None = None, **attrs) -> Callable:
    """Decorator: run the function under a span named after it."""
    def wrap(fn: Callable) -> Callable:
        label = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            recorder = _recorder
            if not recorder.enabled:
                return fn(*args, **kwargs)
            with recorder.span(label, **attrs):
                return fn(*args, **kwargs)
        return inner
    return wrap


@dataclass
class ProfileEntry:
    """Aggregated timing of every span sharing one name (one *stage*)."""

    name: str
    calls: int = 0
    self_seconds: float = 0.0
    cum_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Mean cumulative seconds per call."""
        return self.cum_seconds / self.calls if self.calls else 0.0

    def to_dict(self) -> dict:
        """Plain-data form shared by ``/debug/profile`` and
        ``repro trace --json``."""
        return {
            "name": self.name,
            "calls": self.calls,
            "self_seconds": self.self_seconds,
            "cum_seconds": self.cum_seconds,
            "mean_seconds": self.mean_seconds,
        }


def aggregate_profile(source: "TraceRecorder | NullRecorder | "
                              "Iterable[Span]") -> list[ProfileEntry]:
    """Per-name flat/cumulative profile over a span forest.

    For each distinct span name: call count, **self** time (the span's
    duration minus its direct children — where the time was actually
    spent) and **cumulative** time (whole subtrees; re-entrant spans of
    the same name are counted once per outermost occurrence, the
    standard profiler convention, so recursion does not double-count).
    Entries come back sorted by self time, largest first — the "top
    hotspots" order.
    """
    roots = source if isinstance(source, (list, tuple)) \
        else getattr(source, "roots", None)
    if roots is None:
        roots = list(source)  # any other iterable of spans
    entries: dict[str, ProfileEntry] = {}
    active: dict[str, int] = {}

    def visit(span: Span) -> None:
        entry = entries.get(span.name)
        if entry is None:
            entry = entries[span.name] = ProfileEntry(span.name)
        seconds = span.seconds
        entry.calls += 1
        entry.self_seconds += max(
            seconds - sum(child.seconds for child in span.children), 0.0)
        depth = active.get(span.name, 0)
        if depth == 0:
            entry.cum_seconds += seconds
        active[span.name] = depth + 1
        for child in span.children:
            visit(child)
        active[span.name] = depth

    for root in roots:
        visit(root)
    return sorted(entries.values(),
                  key=lambda e: e.self_seconds, reverse=True)


@dataclass
class TimedResult:
    """Base for result records whose timing references a span.

    ``Response``, ``BlockTrace`` and ``FormResponse`` all used to carry
    their own ``seconds`` float measured with private ``perf_counter``
    pairs; deriving the duration from the span that timed the work makes
    the numbers agree with the trace tree by construction.
    """

    span: Span | None = field(default=None, kw_only=True)

    @property
    def seconds(self) -> float:
        """Duration of the span that produced this result."""
        return self.span.seconds if self.span is not None else 0.0
