"""Observability: spans, metrics, exporters.

The shared instrumentation layer every pipeline stage reports through —
see :mod:`repro.obs.trace` for the span/recorder model,
:mod:`repro.obs.metrics` for counters/gauges/histograms, and
:mod:`repro.obs.export` for the JSON and text exporters.  The global
recorder defaults to a no-op; ``repro trace <command>`` or
:func:`repro.obs.recording` turn collection on.
"""

from repro.obs.export import (
    export_state,
    from_json,
    render_metrics,
    render_tree,
    span_from_dict,
    span_to_dict,
    to_json,
    write_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    TimedResult,
    TraceRecorder,
    counter,
    disable,
    enable,
    gauge,
    get_recorder,
    histogram,
    recording,
    set_recorder,
    span,
    timed,
    traced,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_RECORDER",
    "NullMetricsRegistry",
    "NullRecorder",
    "Span",
    "TimedResult",
    "TraceRecorder",
    "counter",
    "disable",
    "enable",
    "export_state",
    "from_json",
    "gauge",
    "get_recorder",
    "histogram",
    "recording",
    "render_metrics",
    "render_tree",
    "set_recorder",
    "span",
    "span_from_dict",
    "span_to_dict",
    "timed",
    "to_json",
    "traced",
    "write_json",
]
