"""Exporters for recorded traces and metrics.

Two output shapes:

* :func:`export_state` / :func:`to_json` — a plain-data document
  (``{"spans": [...], "metrics": {...}, "events": [...]}``) that
  benchmark harnesses can write next to their timing tables and diff
  across runs;
* :func:`render_tree` / :func:`render_metrics` / :func:`render_profile`
  — human-readable forms: the span tree with millisecond durations, the
  metrics digest, and the "top hotspots" flat/cumulative profile table,
  the console forms shown by ``repro trace <command>``.

:func:`from_json` reconstructs :class:`~repro.obs.trace.Span` trees and
:class:`~repro.obs.events.Event` records from the JSON document, so
exported traces round-trip for offline analysis.
"""

from __future__ import annotations

import json

from repro.obs.events import Event
from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.trace import (
    NullRecorder,
    Span,
    TraceRecorder,
    aggregate_profile,
)

Recorder = TraceRecorder | NullRecorder


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def span_to_dict(span: Span, max_depth: int | None = None) -> dict:
    """Plain-data form of one span subtree.

    ``max_depth`` prunes the tree: ``1`` keeps only the span itself,
    ``2`` its direct children, and so on.  Pruned subtrees are replaced
    by a ``"pruned"`` descendant count so readers can tell truncation
    from a genuine leaf.
    """
    data = {
        "name": span.name,
        "seconds": span.seconds,
        "attributes": {k: _json_safe(v)
                       for k, v in span.attributes.items()},
        "children": [],
    }
    if span.span_id:
        data["span_id"] = span.span_id
    if span.trace_id:
        data["trace_id"] = span.trace_id
    if max_depth is not None and max_depth <= 1:
        pruned = sum(1 for c in span.children for _ in c.walk())
        if pruned:
            data["pruned"] = pruned
        return data
    deeper = None if max_depth is None else max_depth - 1
    data["children"] = [span_to_dict(c, deeper) for c in span.children]
    return data


def span_from_dict(data: dict) -> Span:
    """Rebuild a span subtree from :func:`span_to_dict` output.

    Start/end are re-anchored at zero: only durations, names,
    attributes and structure survive the round trip.
    """
    span = Span(data["name"], dict(data.get("attributes", ())),
                start=0.0, end=float(data.get("seconds", 0.0)),
                span_id=int(data.get("span_id", 0)),
                trace_id=str(data.get("trace_id", "")))
    span.children = [span_from_dict(c) for c in data.get("children", ())]
    return span


def export_state(recorder: Recorder,
                 max_depth: int | None = None) -> dict:
    """The full observability document for one recorder.

    ``max_depth`` limits how deep span trees are serialized — long
    benchmark sessions record millions of nested spans, and a pruned
    document keeps the per-phase timings and all metrics while staying
    diffable.
    """
    return {
        "spans": [span_to_dict(root, max_depth)
                  for root in recorder.roots],
        "metrics": recorder.metrics.as_dict(),
        "events": recorder.events.to_dicts(),
    }


def to_json(recorder: Recorder, indent: int | None = 2) -> str:
    """JSON text of :func:`export_state`."""
    return json.dumps(export_state(recorder), indent=indent)


def from_json(text: str) -> tuple[list[Span], dict, list[Event]]:
    """Parse :func:`to_json` output back into spans, the metrics dict,
    and the buffered event records."""
    data = json.loads(text)
    spans = [span_from_dict(d) for d in data.get("spans", ())]
    events = [Event.from_dict(d) for d in data.get("events", ())]
    return spans, data.get("metrics", {}), events


def write_json(recorder: Recorder, path: str) -> None:
    """Write the observability document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(recorder))


# -- human-readable rendering --------------------------------------------------


def _format_attrs(attributes: dict) -> str:
    if not attributes:
        return ""
    inner = ", ".join(f"{k}={_json_safe(v)}"
                      for k, v in attributes.items())
    return f"  {{{inner}}}"


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    lines.append(f"{indent}{span.name}  {span.seconds * 1000:.2f} ms"
                 f"{_format_attrs(span.attributes)}")
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_tree(source: Recorder | list[Span]) -> str:
    """The span forest as an indented text tree."""
    roots = source if isinstance(source, list) else source.roots
    lines: list[str] = []
    for root in roots:
        _render_span(root, 0, lines)
    return "\n".join(lines) if lines else "(no spans recorded)"


def render_metrics(metrics: MetricsRegistry | NullMetricsRegistry) -> str:
    """Counters, gauges and histogram summaries as aligned text."""
    data = metrics.as_dict()
    lines: list[str] = []
    if data["counters"]:
        lines.append("counters:")
        width = max(len(n) for n in data["counters"])
        for name, value in data["counters"].items():
            lines.append(f"  {name.ljust(width)}  {value}")
    if data["gauges"]:
        lines.append("gauges:")
        width = max(len(n) for n in data["gauges"])
        for name, value in data["gauges"].items():
            lines.append(f"  {name.ljust(width)}  {value}")
    if data["histograms"]:
        lines.append("histograms:")
        for name, summary in data["histograms"].items():
            lines.append(
                f"  {name}  count={summary['count']} "
                f"mean={summary['mean'] * 1000:.2f}ms "
                f"p50={summary['p50'] * 1000:.2f}ms "
                f"p90={summary['p90'] * 1000:.2f}ms "
                f"p99={summary['p99'] * 1000:.2f}ms")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def render_profile(source: Recorder | list[Span],
                   limit: int = 15) -> str:
    """The "top hotspots" table: per-stage self/cumulative times.

    One row per distinct span name, sorted by self time (see
    :func:`~repro.obs.trace.aggregate_profile`), truncated to the
    ``limit`` hottest stages.
    """
    entries = aggregate_profile(source)
    if not entries:
        return "(no spans recorded)"
    total_self = sum(e.self_seconds for e in entries) or 1.0
    shown = entries[:limit]
    width = max(len("stage"), max(len(e.name) for e in shown))
    lines = [f"{'stage'.ljust(width)}  {'calls':>6}  {'self ms':>10}  "
             f"{'cum ms':>10}  {'self %':>6}"]
    for entry in shown:
        lines.append(
            f"{entry.name.ljust(width)}  {entry.calls:>6}  "
            f"{entry.self_seconds * 1000:>10.2f}  "
            f"{entry.cum_seconds * 1000:>10.2f}  "
            f"{entry.self_seconds / total_self * 100:>6.1f}")
    if len(entries) > limit:
        lines.append(f"... and {len(entries) - limit} more stages")
    return "\n".join(lines)
