"""A leveled, structured event log correlated with the span tree.

Spans (:mod:`repro.obs.trace`) answer *where time went*; events answer
*what happened*: one :class:`Event` is a timestamped, leveled record
with free-form attributes.  Every event emitted while a span is open
carries that span's ``span_id`` and ``trace_id``, so log lines join to
the trace tree — the textbook "logs correlated with traces" shape.

Two sinks, both optional and composable:

* a **bounded ring buffer** (:data:`EVENT_BUFFER_SIZE` records by
  default) that keeps the most recent events in memory for exporters
  and the monitoring dashboard, with O(capacity) memory however long
  the run;
* a **JSONL sink** — any writable text handle or a path opened via
  :meth:`EventLog.open_sink` — that receives one JSON object per line
  as events are emitted, the standard shape for offline ingestion.

The module is deliberately independent of :mod:`repro.obs.trace`
(callers pass the active span in); the convenience function
:func:`repro.obs.trace.emit_event` wires the two together and is what
instrumented pipeline code calls.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Iterable

#: Event severities, least to most severe.
LEVELS: tuple[str, ...] = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}

#: Default ring-buffer capacity: enough to cover a full site build or a
#: long crawl's tail without letting a pathological run grow memory.
EVENT_BUFFER_SIZE = 2048


def level_rank(level: str) -> int:
    """Numeric severity of ``level``; raises ``ValueError`` if unknown."""
    try:
        return _LEVEL_RANK[level]
    except KeyError:
        raise ValueError(
            f"unknown event level {level!r}; expected one of {LEVELS}"
        ) from None


@dataclass
class Event:
    """One structured log record.

    ``trace_id``/``span_id`` are the identifiers of the span that was
    open when the event fired (empty/zero when none was), which is what
    lets a log line be located inside the span tree.
    """

    seq: int
    ts: float
    level: str
    name: str
    message: str = ""
    attributes: dict = field(default_factory=dict)
    trace_id: str = ""
    span_id: int = 0
    span: str = ""

    def to_dict(self) -> dict:
        """Plain-data form (the JSONL / export schema)."""
        data = {
            "seq": self.seq,
            "ts": self.ts,
            "level": self.level,
            "name": self.name,
        }
        if self.message:
            data["message"] = self.message
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.trace_id:
            data["trace_id"] = self.trace_id
        if self.span_id:
            data["span_id"] = self.span_id
        if self.span:
            data["span"] = self.span
        return data

    @staticmethod
    def from_dict(data: dict) -> "Event":
        """Rebuild an event from :meth:`to_dict` output."""
        return Event(
            seq=int(data.get("seq", 0)),
            ts=float(data.get("ts", 0.0)),
            level=str(data.get("level", "info")),
            name=str(data.get("name", "")),
            message=str(data.get("message", "")),
            attributes=dict(data.get("attributes", ())),
            trace_id=str(data.get("trace_id", "")),
            span_id=int(data.get("span_id", 0)),
            span=str(data.get("span", "")),
        )


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class EventLog:
    """Thread-safe leveled event collector with ring buffer + JSONL sink."""

    def __init__(self, capacity: int = EVENT_BUFFER_SIZE,
                 level: str = "debug") -> None:
        self.capacity = capacity
        self._threshold = level_rank(level)
        self._buffer: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0
        self._sink: IO[str] | None = None
        self._sink_owned = False

    # -- configuration -------------------------------------------------------

    @property
    def level(self) -> str:
        """The minimum severity currently recorded."""
        return LEVELS[self._threshold]

    def set_level(self, level: str) -> None:
        """Drop events below ``level`` from now on."""
        self._threshold = level_rank(level)

    def attach_sink(self, handle: IO[str]) -> None:
        """Stream every subsequent event to ``handle`` as JSON lines."""
        with self._lock:
            self._close_sink_locked()
            self._sink = handle
            self._sink_owned = False

    def open_sink(self, path: str) -> None:
        """Open ``path`` for writing and stream JSONL events into it."""
        handle = open(path, "w", encoding="utf-8")
        with self._lock:
            self._close_sink_locked()
            self._sink = handle
            self._sink_owned = True

    def _close_sink_locked(self) -> None:
        if self._sink is not None and self._sink_owned:
            self._sink.close()
        self._sink = None
        self._sink_owned = False

    def close_sink(self) -> None:
        """Detach (and close, if owned) the JSONL sink."""
        with self._lock:
            self._close_sink_locked()

    # -- emission ------------------------------------------------------------

    def emit(self, level: str, name: str, message: str = "",
             span=None, **attributes) -> Event | None:
        """Record one event; returns it, or ``None`` when filtered.

        ``span`` may be any object exposing ``name``/``span_id``/
        ``trace_id`` (a :class:`repro.obs.trace.Span`); its identifiers
        are copied onto the event so the record joins the trace tree.
        """
        if level_rank(level) < self._threshold:
            return None
        attrs = {key: _json_safe(value)
                 for key, value in attributes.items()}
        with self._lock:
            self._seq += 1
            if len(self._buffer) == self.capacity:
                self._dropped += 1
            event = Event(
                seq=self._seq,
                ts=time.time(),
                level=level,
                name=name,
                message=message,
                attributes=attrs,
                trace_id=getattr(span, "trace_id", "") or "",
                span_id=getattr(span, "span_id", 0) or 0,
                span=(getattr(span, "name", "") or "") if span is not None
                     and getattr(span, "span_id", 0) else "",
            )
            self._buffer.append(event)
            sink = self._sink
            if sink is not None:
                sink.write(json.dumps(event.to_dict()) + "\n")
        return event

    def debug(self, name: str, message: str = "", span=None, **attrs):
        return self.emit("debug", name, message, span=span, **attrs)

    def info(self, name: str, message: str = "", span=None, **attrs):
        return self.emit("info", name, message, span=span, **attrs)

    def warning(self, name: str, message: str = "", span=None, **attrs):
        return self.emit("warning", name, message, span=span, **attrs)

    def error(self, name: str, message: str = "", span=None, **attrs):
        return self.emit("error", name, message, span=span, **attrs)

    # -- access --------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring buffer by newer ones."""
        return self._dropped

    def records(self, level: str | None = None,
                name: str | None = None) -> list[Event]:
        """The buffered events, oldest first.

        ``level`` filters by minimum severity; ``name`` keeps only
        events with that exact name (e.g. ``struql.slow_query``).
        """
        with self._lock:
            events = list(self._buffer)
        if level is not None:
            floor = level_rank(level)
            events = [e for e in events if level_rank(e.level) >= floor]
        if name is not None:
            events = [e for e in events if e.name == name]
        return events

    def to_dicts(self) -> list[dict]:
        """Plain-data form of every buffered event (export shape)."""
        return [event.to_dict() for event in self.records()]

    def write_jsonl(self, path: str) -> int:
        """Dump the current buffer to ``path`` as JSON lines; returns
        the number of records written."""
        events = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.to_dict()) + "\n")
        return len(events)

    def clear(self) -> None:
        """Forget buffered events (the sink, if any, stays attached)."""
        with self._lock:
            self._buffer.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


def read_jsonl(text: str) -> list[Event]:
    """Parse JSONL text (one event per line) back into events."""
    events: list[Event] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(Event.from_dict(json.loads(line)))
    return events


class NullEventLog:
    """The disabled fast path: records nothing, as cheaply as possible."""

    __slots__ = ()
    capacity = 0
    level = "error"
    dropped = 0

    def set_level(self, level: str) -> None:
        pass

    def attach_sink(self, handle) -> None:
        pass

    def open_sink(self, path: str) -> None:
        pass

    def close_sink(self) -> None:
        pass

    def emit(self, *args, **kwargs) -> None:
        return None

    debug = info = warning = error = emit

    def records(self, level: str | None = None,
                name: str | None = None) -> list:
        return []

    def to_dicts(self) -> list:
        return []

    def write_jsonl(self, path: str) -> int:
        return 0

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_EVENTS = NullEventLog()
