"""The live telemetry HTTP plane: serving pages and state side by side.

The paper's dynamic-evaluation mode (§5) computes pages at click time;
:class:`~repro.site.server.DynamicSiteServer` does that in-process, and
this module puts a real socket in front of it.  A
:class:`TelemetryHTTPServer` is a threaded stdlib HTTP server that
answers two kinds of traffic on one port:

* **site traffic** — any other ``GET`` path is resolved against the
  mounted site server and rendered at click time;
* **the telemetry plane** — the live state of the process, the way a
  production service exposes itself while running rather than as
  post-hoc dumps:

  ============== =====================================================
  path            payload
  ============== =====================================================
  ``/metrics``    Prometheus text exposition of the recorder's
                  registry (scrape-ready)
  ``/healthz``    liveness — 200 as soon as the socket answers
  ``/readyz``     readiness — 503 until the data graph and site query
                  are loaded and warmed, 200 after
  ``/debug/traces``   the tail sampler's recent / slowest / error
                  traces as JSON span trees
  ``/debug/events``   the most recent structured events (filter with
                  ``?level=`` and ``?name=``)
  ``/debug/profile``  the per-stage hotspot profile
  ``/debug/queries``  the bounded query plan registry: per-fingerprint
                  counts, p50/p95 latency, rows, last plan
  ``/debug/lineage``  provenance: the backward derivation tree for
                  ``?page=<url|oid>``, or an index summary without it
  ``/debug/matviews`` the materialized-view registry: hit/miss/
                  invalidation counters and per-view footprints
  ``/debug/slo``  every service-level objective with its windowed
                  compliance, burn rate and remaining error budget
  ``/debug/alerts``   the burn-rate alert rules and their
                  pending/firing state (plus the canary's stats)
  ``/debug/``     an index of the debug endpoints above (text, or
                  JSON with ``?format=json``)
  ============== =====================================================

Every request gets a ``req-N`` id stamped into its span attributes,
its events, an access-log line on stderr, and the ``X-Request-Id``
response header, so one request correlates across every signal.
``SIGINT``/``SIGTERM`` trigger graceful shutdown: the accept loop
stops, in-flight requests drain (non-daemon handler threads are joined
by ``server_close``), and a final metrics/events snapshot is written to
disk.  ``repro serve <command> --port N`` is the CLI front end.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import span_to_dict
from repro.obs.lineage import get_lineage, update_freshness_gauges
from repro.obs.promexport import to_prometheus, write_prometheus
from repro.obs.queries import get_query_registry
from repro.obs.slo import get_slo_evaluator
from repro.obs.trace import (
    NullRecorder,
    TailSampler,
    TraceRecorder,
    aggregate_profile,
)

#: Content types served by the plane.
CONTENT_TEXT = "text/plain; charset=utf-8"
CONTENT_HTML = "text/html; charset=utf-8"
CONTENT_JSON = "application/json; charset=utf-8"
CONTENT_PROM = "text/plain; version=0.0.4; charset=utf-8"

#: Root-span bound for a serving recorder: one ``http.request`` root
#: accumulates per request, so a long-running server must evict — the
#: tail sampler keeps the traces worth keeping past this window.
SERVE_MAX_ROOTS = 256

#: Default depth to which ``/debug/traces`` serializes span trees
#: (override per-request with ``?depth=N``; ``0`` means unlimited).
DEBUG_TRACE_DEPTH = 4

#: Default number of events ``/debug/events`` returns, newest last
#: (override with ``?limit=N``).
DEBUG_EVENT_LIMIT = 200

#: Default number of fingerprints ``/debug/queries`` returns, slowest
#: (by p95) first (override with ``?limit=N``).
DEBUG_QUERY_LIMIT = 50

#: The discoverable debug surface: path -> one-line description.
#: ``/debug/`` renders this as an index, and unknown ``/debug/*``
#: paths list it in their 404 body.
DEBUG_ENDPOINTS: dict[str, str] = {
    "/debug/traces": ("tail-sampled recent / slowest / error traces "
                      "(?depth=N)"),
    "/debug/events": ("recent structured events "
                      "(?level=&name=&limit=N)"),
    "/debug/profile": "per-stage hotspot profile (?limit=N)",
    "/debug/queries": ("query plan registry: counts, p50/p95, "
                       "last plan (?limit=N)"),
    "/debug/lineage": ("page provenance (?page=<url|oid>), or a "
                       "source-freshness summary"),
    "/debug/matviews": ("materialized-view registry: hit/miss/"
                        "invalidation counters and per-view footprints "
                        "(?limit=N)"),
    "/debug/slo": ("service-level objectives: compliance, burn rate, "
                   "error budget"),
    "/debug/alerts": "burn-rate alert rules and their firing state",
}


def serving_recorder(name: str = "serve") -> TraceRecorder:
    """A recorder configured for a long-running server: bounded roots
    plus a tail sampler so slow and failed traces survive eviction."""
    return TraceRecorder(name, tail=TailSampler(),
                         max_roots=SERVE_MAX_ROOTS)


class _Handler(BaseHTTPRequestHandler):
    """Per-connection handler; all logic lives on the server object."""

    # Close each connection after its response: keep-alive connections
    # would otherwise hold non-daemon handler threads open during the
    # graceful-shutdown drain.
    protocol_version = "HTTP/1.0"
    server: "TelemetryHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self.server.dispatch(self)

    def do_HEAD(self) -> None:  # noqa: N802
        self.server.dispatch(self)

    def log_message(self, format: str, *args) -> None:
        # The plane writes its own access-log line with the request id.
        pass


class TelemetryHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP front end over a site server and its telemetry.

    Construct with a recorder (usually :func:`serving_recorder`), then
    :meth:`mount` a ``DynamicSiteServer`` and :meth:`set_ready` once
    its data is warmed; until then ``/readyz`` answers 503 while the
    telemetry plane is already live.  ``port=0`` binds an ephemeral
    port (read it back from :attr:`port`).
    """

    # Non-daemon handler threads + block_on_close: server_close() waits
    # for in-flight requests — the graceful-shutdown drain.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, recorder: TraceRecorder | NullRecorder,
                 host: str = "127.0.0.1", port: int = 0,
                 site_server=None, access_log: bool = True,
                 max_age: float | None = None) -> None:
        super().__init__((host, port), _Handler)
        self.recorder = recorder
        self.site_server = site_server
        self.access_log = access_log
        #: Freshness threshold (seconds): pages whose newest
        #: contributing source is older count into
        #: ``lineage.pages_stale_total`` on each ``/metrics`` scrape.
        self.max_age = max_age
        #: The SLO evaluator surfaced at ``/debug/slo`` and
        #: ``/debug/alerts`` (falls back to the process-global one).
        self.slo_evaluator = None
        #: The canary prober, if ``repro serve`` started one — its
        #: stats join the ``/debug/alerts`` payload.
        self.canary = None
        self.started = time.time()
        self.tail: TailSampler | None = getattr(recorder, "tail", None)
        if self.tail is None and recorder.enabled:
            # Mounting the plane turns tail sampling on.
            self.tail = recorder.tail = TailSampler()
        self._ready = threading.Event()
        self._request_ids = itertools.count(1)
        self._serve_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def mount(self, site_server) -> None:
        """Attach the ``DynamicSiteServer`` that answers page paths."""
        self.site_server = site_server

    def set_ready(self) -> None:
        """Flip ``/readyz`` to 200: data graph + site query are loaded."""
        self._ready.set()

    @property
    def ready(self) -> bool:
        return self._ready.is_set()

    def start_background(self) -> threading.Thread:
        """Run the accept loop in a (non-daemon) background thread."""
        thread = threading.Thread(target=self.serve_forever,
                                  kwargs={"poll_interval": 0.1},
                                  name="telemetry-http")
        thread.start()
        self._serve_thread = thread
        return thread

    def request_shutdown(self) -> None:
        """Stop the accept loop without blocking the caller.

        Safe from a signal handler: ``shutdown()`` itself waits for the
        serve loop to exit, which deadlocks when called on the thread
        running it, so the wait happens on a helper thread.
        """
        threading.Thread(target=self.shutdown, name="telemetry-stop",
                         daemon=True).start()

    def install_signal_handlers(self) -> None:
        """Route ``SIGINT``/``SIGTERM`` into graceful shutdown."""
        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, self._on_signal)

    def _on_signal(self, signum, frame) -> None:
        self.recorder.events.emit(
            "info", "http.shutdown",
            f"signal {signal.Signals(signum).name}: draining")
        self.request_shutdown()

    def write_snapshot(self, directory: str) -> dict:
        """Flush the final telemetry state to ``directory``.

        Writes ``metrics.prom`` (Prometheus exposition),
        ``events.jsonl`` (the event ring) and ``snapshot.json`` (server
        log, hotspot profile, tail-sampled trace summaries, SLO and
        alert state, uptime); returns ``{name: path}`` for what was
        written.
        """
        os.makedirs(directory, exist_ok=True)
        paths = {
            "metrics": os.path.join(directory, "metrics.prom"),
            "events": os.path.join(directory, "events.jsonl"),
            "snapshot": os.path.join(directory, "snapshot.json"),
        }
        write_prometheus(self.recorder.metrics, paths["metrics"])
        self.recorder.events.write_jsonl(paths["events"])
        from repro.mediator.sources import recent_fetches
        site = self.site_server
        cache_snapshot = getattr(site, "cache_snapshot", None)
        document = {
            "uptime_seconds": time.time() - self.started,
            # Fetch stamps are recorded even with lineage off (each
            # carries source id, wrapper kind, timestamp, content hash).
            "sources": recent_fetches(),
            "lineage": (get_lineage().summary()
                        if get_lineage().enabled
                        else {"enabled": False}),
            "profile": self._profile_payload(limit=None),
            "traces": self._traces_payload(DEBUG_TRACE_DEPTH),
            "queries": get_query_registry().snapshot(
                limit=DEBUG_QUERY_LIMIT),
            "server": (site.log.snapshot() if site is not None
                       else None),
            # Click-time cache counters, split page/bindings so the
            # hit/miss totals reconcile with pages_computed.
            "site_cache": (cache_snapshot()
                           if callable(cache_snapshot) else None),
            # Materialized-view registry state (hit/miss/invalidation
            # counters, per-view footprints) — absent on pre-matview
            # snapshots, so consumers must tolerate a missing key.
            "matviews": self._matviews_payload(limit=DEBUG_QUERY_LIMIT),
            # Objective judgements and alert state at drain time, so
            # `repro slo check snapshot.json` can gate on the run.
            "slo": self._slo_snapshot(),
        }
        with open(paths["snapshot"], "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        return paths

    def _matviews_payload(self, limit: int = 50) -> dict:
        """The mounted site's materialized-view registry state."""
        registry = getattr(self.site_server, "matviews", None)
        if registry is None:
            return {"enabled": False}
        return registry.snapshot(limit=limit)

    def _slo_snapshot(self) -> dict | None:
        evaluator = self._slo()
        if evaluator is None:
            return None
        document = evaluator.snapshot()
        if self.canary is not None:
            document["canary"] = self.canary.as_dict()
        return document

    # -- request handling ----------------------------------------------------

    def dispatch(self, handler: _Handler) -> None:
        """Answer one request (called on the handler's thread)."""
        request_id = f"req-{next(self._request_ids)}"
        recorder = self.recorder
        method = handler.command
        split = urlsplit(handler.path)
        path, query = split.path, parse_qs(split.query)
        with recorder.span("http.request", request=request_id,
                           method=method, path=path) as span:
            try:
                status, content_type, body = self._route(
                    path, query, request_id)
            except Exception as exc:  # noqa: BLE001 — a 500, not a crash
                status, content_type = 500, CONTENT_TEXT
                body = f"internal error: {type(exc).__name__}\n"
                span.set(error=type(exc).__name__)
                recorder.metrics.counter("http.errors").inc()
                recorder.events.emit("error", "http.error", str(exc),
                                     span=span, request=request_id,
                                     path=path)
            span.set(status=status)
            seconds = span.seconds
            recorder.metrics.counter("http.requests").inc()
            recorder.metrics.histogram(
                "http.request_seconds").observe(seconds)
            recorder.events.emit(
                "info", "http.access", span=span, request=request_id,
                method=method, path=path, status=status,
                ms=round(seconds * 1000, 3))
        payload = body if isinstance(body, bytes) \
            else body.encode("utf-8")
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", content_type)
            handler.send_header("Content-Length", str(len(payload)))
            handler.send_header("X-Request-Id", request_id)
            handler.end_headers()
            if method != "HEAD":
                handler.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            recorder.metrics.counter("http.client_disconnects").inc()
        if self.access_log:
            print(f'{request_id} "{method} {path}" {status} '
                  f"{seconds * 1000:.1f}ms", file=sys.stderr)

    def _slo(self):
        """The evaluator to surface: the mounted one, else the global."""
        return self.slo_evaluator or get_slo_evaluator()

    def _healthz_body(self) -> str:
        """Liveness with something worth logging: uptime, version, and
        the worst-burning SLO (probes keep the first line ``ok``)."""
        from repro import __version__
        lines = [
            "ok",
            f"uptime_seconds: {time.time() - self.started:.1f}",
            f"version: {__version__}",
        ]
        evaluator = self._slo()
        worst = evaluator.worst() if evaluator is not None else None
        if evaluator is None:
            lines.append("slo: disabled")
        elif worst is None:
            lines.append("slo: no data yet")
        else:
            name, burn = worst
            lines.append(f"slo: worst burn {name} at {burn:.2f}x")
        return "\n".join(lines) + "\n"

    def _route(self, path: str, query: dict,
               request_id: str) -> tuple[int, str, str]:
        if path == "/healthz":
            return 200, CONTENT_TEXT, self._healthz_body()
        if path == "/readyz":
            if self.ready:
                return 200, CONTENT_TEXT, "ready\n"
            return 503, CONTENT_TEXT, "loading\n"
        if path == "/metrics":
            if self.recorder.enabled and get_lineage().enabled:
                # Freshness is scrape-time state: age every source
                # record (and re-count stale pages) per scrape.
                update_freshness_gauges(self.recorder.metrics,
                                        max_age=self.max_age)
            return 200, CONTENT_PROM, to_prometheus(self.recorder.metrics)
        if path == "/debug/traces":
            depth = _int_param(query, "depth", DEBUG_TRACE_DEPTH)
            return 200, CONTENT_JSON, json.dumps(
                self._traces_payload(depth), indent=2)
        if path == "/debug/events":
            return 200, CONTENT_JSON, json.dumps(
                self._events_payload(query), indent=2)
        if path == "/debug/profile":
            limit = _int_param(query, "limit", 0) or None
            return 200, CONTENT_JSON, json.dumps(
                self._profile_payload(limit), indent=2)
        if path == "/debug/queries":
            limit = _int_param(query, "limit", DEBUG_QUERY_LIMIT)
            return 200, CONTENT_JSON, json.dumps(
                get_query_registry().snapshot(limit=limit), indent=2)
        if path == "/debug/matviews":
            limit = _int_param(query, "limit", DEBUG_QUERY_LIMIT)
            return 200, CONTENT_JSON, json.dumps(
                self._matviews_payload(limit), indent=2)
        if path == "/debug/lineage":
            return self._lineage_route(query)
        if path == "/debug/slo":
            return self._slo_route()
        if path == "/debug/alerts":
            return self._alerts_route()
        if path in ("/debug", "/debug/"):
            return self._debug_index(query)
        if path.startswith("/debug/"):
            available = " ".join(sorted(DEBUG_ENDPOINTS))
            return 404, CONTENT_TEXT, (
                f"no such debug endpoint: {path}\n"
                f"available: {available}\n")
        return self._page(path, request_id)

    def _debug_index(self, query: dict) -> tuple[int, str, str]:
        """``/debug/``: what the debug surface offers."""
        if query.get("format", [None])[0] == "json":
            return 200, CONTENT_JSON, json.dumps(
                {"endpoints": DEBUG_ENDPOINTS}, indent=2)
        width = max(len(path) for path in DEBUG_ENDPOINTS)
        lines = [f"{path:<{width}}  {blurb}"
                 for path, blurb in sorted(DEBUG_ENDPOINTS.items())]
        return 200, CONTENT_TEXT, "\n".join(lines) + "\n"

    def _slo_route(self) -> tuple[int, str, str]:
        evaluator = self._slo()
        if evaluator is None:
            return 200, CONTENT_JSON, json.dumps(
                {"enabled": False}, indent=2)
        snapshot = evaluator.snapshot()
        return 200, CONTENT_JSON, json.dumps({
            "enabled": True,
            "ticks": snapshot["ticks"],
            "step_s": snapshot["step_s"],
            "coverage_s": snapshot["coverage_s"],
            "slos": snapshot["slos"],
        }, indent=2)

    def _alerts_route(self) -> tuple[int, str, str]:
        evaluator = self._slo()
        if evaluator is None:
            return 200, CONTENT_JSON, json.dumps(
                {"enabled": False}, indent=2)
        snapshot = evaluator.snapshot()
        document = {
            "enabled": True,
            "firing": snapshot["firing"],
            "alerts": snapshot["alerts"],
        }
        if self.canary is not None:
            document["canary"] = self.canary.as_dict()
        return 200, CONTENT_JSON, json.dumps(document, indent=2)

    def _lineage_route(self, query: dict) -> tuple[int, str, str]:
        """``/debug/lineage``: a why-tree for ``?page=``, else a summary."""
        lineage = get_lineage()
        target = query.get("page", [None])[0]
        if not lineage.enabled:
            return 200, CONTENT_JSON, json.dumps(
                {"enabled": False}, indent=2)
        if target is None:
            document = dict(lineage.summary())
            document["source_records"] = [
                record.to_dict() for record in lineage.sources()]
            document["max_age_seconds"] = self.max_age
            return 200, CONTENT_JSON, json.dumps(document, indent=2)
        target = target.lstrip("/")
        site = self.site_server
        if site is not None and lineage.resolve(target) == (None, None):
            # Serve mode computes pages on demand; a click-time page
            # that hasn't been requested yet has no lineage. Resolve
            # the path to its oid and materialize it first.
            oid = site.resolve_path(target)
            if oid is not None:
                try:
                    site.graph.ensure(oid)
                except Exception:  # noqa: BLE001 — fall through to 404
                    pass
                template = getattr(site, "generator", None)
                if template is not None:
                    lineage.record_page(
                        target, oid,
                        site.generator.template_for(oid) or "")
        document = lineage.why(target, max_age=self.max_age)
        if document is None:
            return 404, CONTENT_JSON, json.dumps(
                {"error": f"no lineage for {target!r}"}, indent=2)
        return 200, CONTENT_JSON, json.dumps(document, indent=2)

    def _page(self, path: str, request_id: str) -> tuple[int, str, str]:
        site = self.site_server
        if site is None or not self.ready:
            return 503, CONTENT_TEXT, "site not ready\n"
        if path in ("", "/"):
            roots = site.roots()
            if not roots:
                return 404, CONTENT_TEXT, "site has no root pages\n"
            response = site.request(roots[0], request_id=request_id)
        else:
            response = site.request(path.lstrip("/"),
                                    request_id=request_id)
        return response.status, CONTENT_HTML, response.body

    # -- debug payloads ------------------------------------------------------

    def _traces_payload(self, depth: int) -> dict:
        max_depth = depth if depth > 0 else None

        def dump(spans) -> list[dict]:
            return [span_to_dict(span, max_depth) for span in spans]

        tail = self.tail
        if tail is None:
            return {"offered": 0, "recent": [], "slowest": [],
                    "errors": []}
        return {
            "offered": tail.offered,
            "recent": dump(tail.recent),
            "slowest": dump(tail.slowest),
            "errors": dump(tail.errors),
        }

    def _events_payload(self, query: dict) -> list[dict]:
        limit = _int_param(query, "limit", DEBUG_EVENT_LIMIT)
        level = query.get("level", [None])[0]
        name = query.get("name", [None])[0]
        events = self.recorder.events.records(level, name=name)
        if limit > 0:
            events = events[-limit:]
        return [event.to_dict() for event in events]

    def _profile_payload(self, limit: int | None) -> list[dict]:
        entries = aggregate_profile(self.recorder)
        if limit:
            entries = entries[:limit]
        return [entry.to_dict() for entry in entries]


def _int_param(query: dict, name: str, default: int) -> int:
    try:
        return int(query.get(name, [default])[0])
    except (TypeError, ValueError):
        return default
