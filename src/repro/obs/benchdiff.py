"""Regression gating over committed benchmark documents.

``BENCH_core.json`` (written by ``benchmarks/conftest.py``) is the
committed perf trajectory: a handful of stable ``*_p50_s`` metrics with
``*_count`` companions.  This module diffs two such documents so CI can
fail on a slowdown instead of silently recording it:

.. code-block:: console

    $ python -m repro bench compare OLD.json NEW.json \\
          --max-regress-pct 25

A metric *regresses* when its new p50 exceeds the old by more than the
threshold percentage.  Metrics present on only one side are reported
but do not gate (coverage changes are a review concern, not a perf
gate).  A metric whose ``*_count`` companion is zero on either side
never ran there — its recorded 0.0 is absence, not a measurement — so
it is listed as skipped rather than compared against; zero-valued
baselines that lack a count companion are likewise not gateable (no
percentage exists over 0).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Default regression threshold, in percent.
DEFAULT_MAX_REGRESS_PCT = 25.0

#: Suffix identifying the gated metrics in a core document.
P50_SUFFIX = "_p50_s"


@dataclass
class MetricDelta:
    """One metric's movement between two documents."""

    name: str
    old: float
    new: float

    @property
    def pct(self) -> float | None:
        """Percent change new-vs-old (``None`` for a zero baseline)."""
        if self.old <= 0:
            return None
        return (self.new - self.old) / self.old * 100.0

    def regressed(self, max_regress_pct: float) -> bool:
        pct = self.pct
        return pct is not None and pct > max_regress_pct


@dataclass
class BenchComparison:
    """The full diff of two core documents plus the gate verdict."""

    deltas: list[MetricDelta] = field(default_factory=list)
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)
    #: Metrics whose ``*_count`` companion was 0 on either side — the
    #: benchmark never ran there, so there is nothing to compare.
    skipped: list[str] = field(default_factory=list)
    max_regress_pct: float = DEFAULT_MAX_REGRESS_PCT

    @property
    def regressions(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas
                if delta.regressed(self.max_regress_pct)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """The human-readable comparison table plus verdict."""
        lines: list[str] = []
        if self.deltas:
            width = max(len("metric"),
                        max(len(d.name) for d in self.deltas))
            lines.append(f"{'metric'.ljust(width)}  {'old s':>12}  "
                         f"{'new s':>12}  {'change':>8}")
            for delta in self.deltas:
                pct = delta.pct
                change = "   n/a" if pct is None else f"{pct:+7.1f}%"
                flag = "  REGRESSION" if delta.regressed(
                    self.max_regress_pct) else ""
                lines.append(f"{delta.name.ljust(width)}  "
                             f"{delta.old:>12.6f}  {delta.new:>12.6f}  "
                             f"{change:>8}{flag}")
        for name in self.only_old:
            lines.append(f"{name}: missing from NEW (not gated)")
        for name in self.only_new:
            lines.append(f"{name}: new metric (not gated)")
        for name in self.skipped:
            lines.append(f"{name}: never ran on one side "
                         "(count 0; not gated)")
        if not lines:
            lines.append("no comparable metrics")
        verdict = "ok" if self.ok else (
            f"{len(self.regressions)} metric(s) regressed more than "
            f"{self.max_regress_pct:g}%")
        lines.append(verdict)
        return "\n".join(lines)


def compare_documents(old: dict, new: dict,
                      max_regress_pct: float = DEFAULT_MAX_REGRESS_PCT
                      ) -> BenchComparison:
    """Diff two ``BENCH_core.json``-format documents per p50 metric."""
    old_metrics = _p50_metrics(old)
    new_metrics = _p50_metrics(new)
    comparison = BenchComparison(max_regress_pct=max_regress_pct)
    for name in old_metrics:
        if name not in new_metrics:
            comparison.only_old.append(name)
        elif _count_is_zero(old, name) or _count_is_zero(new, name):
            comparison.skipped.append(name)
        else:
            comparison.deltas.append(MetricDelta(
                name, float(old_metrics[name]),
                float(new_metrics[name])))
    comparison.only_new = [name for name in new_metrics
                           if name not in old_metrics]
    return comparison


def _count_is_zero(document: dict, p50_name: str) -> bool:
    """Whether ``p50_name``'s ``*_count`` companion says the benchmark
    never ran in ``document`` (a present companion equal to 0)."""
    count_name = p50_name.replace(P50_SUFFIX, "_count")
    count = document.get("metrics", {}).get(count_name)
    return isinstance(count, (int, float)) and count == 0


def load_document(path: str) -> dict:
    """Read and validate one core benchmark document."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) \
            or not isinstance(document.get("metrics"), dict):
        raise ValueError(
            f"{path}: not a BENCH_core.json document "
            "(expected an object with a 'metrics' mapping)")
    return document


def _p50_metrics(document: dict) -> dict:
    return {name: value
            for name, value in document.get("metrics", {}).items()
            if name.endswith(P50_SUFFIX)
            and isinstance(value, (int, float))}
