"""Query observability: fingerprints, the plan registry, slow-query log.

This is the per-query introspection layer over the StruQL engine — the
moral equivalent of ``EXPLAIN ANALYZE`` plus ``pg_stat_statements`` for
the paper's section 2.4 query processor:

* :func:`fingerprint` normalizes a query (literals masked, whitespace
  collapsed) and hashes it, so executions of the same query *shape*
  aggregate together regardless of constants;
* :class:`QueryStatsRegistry` keeps bounded per-fingerprint statistics
  (count, latency histogram for p50/p95, rows, last plan) with LRU
  eviction — the same bounded-memory discipline as
  :class:`~repro.obs.trace.TailSampler`, so a high-cardinality query
  workload cannot grow memory without limit;
* :func:`render_explain` / :func:`explain_document` turn a
  :class:`~repro.struql.evaluator.QueryResult` into the human-readable
  and machine-readable (``--json``) EXPLAIN [ANALYZE] forms consumed by
  ``repro explain`` and the ``/debug/queries`` endpoint.

Evaluations slower than the registry's threshold emit a
``struql.slow_query`` WARN event; mis-estimated blocks (est/actual
cardinality ratio beyond
:data:`~repro.struql.plan.MISESTIMATE_RATIO`) are flagged by the
evaluator as ``struql.misestimate`` events and tallied here.  Registry
activity is mirrored into ``struql.*`` metrics, which reach the
Prometheus export as ``strudel_struql_*`` series.

The module deliberately imports nothing from :mod:`repro.struql`: the
renderers duck-type over ``QueryResult``/``BlockTrace`` so the
dependency arrow keeps pointing from the engine into observability.
"""

from __future__ import annotations

import hashlib
import re
import threading
from collections import OrderedDict

from repro.obs.metrics import Histogram
from repro.obs.trace import emit_event, get_recorder

#: Default eviction bound: at most this many distinct fingerprints.
DEFAULT_MAX_FINGERPRINTS = 256

#: Evaluations at or above this wall time emit ``struql.slow_query``.
DEFAULT_SLOW_QUERY_SECONDS = 0.5

#: Normalized query text kept per fingerprint is truncated to this.
MAX_TEXT_KEPT = 400

#: Estimated/actual cardinality ratio beyond which an operator or block
#: is flagged as mis-estimated (``struql.misestimate`` events).
MISESTIMATE_RATIO = 10.0

_STRING_LITERAL = re.compile(r'"(?:[^"\\]|\\.)*"')
_NUMBER_LITERAL = re.compile(r"\b\d+(?:\.\d+)?\b")
_WHITESPACE = re.compile(r"\s+")


def misestimate_ratio(estimated: float | None, actual: int | float) -> float:
    """Symmetric est/actual error ratio, >= 1.0; 1.0 when unknown.

    Both sides are clamped to at least one row so empty results do not
    divide by zero — a 0-row actual against a 50-row estimate reads as
    a 50x error, which is the honest interpretation.
    """
    if estimated is None:
        return 1.0
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def normalize_query(text: str) -> str:
    """Canonical form of a query's text for fingerprinting.

    Literals are masked — strings to ``"?"`` (quotes kept), numbers to
    ``?`` — and whitespace is collapsed, so ``x = "a"`` and ``x = "b"``
    share a fingerprint while structurally different queries do not.
    Keeping the quotes preserves the literal's *type*: ``x = "1"`` and
    ``x = 1`` compare differently at evaluation time and must not
    collide into one fingerprint.
    """
    masked = _STRING_LITERAL.sub('"?"', text)
    masked = _NUMBER_LITERAL.sub("?", masked)
    return _WHITESPACE.sub(" ", masked).strip()


def fingerprint(query) -> str:
    """A short stable hash of the normalized query text.

    Accepts a parsed ``Query`` (uses its source ``text``) or a plain
    string.
    """
    text = getattr(query, "text", None) or str(query)
    normalized = normalize_query(text)
    return hashlib.sha1(normalized.encode("utf-8")).hexdigest()[:12]


class QueryStats:
    """Aggregated statistics for one query fingerprint."""

    def __init__(self, fp: str, text: str) -> None:
        self.fingerprint = fp
        self.text = text[:MAX_TEXT_KEPT]
        self.count = 0
        self.slow = 0
        self.misestimates = 0
        self.rows_total = 0
        self.last_seconds = 0.0
        self.last_rows = 0
        self.last_plan = ""
        self.last_optimizer = ""
        # Fixed-bucket histogram: O(buckets) memory per fingerprint,
        # interpolated p50/p95 — same machinery as the span histograms.
        self._latency = Histogram(f"struql.query.{fp}.seconds")

    def record(self, seconds: float, rows: int, plan: str,
               optimizer: str, misestimates: int) -> None:
        self.count += 1
        self.rows_total += rows
        self.misestimates += misestimates
        self.last_seconds = seconds
        self.last_rows = rows
        if plan:
            self.last_plan = plan
        self.last_optimizer = optimizer
        self._latency.observe(seconds)

    @property
    def p50_seconds(self) -> float:
        return self._latency.p50

    @property
    def p95_seconds(self) -> float:
        return self._latency.p95

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "text": self.text,
            "count": self.count,
            "slow": self.slow,
            "misestimates": self.misestimates,
            "rows_total": self.rows_total,
            "p50_s": self.p50_seconds,
            "p95_s": self.p95_seconds,
            "mean_s": self._latency.mean,
            "last_s": self.last_seconds,
            "last_rows": self.last_rows,
            "last_optimizer": self.last_optimizer,
            "last_plan": self.last_plan,
        }


class QueryStatsRegistry:
    """Bounded per-fingerprint query statistics with LRU eviction.

    Thread-safe; always on (recording a query is a dict update and one
    histogram observation).  When the fingerprint population exceeds
    ``max_fingerprints`` the least-recently-observed entries are
    evicted, so memory stays bounded regardless of workload cardinality
    — the ``/debug/queries`` analogue of :class:`TailSampler`'s rings.
    """

    def __init__(self, max_fingerprints: int = DEFAULT_MAX_FINGERPRINTS,
                 slow_seconds: float = DEFAULT_SLOW_QUERY_SECONDS) -> None:
        self.max_fingerprints = max(int(max_fingerprints), 1)
        self.slow_seconds = slow_seconds
        self.evicted = 0
        self.observed = 0
        self._entries: "OrderedDict[str, QueryStats]" = OrderedDict()
        self._lock = threading.Lock()

    def observe(self, query, seconds: float, rows: int = 0,
                plan: str = "", optimizer: str = "",
                misestimates: int = 0) -> QueryStats:
        """Record one evaluation; returns the (updated) entry.

        Emits ``struql.slow_query`` at WARN and bumps ``struql.*``
        metrics on the active recorder (no-ops while disabled).
        """
        fp = fingerprint(query)
        text = getattr(query, "text", None) or str(query)
        with self._lock:
            entry = self._entries.get(fp)
            if entry is None:
                entry = QueryStats(fp, normalize_query(text))
                self._entries[fp] = entry
            else:
                self._entries.move_to_end(fp)
            entry.record(seconds, rows, plan, optimizer, misestimates)
            self.observed += 1
            slow = seconds >= self.slow_seconds
            if slow:
                entry.slow += 1
            while len(self._entries) > self.max_fingerprints:
                self._entries.popitem(last=False)
                self.evicted += 1
            population = len(self._entries)
        metrics = get_recorder().metrics
        metrics.counter("struql.queries_observed").inc()
        metrics.gauge("struql.query_fingerprints").set(population)
        if misestimates:
            metrics.counter("struql.misestimates").inc(misestimates)
        if slow:
            metrics.counter("struql.slow_queries").inc()
            emit_event("warning", "struql.slow_query",
                       fingerprint=fp, seconds=round(seconds, 6),
                       rows=rows, optimizer=optimizer,
                       threshold_s=self.slow_seconds,
                       query=entry.text)
        return entry

    def get(self, fp: str) -> QueryStats | None:
        with self._lock:
            return self._entries.get(fp)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.evicted = 0
            self.observed = 0

    def snapshot(self, limit: int | None = None) -> dict:
        """A JSON-ready snapshot, slowest (by p95) first."""
        with self._lock:
            entries = [e.to_dict() for e in self._entries.values()]
        entries.sort(key=lambda e: e["p95_s"], reverse=True)
        if limit is not None:
            entries = entries[:max(limit, 0)]
        return {
            "fingerprints": len(self),
            "observed": self.observed,
            "evicted": self.evicted,
            "max_fingerprints": self.max_fingerprints,
            "slow_seconds": self.slow_seconds,
            "queries": entries,
        }


_registry = QueryStatsRegistry()


def get_query_registry() -> QueryStatsRegistry:
    """The process-wide query statistics registry."""
    return _registry


def set_query_registry(registry: QueryStatsRegistry) -> QueryStatsRegistry:
    """Install ``registry`` as the process-wide one; returns it."""
    global _registry
    _registry = registry
    return registry


# -- EXPLAIN [ANALYZE] rendering ----------------------------------------------
#
# The functions below consume QueryResult/BlockTrace duck-typed: they
# touch only `.traces`, `.fingerprint`, `.optimizer_name` on the result
# and `.label`, `.plan_explain`, `.binding_rows`, `.seconds`,
# `.estimated_rows`, `.op_profiles`, `.decisions` on each trace.


def _flag(profile) -> str:
    return "!" if getattr(profile, "misestimated", False) else " "


def _render_op_line(index: int, profile) -> str:
    parts = [f"{_flag(profile)} {index}. {profile.op}"]
    if profile.access_path:
        parts.append(f"via {profile.access_path}")
    est = profile.est_rows
    parts.append(f"est~{est:g}" if est is not None else "est~?")
    parts.append(f"actual={profile.rows_out} rows")
    parts.append(f"{profile.seconds * 1000:.3f} ms")
    if profile.index_hits or profile.index_misses:
        parts.append(f"idx={profile.index_hits}/{profile.index_misses}")
    if getattr(profile, "misestimated", False):
        parts.append(f"(misestimate {profile.est_actual_ratio:.1f}x)")
    return "  ".join(parts)


def _render_decisions(decisions) -> list[str]:
    lines = ["  decisions:"]
    for decision in decisions:
        lines.append(f"    step {decision.step} -> {decision.chosen} "
                     f"(est~{decision.est_rows:g} rows)")
        for candidate in decision.candidates:
            if candidate.get("chosen"):
                continue
            if not candidate.get("executable", True):
                lines.append(f"      - {candidate['condition']}: "
                             "not executable yet")
                continue
            lines.append(
                f"      - {candidate['condition']}: "
                f"cost={candidate['est_cost']:g}, "
                f"{candidate['access_path']}")
    return lines


def render_explain(result, analyze: bool = False,
                   decisions: bool = True) -> str:
    """Human-readable EXPLAIN (plan + decisions) or EXPLAIN ANALYZE.

    With ``analyze`` each executed operator shows estimated vs actual
    rows, wall milliseconds, and index hits; mis-estimated operators are
    flagged with ``!``.
    """
    lines = []
    fp = getattr(result, "fingerprint", "")
    optimizer = getattr(result, "optimizer_name", "")
    header = ["query"]
    if fp:
        header.append(f"fingerprint={fp}")
    if optimizer:
        header.append(f"optimizer={optimizer}")
    lines.append(" ".join(header))
    for trace in result.traces:
        label = trace.label or "(top)"
        est = getattr(trace, "estimated_rows", None)
        est_text = f", est~{est:g} rows" if est is not None else ""
        if analyze:
            lines.append(f"block {label} [{trace.binding_rows} rows, "
                         f"{trace.seconds * 1000:.2f} ms{est_text}]")
            profiles = getattr(trace, "op_profiles", [])
            if profiles:
                for i, profile in enumerate(profiles, start=1):
                    lines.append("  " + _render_op_line(i, profile))
            else:
                for line in trace.plan_explain.splitlines():
                    lines.append("  " + line)
        else:
            lines.append(f"block {label} [{est_text.strip(', ') or 'plan'}]")
            for line in trace.plan_explain.splitlines():
                lines.append("  " + line)
        block_decisions = getattr(trace, "decisions", [])
        if decisions and block_decisions:
            lines.extend(_render_decisions(block_decisions))
    flagged = misestimates_of(result)
    if flagged:
        lines.append("misestimates:")
        for item in flagged:
            lines.append(f"  ! {item['scope']} {item['what']}: "
                         f"est {item['estimated']:g} vs actual "
                         f"{item['actual']} ({item['ratio']:.1f}x)")
    return "\n".join(lines)


def misestimates_of(result) -> list[dict]:
    """Every flagged est/actual divergence in a result, blocks and ops."""
    out: list[dict] = []
    for trace in result.traces:
        label = trace.label or "(top)"
        est = getattr(trace, "estimated_rows", None)
        if est is not None and getattr(trace, "executed", True):
            ratio = misestimate_ratio(est, trace.binding_rows)
            if ratio > MISESTIMATE_RATIO:
                out.append({"scope": f"block {label}", "what": "cardinality",
                            "estimated": float(est),
                            "actual": trace.binding_rows,
                            "ratio": ratio})
        for i, profile in enumerate(getattr(trace, "op_profiles", []),
                                    start=1):
            if profile.misestimated:
                out.append({"scope": f"block {label}",
                            "what": f"op {i} {profile.condition}",
                            "estimated": float(profile.est_rows),
                            "actual": profile.rows_out,
                            "ratio": profile.est_actual_ratio})
    return out


def explain_document(result, analyze: bool = False) -> dict:
    """The machine-readable (``--json``) EXPLAIN [ANALYZE] document."""
    blocks = []
    for trace in result.traces:
        block = {
            "label": trace.label or "(top)",
            "plan": trace.plan_explain.splitlines(),
            "estimated_rows": getattr(trace, "estimated_rows", None),
            "decisions": [d.to_dict()
                          for d in getattr(trace, "decisions", [])],
        }
        if analyze:
            block["actual_rows"] = trace.binding_rows
            block["seconds"] = trace.seconds
            block["ops"] = [p.to_dict()
                            for p in getattr(trace, "op_profiles", [])]
        blocks.append(block)
    doc = {
        "fingerprint": getattr(result, "fingerprint", ""),
        "optimizer": getattr(result, "optimizer_name", ""),
        "analyze": analyze,
        "blocks": blocks,
        "misestimates": misestimates_of(result),
    }
    if analyze:
        doc["summary"] = {
            "total_rows": sum(t.binding_rows for t in result.traces),
            "seconds": sum(t.seconds for t in result.traces),
        }
    return doc
