"""Prometheus text-format exposition of the metrics registry.

Renders every instrument of a :class:`~repro.obs.metrics.MetricsRegistry`
(or of its :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` document,
so exported JSON re-renders identically) in the Prometheus *text
exposition format*, version 0.0.4:

* counters gain the conventional ``_total`` suffix;
* gauges expose their last-written value;
* histograms emit cumulative ``<name>_bucket{le="..."}`` series ending
  with ``le="+Inf"``, then ``<name>_sum`` and ``<name>_count``.

Instrument names such as ``struql.rows_created`` are sanitized into the
metric-name grammar (``[a-zA-Z_:][a-zA-Z0-9_:]*``) by replacing illegal
characters with ``_``; the original name is preserved in the ``# HELP``
line.  :func:`parse_prometheus` reads the exposition back into plain
data — enough for round-trip tests and for the dashboard, not a full
client library.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry

#: Default prefix stamped onto every exported metric name.
DEFAULT_PREFIX = "strudel"

#: Hand-written HELP text for well-known instruments; everything else
#: falls back to a generic "Counter/Gauge {name}." line.
HELP_TEXT: dict[str, str] = {
    "struql.queries_observed":
        "StruQL query evaluations recorded by the plan registry.",
    "struql.query_fingerprints":
        "Distinct query fingerprints currently held by the bounded "
        "plan registry.",
    "struql.slow_queries":
        "Evaluations at or above the slow-query threshold "
        "(struql.slow_query events).",
    "struql.misestimates":
        "Blocks whose estimated/actual cardinality ratio exceeded the "
        "misestimate threshold.",
    "struql.rows_scanned":
        "Rows consumed by StruQL physical operators.",
    "struql.rows_produced":
        "Rows emitted by StruQL physical operators.",
    "repository.index.hits": "Labeled edge lookups served by an index.",
    "repository.index.misses":
        "Labeled edge lookups that fell back to a linear edge scan.",
    "lineage.sources":
        "Source records currently held by the lineage index.",
    "lineage.pages_stale_total":
        "Pages whose newest contributing source is older than "
        "--max-age at the last freshness evaluation.",
    "alerts_firing":
        "Burn-rate alert rules currently in the firing state.",
    "canary.probes": "End-to-end canary probes attempted.",
    "canary.failures": "Canary probes that failed.",
}

#: Per-SLO gauges follow the flat-name convention
#: ``slo.<facet>.<objective>``; these prefixes map them to shared HELP
#: lines at exposition time (like the per-source freshness gauges).
SLO_HELP_PREFIXES: dict[str, str] = {
    "slo.compliance.":
        "Good fraction of this objective over its rolling window "
        "(target is the SLO's promise).",
    "slo.burn_rate.":
        "How fast this objective consumes error budget (1.0 = "
        "exactly on target).",
    "slo.budget_remaining.":
        "Error budget left over the objective's window (negative "
        "means the objective is being missed).",
}

#: Per-source freshness gauges follow the flat-name convention
#: ``lineage.source_age_seconds.<source>``; this prefix maps them to a
#: shared HELP line at exposition time.
SOURCE_AGE_PREFIX = "lineage.source_age_seconds."
SOURCE_AGE_HELP = ("Seconds since this source's last successful fetch "
                   "(suffix = source id).")

_NAME_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """``prefix`` + ``name`` mapped into the Prometheus name grammar."""
    full = f"{prefix}_{name}" if prefix else name
    full = _NAME_ILLEGAL.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def escape_label_value(value) -> str:
    """``value`` escaped per the exposition spec: backslash, double
    quote and newline become ``\\\\``, ``\\"`` and ``\\n``."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """HELP-line text escaped per the spec (backslash and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_labels(labels: dict | None) -> str:
    """A label dict as ``{k="v",...}`` with spec-escaped values (empty
    string for no labels)."""
    if not labels:
        return ""
    inner = ",".join(f'{key}="{escape_label_value(value)}"'
                     for key, value in labels.items())
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def _as_document(metrics) -> dict:
    if isinstance(metrics, (MetricsRegistry, NullMetricsRegistry)):
        return metrics.as_dict()
    return metrics


def _histogram_lines(name: str, summary: dict, prefix: str,
                     lines: list[str],
                     labels: dict | None = None) -> None:
    base = sanitize_name(name, prefix)
    label_str = format_labels(labels)
    lines.append(f"# HELP {base} "
                 f"{escape_help(f'Histogram of {name} (seconds).')}")
    lines.append(f"# TYPE {base} histogram")
    buckets = summary.get("buckets")
    if buckets is None:
        # Degraded document (older export without bucket detail):
        # expose the +Inf bucket only, which still satisfies the
        # format's "must end with +Inf == count" rule.
        buckets = [["+Inf", summary.get("count", 0)]]
    for bound, cumulative in buckets:
        le = "+Inf" if bound == "+Inf" or (
            isinstance(bound, float) and math.isinf(bound)
        ) else _format_value(float(bound))
        bucket_labels = format_labels({**(labels or {}), "le": le})
        lines.append(f"{base}_bucket{bucket_labels} {cumulative}")
    lines.append(f"{base}_sum{label_str} "
                 f"{_format_value(summary.get('sum', 0.0))}")
    lines.append(f"{base}_count{label_str} {summary.get('count', 0)}")


def to_prometheus(metrics, prefix: str = DEFAULT_PREFIX,
                  labels: dict | None = None) -> str:
    """The registry (or its ``as_dict`` document) as exposition text.

    Every registered counter, gauge and histogram appears exactly once;
    output ends with a newline as the format requires.  ``labels`` is
    an optional dict of constant labels stamped onto every sample (the
    way a scrape target identifies an instance or site); values are
    escaped per the spec, so quotes, backslashes and newlines survive
    the round trip.
    """
    data = _as_document(metrics)
    label_str = format_labels(labels)
    lines: list[str] = []
    for name, value in data.get("counters", {}).items():
        base = sanitize_name(name, prefix) + "_total"
        help_text = HELP_TEXT.get(name, f"Counter {name}.")
        lines.append(f"# HELP {base} {escape_help(help_text)}")
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base}{label_str} {_format_value(value)}")
    for name, value in data.get("gauges", {}).items():
        base = sanitize_name(name, prefix)
        if name.startswith(SOURCE_AGE_PREFIX):
            help_text = HELP_TEXT.get(name, SOURCE_AGE_HELP)
        else:
            help_text = HELP_TEXT.get(name, f"Gauge {name}.")
            for slo_prefix, slo_help in SLO_HELP_PREFIXES.items():
                if name.startswith(slo_prefix):
                    help_text = slo_help
                    break
        lines.append(f"# HELP {base} {escape_help(help_text)}")
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base}{label_str} {_format_value(value)}")
    for name, summary in data.get("histograms", {}).items():
        _histogram_lines(name, summary, prefix, lines, labels)
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(metrics, path: str,
                     prefix: str = DEFAULT_PREFIX,
                     labels: dict | None = None) -> None:
    """Write :func:`to_prometheus` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(metrics, prefix, labels))


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$")
_LABEL = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:\\.|[^"\\])*)"')
_ESCAPE_SEQ = re.compile(r"\\(.)")
_UNESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape_label(value: str) -> str:
    """Undo :func:`escape_label_value` (single pass, so an escaped
    backslash followed by ``n`` is not mistaken for a newline)."""
    return _ESCAPE_SEQ.sub(
        lambda m: _UNESCAPES.get(m.group(1), "\\" + m.group(1)), value)


def parse_prometheus(text: str) -> dict:
    """Exposition text back into plain data, for tests and tooling.

    Returns ``{"types": {name: type}, "samples": [(name, labels,
    value), ...]}`` where ``labels`` is a dict with unescaped values
    and ``value`` a float (``+Inf`` parses to ``math.inf``).
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = {m.group("key"): _unescape_label(m.group("val"))
                  for m in _LABEL.finditer(match.group("labels") or "")}
        raw = match.group("value")
        value = math.inf if raw == "+Inf" else (
            -math.inf if raw == "-Inf" else float(raw))
        samples.append((match.group("name"), labels, value))
    return {"types": types, "samples": samples}
