"""Service-level objectives, burn-rate alerting, and the canary.

PRs 1–8 made the server *observable* — spans, events, Prometheus
metrics, query stats, lineage — but every signal is cumulative since
start and none of it says when the site is unhealthy.  This module
turns signals into judgements:

* :class:`SLO` — a declarative objective ("99% of ``server.request``
  under 250 ms over 1 h") over the :class:`~repro.obs.metrics.WindowedSeries`
  substrate, either *availability* (bad / total counters) or *latency*
  (histogram fraction over a threshold);

* :class:`AlertRule` — one multi-window burn-rate rule per
  (SLO, window pair), SRE-workbook style: it fires only when both the
  short and the long window burn error budget faster than the pair's
  factor, which makes fast pairs (5 m / 1 h, 14.4×) page-worthy without
  flapping and slow pairs (30 m / 6 h, 6×) catch smoulders.  Each rule
  runs a pending → firing → resolved state machine and its transitions
  emit ``alert.*`` structured events;

* :class:`SLOEvaluator` — samples the registry each tick, updates
  ``slo.*`` gauges (compliance, burn rate, budget remaining) and the
  ``alerts_firing`` gauge, and steps every rule.  It backs
  ``/debug/slo``, ``/debug/alerts``, the monitor dashboard's Alerts
  page, and the ``slo`` section of ``snapshot.json``;

* :class:`CanaryProber` — a background thread on ``repro serve`` that
  exercises a known page end-to-end (URL resolution, lazy-graph
  materialisation, query evaluation, template rendering) and feeds
  dedicated ``canary.*`` series, so the server detects its own
  regressions with zero organic traffic.

``repro slo check`` reuses the same arithmetic offline against a
metrics or snapshot dump (see :func:`check_document`), exiting
non-zero on violation so CI can gate on it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .metrics import WindowedSeries, DEFAULT_WINDOW_STEP

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - gated, never installed
    tomllib = None

#: A burn rate at or past this means the objective is being violated
#: outright (budget consumed as fast as it accrues).
VIOLATION_BURN = 1.0


# -- objectives ---------------------------------------------------------------


@dataclass
class SLO:
    """One declarative objective over a rolling window.

    ``kind="availability"`` reads two counters: ``total_metric`` (all
    attempts) and ``bad_metric`` (failures; absent counter = zero
    failures).  ``kind="latency"`` reads one histogram,
    ``latency_metric``, and counts an observation *bad* when it lands
    past ``threshold_s``.  ``target`` is the good fraction promised
    (0.99 = "99% good"); ``window_s`` the rolling compliance window.
    """

    name: str
    kind: str  # "availability" | "latency"
    target: float
    window_s: float = 3600.0
    total_metric: str = ""
    bad_metric: str = ""
    latency_metric: str = ""
    threshold_s: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind: {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"target must be in (0, 1): {self.target}")
        if self.kind == "availability" and not self.total_metric:
            raise ValueError(f"SLO {self.name}: total_metric required")
        if self.kind == "latency" and (not self.latency_metric
                                       or self.threshold_s <= 0):
            raise ValueError(
                f"SLO {self.name}: latency_metric and a positive "
                f"threshold_s required")

    @property
    def budget(self) -> float:
        """The error budget: the bad fraction the target tolerates."""
        return 1.0 - self.target

    def bad_ratio(self, series: WindowedSeries,
                  window: float) -> float | None:
        """The bad fraction over the last ``window`` seconds.

        ``None`` means *no data* (no attempts in the window, or the
        series is too young) — deliberately distinct from a healthy
        0.0, so alert rules stay quiet instead of judging silence.
        """
        if self.kind == "availability":
            total = series.increase(self.total_metric, window)
            if total is None or total <= 0:
                return None
            bad = series.increase(self.bad_metric, window) or 0.0
            return min(max(bad / total, 0.0), 1.0)
        below = series.fraction_below(self.latency_metric,
                                      self.threshold_s, window)
        if below is None:
            return None
        good, total = below
        if total <= 0:
            return None
        return min(max(1.0 - good / total, 0.0), 1.0)

    def burn_rate(self, series: WindowedSeries,
                  window: float) -> float | None:
        """How fast the window eats error budget (1.0 = exactly on
        target, 14.4 = the whole 30-day budget in ~2 days)."""
        ratio = self.bad_ratio(series, window)
        if ratio is None:
            return None
        return ratio / max(self.budget, 1e-9)

    def describe(self) -> str:
        if self.kind == "availability":
            detail = (f"{self.total_metric} good "
                      f"(bad: {self.bad_metric or 'none'})")
        else:
            detail = (f"{self.latency_metric} <= "
                      f"{self.threshold_s * 1000:g} ms")
        return (f"{self.target * 100:g}% of {detail} "
                f"over {int(self.window_s)}s")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "window_s": self.window_s,
            "objective": self.describe(),
            "description": self.description,
        }


@dataclass(frozen=True)
class BurnRatePair:
    """One multi-window burn-rate condition (long + short window).

    The rule trips only when *both* windows burn at ``factor`` or
    faster: the long window proves the problem is sustained, the short
    window proves it is still happening (and lets the alert resolve
    promptly once the bleeding stops).
    """

    long_s: float
    short_s: float
    factor: float
    severity: str  # "page" | "ticket"

    def as_dict(self) -> dict:
        return {
            "long_s": self.long_s,
            "short_s": self.short_s,
            "factor": self.factor,
            "severity": self.severity,
        }


#: SRE-workbook defaults: the fast pair pages on budget burning 14.4×
#: too fast (5 m / 1 h), the slow pair tickets smoulders (30 m / 6 h).
DEFAULT_PAIRS: tuple[BurnRatePair, ...] = (
    BurnRatePair(long_s=3600.0, short_s=300.0, factor=14.4,
                 severity="page"),
    BurnRatePair(long_s=21600.0, short_s=1800.0, factor=6.0,
                 severity="ticket"),
)

#: Consecutive burning ticks before pending becomes firing.
DEFAULT_FOR_TICKS = 2
#: Consecutive quiet ticks before firing resolves.
DEFAULT_CLEAR_TICKS = 2


class AlertRule:
    """The pending → firing → resolved state machine for one
    (SLO, window pair).

    Each evaluator tick calls :meth:`step`.  A tick is *burning* when
    both of the pair's windows burn at or past the factor; the first
    burning tick moves ok → pending, ``for_ticks`` consecutive ones
    move pending → firing, and ``clear_ticks`` consecutive quiet ticks
    move firing → ok (reported as *resolved*).  Window queries clip to
    the data actually retained, so a freshly started server can still
    fire — "error rate over the last hour" degrades to "over its whole
    lifetime so far".
    """

    def __init__(self, slo: SLO, pair: BurnRatePair,
                 for_ticks: int = DEFAULT_FOR_TICKS,
                 clear_ticks: int = DEFAULT_CLEAR_TICKS) -> None:
        self.slo = slo
        self.pair = pair
        self.for_ticks = max(int(for_ticks), 1)
        self.clear_ticks = max(int(clear_ticks), 1)
        self.state = "ok"  # "ok" | "pending" | "firing"
        self.since: float | None = None
        self.last_change: float | None = None
        self.short_burn: float | None = None
        self.long_burn: float | None = None
        self._burn_streak = 0
        self._quiet_streak = 0

    @property
    def name(self) -> str:
        return f"{self.slo.name}:{self.pair.severity}"

    def step(self, series: WindowedSeries,
             now: float) -> str | None:
        """Advance one tick; returns the transition that happened
        (``"pending"``/``"firing"``/``"resolved"``) or ``None``."""
        self.long_burn = self.slo.burn_rate(series, self.pair.long_s)
        self.short_burn = self.slo.burn_rate(series, self.pair.short_s)
        burning = (self.long_burn is not None
                   and self.short_burn is not None
                   and self.long_burn >= self.pair.factor
                   and self.short_burn >= self.pair.factor)
        transition: str | None = None
        if burning:
            self._burn_streak += 1
            self._quiet_streak = 0
            if self.state == "ok":
                self.state = "pending"
                self.since = now
                transition = "pending"
            if (self.state == "pending"
                    and self._burn_streak >= self.for_ticks):
                self.state = "firing"
                transition = "firing"
        else:
            self._burn_streak = 0
            if self.state == "pending":
                # A single quiet tick clears a pending alert — it
                # never notified anyone, no hysteresis needed.
                self.state = "ok"
                self.since = None
            elif self.state == "firing":
                self._quiet_streak += 1
                if self._quiet_streak >= self.clear_ticks:
                    self.state = "ok"
                    self.since = None
                    transition = "resolved"
            else:
                self._quiet_streak = 0
        if transition is not None:
            self.last_change = now
        return transition

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "slo": self.slo.name,
            "severity": self.pair.severity,
            "state": self.state,
            "factor": self.pair.factor,
            "long_window_s": self.pair.long_s,
            "short_window_s": self.pair.short_s,
            "long_burn": self.long_burn,
            "short_burn": self.short_burn,
            "since": self.since,
            "last_change": self.last_change,
        }


# -- the evaluator ------------------------------------------------------------


class SLOEvaluator:
    """Samples the registry and judges every objective each tick.

    One :meth:`evaluate` call: sample the windowed series, refresh the
    per-SLO gauges (``slo.compliance.<name>``, ``slo.burn_rate.<name>``,
    ``slo.budget_remaining.<name>``), step every alert rule, emit
    ``alert.*`` events for transitions, and set ``alerts_firing``.
    Ticks are driven either by the :class:`CanaryProber` (each probe
    ends with an evaluation) or by :meth:`start_background`.
    """

    def __init__(self, recorder, slos: list[SLO] | None = None,
                 step: float = DEFAULT_WINDOW_STEP,
                 retention: float | None = None,
                 pairs: tuple[BurnRatePair, ...] = DEFAULT_PAIRS,
                 for_ticks: int = DEFAULT_FOR_TICKS,
                 clear_ticks: int = DEFAULT_CLEAR_TICKS) -> None:
        self.recorder = recorder
        self.slos = list(slos if slos is not None else default_slos())
        if retention is None:
            # Retain enough history for the longest window asked for.
            longest = max([p.long_s for p in pairs]
                          + [s.window_s for s in self.slos] + [step])
            retention = longest + step
        self.series = WindowedSeries(recorder.metrics, step=step,
                                     retention=retention)
        self.rules = [AlertRule(slo, pair, for_ticks, clear_ticks)
                      for slo in self.slos for pair in pairs]
        self.pairs = pairs
        self.ticks = 0
        self.last_tick: float | None = None
        self._status: list[dict] = []
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- one tick --------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> list[dict]:
        """One tick: sample, judge, alert.  Returns per-SLO status."""
        if now is None:
            now = time.time()
        with self._lock:
            self.series.sample(now)
            metrics = self.recorder.metrics
            status = []
            for slo in self.slos:
                ratio = slo.bad_ratio(self.series, slo.window_s)
                burn = (None if ratio is None
                        else ratio / max(slo.budget, 1e-9))
                compliance = None if ratio is None else 1.0 - ratio
                budget_left = None if burn is None else 1.0 - burn
                entry = slo.as_dict()
                entry.update(bad_ratio=ratio, compliance=compliance,
                             burn_rate=burn,
                             budget_remaining=budget_left,
                             violated=(burn is not None
                                       and burn >= VIOLATION_BURN))
                status.append(entry)
                if compliance is not None:
                    metrics.gauge(
                        f"slo.compliance.{slo.name}").set(compliance)
                    metrics.gauge(
                        f"slo.burn_rate.{slo.name}").set(burn)
                    metrics.gauge(
                        f"slo.budget_remaining.{slo.name}"
                    ).set(budget_left)
            firing = 0
            for rule in self.rules:
                transition = rule.step(self.series, now)
                if rule.state == "firing":
                    firing += 1
                if transition is not None:
                    self._emit(rule, transition)
            metrics.gauge("alerts_firing").set(firing)
            self.ticks += 1
            self.last_tick = now
            self._status = status
            return status

    def _emit(self, rule: AlertRule, transition: str) -> None:
        level = {"pending": "warning", "firing": "error",
                 "resolved": "info"}[transition]
        self.recorder.events.emit(
            level, f"alert.{transition}",
            f"{rule.slo.describe()} [{rule.pair.severity}]",
            slo=rule.slo.name, severity=rule.pair.severity,
            factor=rule.pair.factor,
            long_window_s=rule.pair.long_s,
            short_window_s=rule.pair.short_s,
            long_burn=(round(rule.long_burn, 3)
                       if rule.long_burn is not None else None),
            short_burn=(round(rule.short_burn, 3)
                        if rule.short_burn is not None else None))

    # -- surfacing -------------------------------------------------------------

    def firing(self) -> list[AlertRule]:
        return [r for r in self.rules if r.state == "firing"]

    def worst(self) -> tuple[str, float] | None:
        """The worst-burning SLO over its own window, if any burns."""
        worst: tuple[str, float] | None = None
        for entry in self._status:
            burn = entry.get("burn_rate")
            if burn is None:
                continue
            if worst is None or burn > worst[1]:
                worst = (entry["name"], burn)
        return worst

    def snapshot(self) -> dict:
        """The full judgement state, for ``/debug/slo``,
        ``/debug/alerts`` and ``snapshot.json``."""
        with self._lock:
            return {
                "ticks": self.ticks,
                "last_tick": self.last_tick,
                "step_s": self.series.step,
                "coverage_s": self.series.coverage(),
                "slos": [dict(entry) for entry in self._status],
                "alerts": [rule.as_dict() for rule in self.rules],
                "firing": len([r for r in self.rules
                               if r.state == "firing"]),
            }

    # -- background loop -------------------------------------------------------

    def start_background(self, interval: float | None = None) -> None:
        """Evaluate every ``interval`` seconds (default: the sampling
        step) on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            return
        interval = interval if interval is not None else self.series.step
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.evaluate()

        self._thread = threading.Thread(
            target=loop, name="slo-evaluator", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


# -- the process-global evaluator ---------------------------------------------

_evaluator: SLOEvaluator | None = None


def get_slo_evaluator() -> SLOEvaluator | None:
    """The active evaluator, if ``repro serve`` installed one."""
    return _evaluator


def set_slo_evaluator(evaluator: SLOEvaluator | None) -> None:
    """Install (or clear, with ``None``) the global evaluator."""
    global _evaluator
    _evaluator = evaluator


# -- the canary ---------------------------------------------------------------


class CanaryProber:
    """A self-probing synthetic user on a daemon thread.

    Every ``interval`` seconds it requests the site's first root page
    through the full dynamic pipeline — URL resolution, lazy-graph
    materialisation, the site-definition query, template rendering —
    under a ``canary.probe`` span, then records ``canary.probes`` /
    ``canary.failures`` counters and the ``canary.probe_seconds``
    histogram that the canary SLOs read.  Each probe ends by ticking
    the evaluator, so alert latency is bounded by the probe interval
    even with zero organic traffic.
    """

    def __init__(self, site_server, recorder,
                 interval: float = 5.0,
                 evaluator: SLOEvaluator | None = None) -> None:
        self.site_server = site_server
        self.recorder = recorder
        self.interval = interval
        self.evaluator = evaluator
        self.probes = 0
        self.failures = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def probe(self) -> bool:
        """One end-to-end probe; returns whether it succeeded."""
        metrics = self.recorder.metrics
        roots = self.site_server.roots()
        start = time.perf_counter()
        ok = False
        detail = ""
        with self.recorder.span("canary.probe"):
            try:
                if not roots:
                    raise RuntimeError("site has no root pages")
                response = self.site_server.request(roots[0])
                ok = response.status == 200
                detail = f"status {response.status}"
            except Exception as exc:  # a broken probe is the signal
                detail = str(exc)
        seconds = time.perf_counter() - start
        self.probes += 1
        metrics.counter("canary.probes").inc()
        metrics.histogram("canary.probe_seconds").observe(seconds)
        if not ok:
            self.failures += 1
            metrics.counter("canary.failures").inc()
            self.recorder.events.emit(
                "warning", "canary.failed", detail,
                probe=self.probes)
        if self.evaluator is not None:
            self.evaluator.evaluate()
        return ok

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                self.probe()

        self._thread = threading.Thread(
            target=loop, name="canary-prober", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def as_dict(self) -> dict:
        return {
            "interval_s": self.interval,
            "probes": self.probes,
            "failures": self.failures,
            "running": self._thread is not None,
        }


# -- stock objectives and configuration ---------------------------------------


def default_slos() -> list[SLO]:
    """The out-of-the-box objectives for ``repro serve``."""
    return [
        SLO(name="server-availability", kind="availability",
            target=0.99, window_s=3600.0,
            total_metric="server.requests", bad_metric="server.errors",
            description="99% of page requests succeed over 1 h"),
        SLO(name="server-latency", kind="latency",
            target=0.99, window_s=3600.0,
            latency_metric="server.request_seconds", threshold_s=0.25,
            description="99% of page requests under 250 ms over 1 h"),
        SLO(name="canary-availability", kind="availability",
            target=0.99, window_s=3600.0,
            total_metric="canary.probes", bad_metric="canary.failures",
            description="99% of canary probes succeed over 1 h"),
        SLO(name="canary-latency", kind="latency",
            target=0.99, window_s=3600.0,
            latency_metric="canary.probe_seconds", threshold_s=1.0,
            description="99% of canary probes under 1 s over 1 h"),
    ]


@dataclass
class SLOConfig:
    """Everything ``slo.toml`` can say (defaults when absent)."""

    slos: list[SLO] = field(default_factory=default_slos)
    step_s: float = DEFAULT_WINDOW_STEP
    for_ticks: int = DEFAULT_FOR_TICKS
    clear_ticks: int = DEFAULT_CLEAR_TICKS
    canary_interval_s: float = 5.0


def _slo_from_table(table: dict) -> SLO:
    kind = table.get("kind", "availability")
    threshold_s = float(table.get("threshold_ms", 0.0)) / 1000.0
    if "threshold_s" in table:
        threshold_s = float(table["threshold_s"])
    return SLO(
        name=str(table.get("name", "")) or "unnamed",
        kind=kind,
        target=float(table.get("target", 0.99)),
        window_s=float(table.get("window_s", 3600.0)),
        total_metric=str(table.get("total", "")),
        bad_metric=str(table.get("bad", "")),
        latency_metric=str(table.get("metric", "")),
        threshold_s=threshold_s,
        description=str(table.get("description", "")))


def load_slo_config(path: str) -> SLOConfig:
    """Parse an ``slo.toml``:

    .. code-block:: toml

        step_s = 5.0

        [alerts]
        for_ticks = 2
        clear_ticks = 2

        [canary]
        interval_s = 5.0

        [[slo]]
        name = "server-latency"
        kind = "latency"
        metric = "server.request_seconds"
        threshold_ms = 250
        target = 0.99
        window_s = 3600

        [[slo]]
        name = "server-availability"
        kind = "availability"
        total = "server.requests"
        bad = "server.errors"
        target = 0.99
    """
    if tomllib is None:  # pragma: no cover - py<3.11 only
        raise RuntimeError("slo.toml requires Python 3.11+ (tomllib)")
    with open(path, "rb") as handle:
        document = tomllib.load(handle)
    config = SLOConfig()
    if "step_s" in document:
        config.step_s = float(document["step_s"])
    alerts = document.get("alerts", {})
    config.for_ticks = int(alerts.get("for_ticks", config.for_ticks))
    config.clear_ticks = int(
        alerts.get("clear_ticks", config.clear_ticks))
    canary = document.get("canary", {})
    config.canary_interval_s = float(
        canary.get("interval_s", config.canary_interval_s))
    tables = document.get("slo", [])
    if tables:
        config.slos = [_slo_from_table(t) for t in tables]
    return config


# -- offline evaluation (repro slo check) -------------------------------------


def check_document(slos: list[SLO], document: dict,
                   window_s: float = 3600.0) -> list[dict]:
    """Judge ``slos`` against an exported cumulative metrics document
    (the ``metrics`` section of an obs export, or counters/histograms
    reconstructed from a Prometheus dump).

    The whole run is treated as one window.  Returns one status dict
    per objective; ``violated`` is True when the burn rate reaches
    :data:`VIOLATION_BURN` (the objective is missed outright).
    SLOs with no data are reported but never count as violations.
    """
    series = WindowedSeries.from_document(document, window_s)
    status = []
    for slo in slos:
        ratio = slo.bad_ratio(series, window_s)
        burn = None if ratio is None else ratio / max(slo.budget, 1e-9)
        entry = slo.as_dict()
        entry.update(
            bad_ratio=ratio,
            compliance=None if ratio is None else 1.0 - ratio,
            burn_rate=burn,
            budget_remaining=None if burn is None else 1.0 - burn,
            violated=burn is not None and burn >= VIOLATION_BURN)
        status.append(entry)
    return status
