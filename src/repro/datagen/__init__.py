"""Seeded synthetic workload generators (the paper's data substitutes)."""

from repro.datagen.bibtex import generate_bibtex
from repro.datagen.news import SECTIONS, generate_news_graph, generate_news_pages
from repro.datagen.org import build_org_mediator, generate_org_sources

__all__ = [
    "SECTIONS",
    "build_org_mediator",
    "generate_bibtex",
    "generate_news_graph",
    "generate_news_pages",
    "generate_org_sources",
]
