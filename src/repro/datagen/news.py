"""Synthetic news corpus (substitute for the CNN article database).

The paper's CNN demonstration wrapped "about 300 articles" from HTML
pages: "on any day, one article may appear in various formats on
multiple pages" and "although the disposition of an article in a site is
complex [...] the structure is uniform for all articles".  The paper's
sports-only derived site needs section metadata.

:func:`generate_news_pages` emits HTML documents (exercising the HTML
wrapper end to end): one page per article carrying ``<title>``,
``<h1>``, paragraphs, section/date/byline ``<meta>`` tags, related-story
links to other wrapped pages, and an image on most articles.
:func:`generate_news_graph` is the shortcut that wraps them.
"""

from __future__ import annotations

import random

from repro.graph.model import Graph
from repro.wrappers.html_wrapper import HtmlWrapper

SECTIONS = ["world", "us", "politics", "sports", "technology",
            "health", "showbiz", "weather"]

_SUBJECTS = [
    "Summit", "Election", "Launch", "Trial", "Storm", "Merger", "Final",
    "Strike", "Discovery", "Budget", "Tournament", "Outage",
]

_VERBS = [
    "shakes", "reaches", "delays", "dominates", "surprises", "divides",
    "transforms", "tests", "inspires", "halts",
]

_OBJECTS = [
    "the region", "investors", "the league", "voters", "researchers",
    "the industry", "officials", "fans", "markets", "negotiators",
]

_REPORTERS = [
    "A. Chen", "B. Okafor", "C. Ruiz", "D. Novak", "E. Haddad",
    "F. Larsen", "G. Mori", "H. Patel",
]


def generate_news_pages(articles: int = 300, seed: int = 11,
                        days: int = 7) -> dict[str, str]:
    """HTML pages keyed by URL, one per synthetic article."""
    rng = random.Random(seed)
    urls = [f"articles/a{i + 1}.html" for i in range(articles)]
    pages: dict[str, str] = {}
    for index, url in enumerate(urls):
        section = rng.choice(SECTIONS)
        day = rng.randint(1, days)
        title = (f"{rng.choice(_SUBJECTS)} {rng.choice(_VERBS)} "
                 f"{rng.choice(_OBJECTS)}")
        byline = rng.choice(_REPORTERS)
        related = rng.sample(urls, k=min(3, articles - 1))
        related = [r for r in related if r != url][:2]
        body_paragraphs = "\n".join(
            f"<p>Paragraph {p + 1} of article {index + 1} covering "
            f"{section} news on day {day}.</p>"
            for p in range(rng.randint(2, 5)))
        image = (f'<img src="images/a{index + 1}.jpg" alt="photo">'
                 if rng.random() < 0.8 else "")
        links = "\n".join(f'<a href="{r}">Related story</a>'
                          for r in related)
        pages[url] = f"""<html><head>
<title>{title}</title>
<meta name="section" content="{section}">
<meta name="day" content="{day}">
<meta name="byline" content="{byline}">
</head><body>
<h1>{title}</h1>
{image}
{body_paragraphs}
{links}
</body></html>"""
    return pages


def generate_news_graph(articles: int = 300, seed: int = 11,
                        days: int = 7,
                        graph_name: str = "cnn") -> Graph:
    """The wrapped news corpus as a data graph."""
    pages = generate_news_pages(articles, seed, days)
    return HtmlWrapper(collection="Articles").wrap_pages(pages, graph_name)
