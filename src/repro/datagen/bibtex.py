"""Synthetic BibTeX bibliographies (substitute for the authors' own).

The paper's homepage sites are driven by the authors' real BibTeX files;
this generator produces statistically similar ones: a configurable
number of entries over a year range, a skewed venue mix (articles vs
inproceedings vs techreports), 1-4 authors drawn from a name pool,
1-3 categories, and the same *irregularities* the paper highlights —
``journal`` only on articles, ``booktitle`` only on conference papers,
``month`` frequently missing, occasional missing abstracts.

Everything derives from the seed, so graphs regenerate identically.
"""

from __future__ import annotations

import random

_FIRST_NAMES = [
    "Mary", "Daniela", "Alon", "Dan", "Jaewoo", "Peter", "Susan", "Serge",
    "Jennifer", "Hector", "Victor", "Laura", "Anne", "Michael", "Rakesh",
    "David", "Yannis", "Divesh", "Jeff", "Limsoon",
]

_LAST_NAMES = [
    "Fernandez", "Florescu", "Levy", "Suciu", "Kang", "Buneman",
    "Davidson", "Abiteboul", "Widom", "Garcia-Molina", "Vianu", "Haas",
    "Rajaraman", "Carey", "Agrawal", "Maier", "Papakonstantinou",
    "Srivastava", "Ullman", "Wong",
]

_JOURNALS = [
    "Transactions on Database Systems", "VLDB Journal", "SIGMOD Record",
    "Information Systems", "Theoretical Computer Science",
]

_CONFERENCES = [
    "Proc. of SIGMOD", "Proc. of VLDB", "Proc. of ICDE", "Proc. of PODS",
    "Proc. of ICDT", "Proc. of WWW",
]

_CATEGORIES = [
    "Semistructured Data", "Query Languages", "Query Optimization",
    "Data Integration", "Web Site Management", "Programming Languages",
    "Architecture Specifications", "Mediators", "Wrappers",
]

_TITLE_HEADS = [
    "Optimizing", "Querying", "Managing", "Integrating", "Specifying",
    "Transforming", "Indexing", "Warehousing", "Verifying", "Mediating",
]

_TITLE_TAILS = [
    "Semistructured Data", "Web Sites", "Regular Path Expressions",
    "Heterogeneous Sources", "Graph Databases", "Declarative Views",
    "Site Schemas", "Labeled Graphs", "Query Plans", "Data Graphs",
]

_MONTHS = ["January", "February", "March", "May", "June", "August",
           "September", "October", "November"]


def generate_bibtex(entries: int = 30, seed: int = 7,
                    year_range: tuple[int, int] = (1990, 1998)) -> str:
    """BibTeX text with ``entries`` synthetic publications."""
    rng = random.Random(seed)
    chunks = [
        '@string{sigmod = "Proc. of SIGMOD"}',
        "",
    ]
    for index in range(entries):
        chunks.append(_entry(rng, index, year_range))
        chunks.append("")
    return "\n".join(chunks)


def _person(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def _entry(rng: random.Random, index: int,
           year_range: tuple[int, int]) -> str:
    key = f"pub{index + 1}"
    year = rng.randint(*year_range)
    kind = rng.choices(["article", "inproceedings", "techreport"],
                       weights=[3, 5, 2])[0]
    authors = " and ".join(
        _person(rng) for _ in range(rng.randint(1, 4)))
    title = (f"{rng.choice(_TITLE_HEADS)} "
             f"{rng.choice(_TITLE_TAILS)} {_roman(index + 1)}")
    categories = ", ".join(
        rng.sample(_CATEGORIES, rng.randint(1, 3)))
    lines = [f"@{kind}{{{key},",
             f"  title = {{{title}}},",
             f"  author = {{{authors}}},",
             f"  year = {year},"]
    if kind == "article":
        lines.append(f"  journal = {{{rng.choice(_JOURNALS)}}},")
        lines.append(f"  volume = {{{rng.randint(10, 25)} "
                     f"({rng.randint(1, 4)})}},")
    elif kind == "inproceedings":
        lines.append(f"  booktitle = {{{rng.choice(_CONFERENCES)}}},")
    else:
        lines.append("  institution = {AT\\&T Labs},")
    if rng.random() < 0.6:
        lines.append(f"  month = {{{rng.choice(_MONTHS)}}},")
    if rng.random() < 0.85:
        lines.append(f"  abstract = {{abstracts/{key}.txt}},")
    lines.append(f"  postscript = {{papers/{key}.ps.gz}},")
    lines.append(f"  keywords = {{{categories}}}")
    lines.append("}")
    return "\n".join(lines)


def _roman(number: int) -> str:
    pairs = (("X", 10), ("IX", 9), ("V", 5), ("IV", 4), ("I", 1))
    out = []
    while number > 0:
        for symbol, value in pairs:
            if number >= value:
                out.append(symbol)
                number -= value
                break
    return "".join(out)
