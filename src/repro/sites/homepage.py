"""The paper's running example: an author's homepage site.

This module carries the paper's artifacts verbatim:

* :data:`FIG2_DDL` — the Fig 2 data-graph fragment (two publications);
* :data:`FIG3_QUERY` — the Fig 3 site-definition query;
* :func:`fig7_templates` — the Fig 7 HTML templates, transcribed into
  the concrete template syntax.

plus the scaled version used in section 5.1's "mff" homepage experiment:
:func:`build_homepage_site` wraps a (synthetic or real) BibTeX file and
a personal-data DDL file, applies the site query, and returns a
:class:`~repro.site.Website` — with an ``external`` variant whose
templates "exclude patents, and any publications and projects that are
proprietary" (template-level exclusion, exactly the mechanism the paper
chose for this site).
"""

from __future__ import annotations

from repro.datagen.bibtex import generate_bibtex
from repro.ddl import parse_ddl
from repro.graph.model import Graph
from repro.site.builder import Website
from repro.struql.skolem import SkolemRegistry
from repro.templates.generator import TemplateSet
from repro.wrappers.bibtex import BibTexWrapper

#: Fig 2, verbatim (modulo the truncated strings of the paper's layout).
FIG2_DDL = """
collection Publications { abstract text postscript ps }

object pub1 in Publications {
  title "Specifying Representations of Machine Instructions"
  author "Norman Ramsey"
  author "Mary Fernandez"
  year 1997
  month "May"
  journal "Transactions on Programming Languages and Systems"
  pub-type "article"
  abstract "abstracts/toplas97.txt"
  postscript "papers/toplas97.ps.gz"
  volume "19 (3)"
  category "Architecture Specifications"
  category "Programming Languages"
}

object pub2 in Publications {
  title "Optimizing Regular Path Expressions Using Graph Schemas"
  author "Mary Fernandez"
  author "Dan Suciu"
  year 1998
  booktitle "Proc. of ICDE"
  pub-type "inproceedings"
  abstract "abstracts/icde98.txt"
  postscript "papers/icde98.ps.gz"
  category "Semistructured Data"
  category "Programming Languages"
}
"""

#: Fig 3, verbatim structure: root + abstracts pages, per-publication
#: presentations and abstract pages, per-year and per-category pages.
FIG3_QUERY = """
INPUT BIBTEX
// Create Root & Abstracts page and link them
CREATE RootPage(), AbstractsPage()
LINK RootPage()->"AbstractsPage"->AbstractsPage()
// Create a presentation for every publication x
WHERE Publications(x), x->l->v                                // Q1
CREATE PaperPresentation(x), AbstractPage(x)
LINK AbstractPage(x) -> l -> v,
     PaperPresentation(x) -> l -> v,
     PaperPresentation(x)->"Abstract"->AbstractPage(x),
     AbstractsPage() ->"Abstract" -> AbstractPage(x)
{ // Create a page for every year
  WHERE l = "year"                                            // Q2
  CREATE YearPage(v)
  LINK YearPage(v) -> "Year" -> v,
       YearPage(v)->"Paper"->PaperPresentation(x),
       // Link root page to each year page
       RootPage() -> "YearPage" -> YearPage(v)
}
{ // Create a page for every category
  WHERE l = "category"                                        // Q3
  CREATE CategoryPage(v)
  LINK CategoryPage(v) -> "Name" -> v,
       CategoryPage(v)->"Paper"->PaperPresentation(x),
       // Link root page to each category page
       RootPage() -> "CategoryPage" -> CategoryPage(v)
}
OUTPUT HomePage
"""


def fig2_data() -> Graph:
    """The Fig 2 data graph."""
    return parse_ddl(FIG2_DDL, "BIBTEX")


def fig7_templates(external: bool = False) -> TemplateSet:
    """The Fig 7 templates (internal form), or the external variant.

    The external variant omits the volume/month details and, on paper
    presentations, the direct PostScript download — the kind of
    information the paper's external sites reformat or exclude.
    """
    templates = TemplateSet()
    templates.add("RootPage", """<HTML><HEAD><TITLE>Publications</TITLE></HEAD>
<BODY>
<H1>Publications</H1>
<H2>Publications by Year</H2>
<SFMTLIST @YearPage ORDER=ascend KEY=Year WRAP=UL>
<H2>Publications by Topic</H2>
<SFMTLIST @CategoryPage ORDER=ascend KEY=Name WRAP=UL>
<P><SFMT @AbstractsPage TAG="Paper Abstracts">
</BODY></HTML>""")
    templates.add("AbstractsPage", """<HTML><HEAD><TITLE>Paper Abstracts</TITLE></HEAD>
<BODY>
<H1>Paper Abstracts</H1>
<SFMTLIST @Abstract FORMAT=EMBED DELIM="<HR>">
</BODY></HTML>""")
    templates.add("YearPage", """<HTML><HEAD><TITLE>Publications by year</TITLE></HEAD>
<BODY>
<H1>Publications from <SFMT @Year></H1>
<SFMTLIST @Paper FORMAT=EMBED DELIM="<P>">
</BODY></HTML>""")
    templates.add("CategoryPage", """<HTML><HEAD><TITLE>Publications by topic</TITLE></HEAD>
<BODY>
<H1>Publications on <SFMT @Name></H1>
<SFMTLIST @Paper FORMAT=EMBED DELIM="<P>">
</BODY></HTML>""")
    if external:
        presentation = """<SFMT @title>.
By <SFOR a @author DELIM=", "><SFMT @a></SFOR>.
<SIF @journal><I><SFMT @journal></I></SIF><SIF @booktitle>In <I><SFMT @booktitle></I></SIF>, <SFMT @year>.
<SFMT @Abstract TAG="Abstract">"""
    else:
        presentation = """<SFMT @postscript TAG=@title>.
By <SFOR a @author DELIM=", "><SFMT @a></SFOR>.
<SIF @journal><I><SFMT @journal></I><SIF @volume>, <SFMT @volume></SIF></SIF><SIF @booktitle>In <I><SFMT @booktitle></I></SIF>, <SIF @month><SFMT @month> </SIF><SFMT @year>.
<SFMT @Abstract TAG="Abstract">"""
    templates.add("PaperPresentation", presentation, as_page=False)
    templates.add("AbstractPage", """<HTML><HEAD><TITLE>Abstract</TITLE></HEAD>
<BODY>
<H3><SFMT @title></H3>
<P><SFMT @abstract>
<P><SFMT @postscript TAG="Full paper (PostScript)">
</BODY></HTML>""")
    return templates


def build_homepage_site(data: Graph | None = None,
                        external: bool = False,
                        entries: int = 30, seed: int = 7) -> Website:
    """The complete homepage site over real or synthetic data.

    With no ``data``, a synthetic BibTeX bibliography of ``entries``
    publications is generated and wrapped — the "mff" homepage workload
    of section 5.1 at configurable scale.
    """
    if data is None:
        data = BibTexWrapper().wrap(generate_bibtex(entries, seed=seed),
                                    "BIBTEX")
        data.name = "BIBTEX"
    return Website(data, FIG3_QUERY, fig7_templates(external=external))


# ---------------------------------------------------------------------------
# The full "mff" homepage of section 5.1: two data sources (BibTeX +
# a personal-data STRUDEL file), internal and external versions.

#: The personal-data source: "address, phone, projects, professional
#: activities, patents", with proprietary markers for the external split.
PERSONAL_DDL = """
object me in People {
  name "Mary Fernandez"
  title "Researcher"
  email "mff@research.example.com"
  phone "973-360-8677"
  address { street "180 Park Ave" city "Florham Park" zip "07932" }
  homepage "http://www.research.example.com/~mff/"
  activity "PC member, SIGMOD 1999"
  activity "Editor, SIGMOD Record"
  activity "Workshop co-chair, WebDB"
  patent &pat1
  patent &pat2
  project &strudel
  project &secretdb
}

object pat1 in Patents {
  title "Method for declarative specification of Web sites"
  number "US-5999999"
  year 1998
}
object pat2 in Patents {
  title "Apparatus for semistructured query optimization"
  number "US-6000001"
  year 1998
  proprietary true
}

object strudel in Projects {
  name "STRUDEL"
  synopsis "A Web-site management system."
}
object secretdb in Projects {
  name "SECRETDB"
  synopsis "An unannounced database engine."
  proprietary true
}
"""

#: The mff site-definition query: one query over both sources.
MFF_QUERY = """
INPUT MFF
// Entry points: home, publications, projects, activities, patents.
CREATE HomeRoot(), PubsPage(), AbstractsPage(), ProjectsPage(),
       ActivitiesPage(), PatentsPage()
LINK HomeRoot() -> "Publications" -> PubsPage(),
     HomeRoot() -> "Projects" -> ProjectsPage(),
     HomeRoot() -> "Activities" -> ActivitiesPage(),
     HomeRoot() -> "Patents" -> PatentsPage(),
     PubsPage() -> "Abstracts" -> AbstractsPage()
// Contact block from the personal-data source.
{ WHERE People(p), p -> l -> v                                  // P1
  LINK HomeRoot() -> l -> v
  { WHERE l = "address", v -> m -> w                            // P0
    CREATE AddressPres(v)
    LINK AddressPres(v) -> m -> w,
         HomeRoot() -> "AddressBlock" -> AddressPres(v) }
  { WHERE l = "activity"                                        // P2
    LINK ActivitiesPage() -> "Item" -> v }
  { WHERE l = "patent", v -> m -> w                             // P3
    CREATE PatentPres(v)
    LINK PatentPres(v) -> m -> w,
         PatentsPage() -> "Patent" -> PatentPres(v) }
  { WHERE l = "project", v -> m -> w                            // P4
    CREATE ProjectPres(v)
    LINK ProjectPres(v) -> m -> w,
         ProjectsPage() -> "Project" -> ProjectPres(v) }
}
// Publications: the Fig 3 structure under PubsPage.
{ WHERE Publications(x), x -> l -> v                            // Q1
  CREATE PaperPresentation(x), AbstractPage(x)
  LINK AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v,
       PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
       AbstractsPage() -> "Abstract" -> AbstractPage(x)
  { WHERE l = "year"                                            // Q2
    CREATE YearPage(v)
    LINK YearPage(v) -> "Year" -> v,
         YearPage(v) -> "Paper" -> PaperPresentation(x),
         PubsPage() -> "YearPage" -> YearPage(v) }
  { WHERE l = "category"                                        // Q3
    CREATE CategoryPage(v)
    LINK CategoryPage(v) -> "Name" -> v,
         CategoryPage(v) -> "Paper" -> PaperPresentation(x),
         PubsPage() -> "CategoryPage" -> CategoryPage(v) }
}
OUTPUT MffSite
"""

#: Template names that differ in the external version (exclude patents
#: and proprietary projects, as the paper describes for the mff site).
MFF_EXTERNAL_OVERRIDES = ("HomeRoot", "ProjectsPage", "PatentsPage",
                          "ProjectPres")


def mff_templates(external: bool = False) -> TemplateSet:
    """The thirteen mff-homepage templates (internal or external)."""
    templates = TemplateSet()

    if external:
        templates.add("HomeRoot", """<HTML><HEAD><TITLE><SFMT @name></TITLE></HEAD>
<BODY>
<H1><SFMT @name></H1>
<P><SFMT @title></P>
<P>Email: <SFMT @email></P>
<UL>
<LI><SFMT @Publications TAG="Publications">
<LI><SFMT @Projects TAG="Projects">
<LI><SFMT @Activities TAG="Professional activities">
</UL>
</BODY></HTML>""")
    else:
        templates.add("HomeRoot", """<HTML><HEAD><TITLE><SFMT @name></TITLE></HEAD>
<BODY>
<H1><SFMT @name></H1>
<P><SFMT @title></P>
<P>Email: <SFMT @email> — Phone: <SFMT @phone></P>
<SFMT @AddressBlock FORMAT=EMBED>
<UL>
<LI><SFMT @Publications TAG="Publications">
<LI><SFMT @Projects TAG="Projects">
<LI><SFMT @Activities TAG="Professional activities">
<LI><SFMT @Patents TAG="Patents">
</UL>
</BODY></HTML>""")

    templates.add("AddressPres", """<P><SFMT @street>, <SFMT @city> <SFMT @zip></P>""",
                  as_page=False)

    templates.add("PubsPage", """<HTML><HEAD><TITLE>Publications</TITLE></HEAD>
<BODY>
<H1>Publications</H1>
<H2>By year</H2>
<SFMTLIST @YearPage ORDER=ascend KEY=Year WRAP=UL>
<H2>By topic</H2>
<SFMTLIST @CategoryPage ORDER=ascend KEY=Name WRAP=UL>
<P><SFMT @Abstracts TAG="All abstracts">
</BODY></HTML>""")

    templates.add("AbstractsPage", """<HTML><HEAD><TITLE>Abstracts</TITLE></HEAD>
<BODY>
<H1>Paper Abstracts</H1>
<SFMTLIST @Abstract FORMAT=EMBED DELIM="<HR>">
</BODY></HTML>""")

    templates.add("YearPage", """<HTML><HEAD><TITLE>Publications by year</TITLE></HEAD>
<BODY>
<H1>Publications from <SFMT @Year></H1>
<SFMTLIST @Paper FORMAT=EMBED DELIM="<P>">
</BODY></HTML>""")

    templates.add("CategoryPage", """<HTML><HEAD><TITLE>Publications by topic</TITLE></HEAD>
<BODY>
<H1>Publications on <SFMT @Name></H1>
<SFMTLIST @Paper FORMAT=EMBED DELIM="<P>">
</BODY></HTML>""")

    templates.add("PaperPresentation", """<SFMT @postscript TAG=@title>.
By <SFOR a @author DELIM=", "><SFMT @a></SFOR>.
<SIF @journal><I><SFMT @journal></I></SIF><SIF @booktitle>In <I><SFMT @booktitle></I></SIF>, <SFMT @year>.
<SFMT @Abstract TAG="Abstract">""", as_page=False)

    templates.add("AbstractPage", """<HTML><HEAD><TITLE>Abstract</TITLE></HEAD>
<BODY>
<H3><SFMT @title></H3>
<P><SFMT @abstract>
<P><SFMT @postscript TAG="Full paper (PostScript)">
</BODY></HTML>""")

    templates.add("ActivitiesPage", """<HTML><HEAD><TITLE>Activities</TITLE></HEAD>
<BODY>
<H1>Professional activities</H1>
<SFMTLIST @Item ORDER=ascend WRAP=UL>
</BODY></HTML>""")

    if external:
        templates.add("ProjectsPage", """<HTML><HEAD><TITLE>Projects</TITLE></HEAD>
<BODY>
<H1>Projects</H1>
<SFMTLIST @Project FORMAT=EMBED DELIM="<HR>">
<P><I>Some projects are not publicly documented.</I></P>
</BODY></HTML>""")
        templates.add("ProjectPres", """<SIF NOT @proprietary><H3><SFMT @name></H3>
<P><SFMT @synopsis></P></SIF>""", as_page=False)
        templates.add("PatentsPage", """<HTML><HEAD><TITLE>Patents</TITLE></HEAD>
<BODY>
<H1>Patents</H1>
<P>Patent information is available on the internal site only.</P>
</BODY></HTML>""")
    else:
        templates.add("ProjectsPage", """<HTML><HEAD><TITLE>Projects</TITLE></HEAD>
<BODY>
<H1>Projects</H1>
<SFMTLIST @Project FORMAT=EMBED DELIM="<HR>">
</BODY></HTML>""")
        templates.add("ProjectPres", """<H3><SFMT @name><SIF @proprietary> (proprietary)</SIF></H3>
<P><SFMT @synopsis></P>""", as_page=False)
        templates.add("PatentsPage", """<HTML><HEAD><TITLE>Patents</TITLE></HEAD>
<BODY>
<H1>Patents</H1>
<SFMTLIST @Patent FORMAT=EMBED DELIM="<HR>">
</BODY></HTML>""")

    templates.add("PatentPres", """<H3><SFMT @title></H3>
<P><SFMT @number>, <SFMT @year></P>""", as_page=False)

    return templates


def mff_data(entries: int = 30, seed: int = 7) -> Graph:
    """The mff data graph: BibTeX + personal-data sources, integrated."""
    data = BibTexWrapper().wrap(generate_bibtex(entries, seed=seed), "MFF")
    personal = parse_ddl(PERSONAL_DDL, "personal")
    data.import_graph(personal)
    data.name = "MFF"
    return data


def build_mff_site(data: Graph | None = None, external: bool = False,
                   entries: int = 30, seed: int = 7) -> Website:
    """The full mff homepage (internal or external version).

    Both versions share the data graph, the site graph and most
    templates; the external version swaps the four templates named in
    :data:`MFF_EXTERNAL_OVERRIDES`, which "exclude patents, and any
    publications and projects that are proprietary".
    """
    if data is None:
        data = mff_data(entries, seed)
    return Website(data, MFF_QUERY, mff_templates(external=external))
