"""The INRIA-Rodin bilingual site (paper section 5.1).

    We are also working on a STRUDEL-generated version of the
    INRIA-Rodin Web site [...].  Its main feature is that the site has
    two views: one English and one French.  The two sites are
    cross-linked so that each English page is linked to the equivalent
    page in the French site and vice versa.  One StruQL query defines
    both views and creates the links between them.

The data is a small bilingual project/member database in the structured
record format (each record carries ``name_en``/``name_fr`` and
``blurb_en``/``blurb_fr`` attributes); :data:`RODIN_QUERY` creates an
``EPage``/``FPage`` pair per object and the ``French``/``English``
cross links in one query, exactly the paper's construction.
"""

from __future__ import annotations

import random

from repro.graph.model import Graph
from repro.site.builder import Website
from repro.templates.generator import TemplateSet
from repro.wrappers.structured_file import StructuredFileWrapper

_TOPICS_EN = ["query optimization", "semistructured data", "mediators",
              "views", "data integration", "web sites"]
_TOPICS_FR = ["l'optimisation de requêtes", "les données semi-structurées",
              "les médiateurs", "les vues", "l'intégration de données",
              "les sites web"]

_MEMBERS = ["daniela", "francoise", "ioana", "jerome", "sophie",
            "vincent", "benoit", "claire"]


def generate_rodin_records(projects: int = 8, seed: int = 31) -> str:
    """The bilingual record file feeding the Rodin site."""
    rng = random.Random(seed)
    records = []
    for index in range(projects):
        topic = rng.randrange(len(_TOPICS_EN))
        name = f"rodin{index + 1}"
        lines = [
            f"id: {name}",
            f"name_en: Project {name.upper()}",
            f"name_fr: Projet {name.upper()}",
            f"blurb_en: Research on {_TOPICS_EN[topic]}.",
            f"blurb_fr: Recherche sur {_TOPICS_FR[topic]}.",
        ]
        for member in rng.sample(_MEMBERS, rng.randint(1, 4)):
            lines.append(f"member: {member}")
        records.append("\n".join(lines))
    return "\n\n".join(records)


#: One query, two views, cross-linked ("One StruQL query defines both
#: views and creates the links between them").
RODIN_QUERY = """
INPUT RODIN
CREATE ERoot(), FRoot()
LINK ERoot() -> "French" -> FRoot(),
     FRoot() -> "English" -> ERoot()
{ WHERE Records(r)                                              // Q1
  CREATE EPage(r), FPage(r)
  LINK ERoot() -> "Project" -> EPage(r),
       FRoot() -> "Projet" -> FPage(r),
       EPage(r) -> "French" -> FPage(r),
       FPage(r) -> "English" -> EPage(r)
  { WHERE r -> "name_en" -> n                                   // Q2
    LINK EPage(r) -> "name" -> n }
  { WHERE r -> "name_fr" -> n                                   // Q3
    LINK FPage(r) -> "name" -> n }
  { WHERE r -> "blurb_en" -> b                                  // Q4
    LINK EPage(r) -> "blurb" -> b }
  { WHERE r -> "blurb_fr" -> b                                  // Q5
    LINK FPage(r) -> "blurb" -> b }
  { WHERE r -> "member" -> m                                    // Q6
    LINK EPage(r) -> "member" -> m,
         FPage(r) -> "membre" -> m }
}
OUTPUT RodinSite
"""


def rodin_templates() -> TemplateSet:
    """Templates for both language views."""
    templates = TemplateSet()
    templates.add("ERoot", """<HTML><HEAD><TITLE>Rodin Project</TITLE></HEAD>
<BODY>
<H1>The Rodin Project</H1>
<P><SFMT @French TAG="Version française"></P>
<SFMTLIST @Project ORDER=ascend KEY=name WRAP=UL>
</BODY></HTML>""")
    templates.add("FRoot", """<HTML><HEAD><TITLE>Projet Rodin</TITLE></HEAD>
<BODY>
<H1>Le projet Rodin</H1>
<P><SFMT @English TAG="English version"></P>
<SFMTLIST @Projet ORDER=ascend KEY=name WRAP=UL>
</BODY></HTML>""")
    templates.add("EPage", """<HTML><HEAD><TITLE><SFMT @name></TITLE></HEAD>
<BODY>
<H1><SFMT @name></H1>
<P><SFMT @blurb></P>
<H2>Members</H2>
<SFMTLIST @member ORDER=ascend WRAP=UL>
<P><SFMT @French TAG="Version française"></P>
</BODY></HTML>""")
    templates.add("FPage", """<HTML><HEAD><TITLE><SFMT @name></TITLE></HEAD>
<BODY>
<H1><SFMT @name></H1>
<P><SFMT @blurb></P>
<H2>Membres</H2>
<SFMTLIST @membre ORDER=ascend WRAP=UL>
<P><SFMT @English TAG="English version"></P>
</BODY></HTML>""")
    return templates


def build_rodin_site(data: Graph | None = None, projects: int = 8,
                     seed: int = 31) -> Website:
    """The bilingual Rodin site."""
    if data is None:
        data = StructuredFileWrapper(collection="Records").wrap(
            generate_rodin_records(projects, seed), "RODIN")
    data.name = "RODIN"
    return Website(data, RODIN_QUERY, rodin_templates())
