"""Reference site definitions used by examples, tests and benchmarks.

One module per site the paper reports on in section 5.1:

* :mod:`repro.sites.homepage` — the running example (Fig 2/3/7) and the
  scaled "mff" homepage with internal/external template variants;
* :mod:`repro.sites.cnn` — the CNN demonstration and its sports-only
  derived site;
* :mod:`repro.sites.org` — the AT&T Labs internal/external pair over
  five mediated sources;
* :mod:`repro.sites.rodin` — the bilingual INRIA-Rodin site.

:mod:`repro.sites.monitor` is the odd one out: not from the paper, it
dogfoods the pipeline on STRUDEL's own telemetry (the ``repro monitor``
dashboard).
"""

from repro.sites.cnn import (
    CNN_QUERY,
    SPORTS_QUERY,
    build_cnn_site,
    cnn_templates,
)
from repro.sites.homepage import (
    FIG2_DDL,
    FIG3_QUERY,
    MFF_EXTERNAL_OVERRIDES,
    MFF_QUERY,
    PERSONAL_DDL,
    build_homepage_site,
    build_mff_site,
    fig2_data,
    fig7_templates,
    mff_data,
    mff_templates,
)
from repro.sites.monitor import (
    MONITOR_QUERY,
    build_monitor_site,
    monitor_templates,
    telemetry_graph,
)
from repro.sites.org import (
    EXTERNAL_OVERRIDES,
    ORG_EXTERNAL_QUERY,
    ORG_QUERY,
    build_org_site,
    org_templates,
)
from repro.sites.rodin import (
    RODIN_QUERY,
    build_rodin_site,
    generate_rodin_records,
    rodin_templates,
)

__all__ = [
    "CNN_QUERY",
    "EXTERNAL_OVERRIDES",
    "FIG2_DDL",
    "FIG3_QUERY",
    "MFF_EXTERNAL_OVERRIDES",
    "MFF_QUERY",
    "MONITOR_QUERY",
    "PERSONAL_DDL",
    "ORG_EXTERNAL_QUERY",
    "ORG_QUERY",
    "RODIN_QUERY",
    "SPORTS_QUERY",
    "build_cnn_site",
    "build_homepage_site",
    "build_mff_site",
    "build_monitor_site",
    "build_org_site",
    "build_rodin_site",
    "cnn_templates",
    "fig2_data",
    "fig7_templates",
    "generate_rodin_records",
    "mff_data",
    "mff_templates",
    "monitor_templates",
    "org_templates",
    "telemetry_graph",
    "rodin_templates",
]
