"""The CNN demonstration site (paper section 5.1).

    Our first example was a demonstration version of the CNN Web site.
    [...] we mapped their HTML pages into a data graph containing about
    300 articles.  Our version of the CNN site is defined by a 44-line
    query and nine templates.  To demonstrate STRUDEL's ability to
    generate multiple sites from one database, we also generated a
    "sports only" site that has the same structure as the general site,
    but contains articles on sports subjects.  The sports-only query is
    derived from the original query and only differs in two extra
    predicates in one where clause.  The same HTML templates are used in
    both sites.

The data graph comes from :func:`repro.datagen.generate_news_graph`
(synthetic articles wrapped from HTML).  :data:`CNN_QUERY` builds a
front page, per-section pages, per-day pages, per-article pages and
summary presentations with related-story cross links.
:data:`SPORTS_QUERY` is derived mechanically: the same text with two
extra predicates (``a -> "meta-section" -> sec`` and
``sec = "sports"``) in the main where clause.
"""

from __future__ import annotations

from repro.datagen.news import generate_news_graph
from repro.graph.model import Graph
from repro.site.builder import Website
from repro.templates.generator import TemplateSet

CNN_QUERY = """
INPUT CNN
// Front page and the section index
CREATE FrontPage()
// One page and one summary presentation per article
{ WHERE Articles(a), a -> l -> v                                // Q1
  CREATE ArticlePage(a), Summary(a)
  LINK ArticlePage(a) -> l -> v
  { // Summaries carry only headline material
    WHERE l = "title"                                           // Q2
    LINK Summary(a) -> "title" -> v,
         Summary(a) -> "Full" -> ArticlePage(a)
  }
  { WHERE l = "meta-byline"                                     // Q3
    LINK Summary(a) -> "byline" -> v
  }
  { // One page per section, linked from the front page
    WHERE l = "meta-section"                                    // Q4
    CREATE SectionPage(v)
    LINK SectionPage(v) -> "Name" -> v,
         SectionPage(v) -> "Story" -> Summary(a),
         FrontPage() -> "Section" -> SectionPage(v)
  }
  { // One page per day, a simple archive
    WHERE l = "meta-day"                                        // Q5
    CREATE DayPage(v)
    LINK DayPage(v) -> "Day" -> v,
         DayPage(v) -> "Story" -> Summary(a),
         FrontPage() -> "Archive" -> DayPage(v)
  }
}
// Cross links between related articles
{ WHERE Articles(a), a -> "link" -> b, Articles(b)              // Q6
  LINK ArticlePage(a) -> "Related" -> Summary(b)
}
OUTPUT CNNSite
"""

#: Derived query: identical except for two extra predicates in Q1
#: restricting to the sports section (the paper's sports-only site).
SPORTS_QUERY = CNN_QUERY.replace(
    'WHERE Articles(a), a -> l -> v                                // Q1',
    'WHERE Articles(a), a -> l -> v, '
    'a -> "meta-section" -> sec, sec = "sports"                    // Q1',
).replace(
    'WHERE Articles(a), a -> "link" -> b, Articles(b)              // Q6',
    'WHERE Articles(a), a -> "link" -> b, Articles(b), '
    'a -> "meta-section" -> sa, sa = "sports", '
    'b -> "meta-section" -> sb, sb = "sports"                      // Q6',
).replace("OUTPUT CNNSite", "OUTPUT SportsSite")


def cnn_templates() -> TemplateSet:
    """The shared templates (used verbatim by both site versions)."""
    templates = TemplateSet()
    templates.add("FrontPage", """<HTML><HEAD><TITLE>News</TITLE></HEAD>
<BODY>
<H1>Today's News</H1>
<H2>Sections</H2>
<SFMTLIST @Section ORDER=ascend KEY=Name WRAP=UL>
<H2>Archive</H2>
<SFMTLIST @Archive ORDER=ascend KEY=Day WRAP=OL>
</BODY></HTML>""")
    templates.add("SectionPage", """<HTML><HEAD><TITLE>Section</TITLE></HEAD>
<BODY>
<H1>Section: <SFMT @Name></H1>
<SFMTLIST @Story FORMAT=EMBED DELIM="<HR>">
</BODY></HTML>""")
    templates.add("DayPage", """<HTML><HEAD><TITLE>Archive</TITLE></HEAD>
<BODY>
<H1>Stories from day <SFMT @Day></H1>
<SFMTLIST @Story FORMAT=EMBED DELIM="<HR>">
</BODY></HTML>""")
    templates.add("Summary", """<P><B><SFMT @title></B>
<SIF @byline> — <SFMT @byline></SIF>
<SFMT @Full TAG="full story"></P>""", as_page=False)
    templates.add("ArticlePage", """<HTML><HEAD><TITLE><SFMT @title></TITLE></HEAD>
<BODY>
<H1><SFMT @title></H1>
<SIF @meta-byline><P>By <SFMT @meta-byline></P></SIF>
<SIF @image><SFMT @image></SIF>
<P><SFMT @text></P>
<SIF @Related><H3>Related stories</H3>
<SFMTLIST @Related FORMAT=EMBED DELIM="<BR>"></SIF>
</BODY></HTML>""")
    return templates


def build_cnn_site(data: Graph | None = None, sports_only: bool = False,
                   articles: int = 300, seed: int = 11) -> Website:
    """The general or sports-only news site over the synthetic corpus."""
    if data is None:
        data = generate_news_graph(articles, seed=seed, graph_name="CNN")
    data.name = "CNN"
    query = SPORTS_QUERY if sports_only else CNN_QUERY
    return Website(data, query, cnn_templates())
