"""The monitoring dashboard: STRUDEL dogfooding its own telemetry.

The paper's thesis is that *any* data graph can be published as a
browsable site through a StruQL site-definition query plus HTML
templates.  This module applies that thesis to STRUDEL's own
observability data: :func:`telemetry_graph` converts a trace recorder
(spans, metrics, events) and an optional server request log into an
ordinary STRUDEL data graph, :data:`MONITOR_QUERY` restructures it into
a site graph, and :func:`monitor_templates` renders the result — an
overview page linking to per-stage hotspot pages, span-tree trace
drilldowns, metrics tables, a slowest-requests page and the event log.
No HTML is hand-written per run: the dashboard is a generated STRUDEL
site like any other, exposed as ``repro monitor <command> --out DIR``.
"""

from __future__ import annotations

import time

from repro.graph.model import Graph, Oid
from repro.graph.values import Atom
from repro.obs.lineage import freshness_report, get_lineage
from repro.obs.queries import get_query_registry
from repro.obs.trace import (
    NullRecorder,
    Span,
    TraceRecorder,
    aggregate_profile,
)
from repro.site.builder import Website
from repro.templates.generator import TemplateSet

#: Cap on span nodes converted into the telemetry graph — a long crawl
#: records far more spans than a dashboard can usefully show.
MAX_SPAN_NODES = 4000

#: Cap on query-registry fingerprints shown on the Queries page.
MAX_QUERY_NODES = 50

#: Collections the telemetry graph always declares (so the query's
#: where clauses are well-formed even over an idle recorder).
TELEMETRY_COLLECTIONS = (
    "Spans", "Traces", "Stages", "Counters", "Gauges", "Histograms",
    "Events", "Requests", "Queries", "Sources", "Slos", "Alerts",
    "Summary",
)


def _ms(seconds: float) -> Atom:
    return Atom.float(round(seconds * 1000, 3))


def _span_nodes(graph: Graph, roots: list[Span], budget: int) -> int:
    """Convert span trees into graph nodes; returns how many made it."""
    made = 0
    fallback_ids = iter(range(-1, -(budget + 2), -1))

    def convert(span: Span) -> Oid | None:
        nonlocal made
        if made >= budget:
            return None
        made += 1
        ident = span.span_id or next(fallback_ids)
        oid = graph.add_node(Oid(f"span-{ident}"))
        graph.add_to_collection("Spans", oid)
        graph.add_edge(oid, "name", Atom.string(span.name))
        graph.add_edge(oid, "ms", _ms(span.seconds))
        child_seconds = sum(c.seconds for c in span.children)
        graph.add_edge(oid, "self_ms",
                       _ms(max(span.seconds - child_seconds, 0.0)))
        if span.trace_id:
            graph.add_edge(oid, "trace", Atom.string(span.trace_id))
        if span.attributes:
            detail = ", ".join(f"{k}={v}"
                               for k, v in span.attributes.items())
            graph.add_edge(oid, "attrs", Atom.string(detail))
        for child in span.children:
            child_oid = convert(child)
            if child_oid is not None:
                graph.add_edge(oid, "child", child_oid)
        return oid

    for root in roots:
        root_oid = convert(root)
        if root_oid is not None:
            graph.add_to_collection("Traces", root_oid)
    return made


def _metric_nodes(graph: Graph, metrics: dict) -> None:
    for name, value in metrics.get("counters", {}).items():
        oid = graph.add_node(Oid(f"counter-{name}"))
        graph.add_to_collection("Counters", oid)
        graph.add_edge(oid, "name", Atom.string(name))
        graph.add_edge(oid, "value", Atom.of(value))
    for name, value in metrics.get("gauges", {}).items():
        oid = graph.add_node(Oid(f"gauge-{name}"))
        graph.add_to_collection("Gauges", oid)
        graph.add_edge(oid, "name", Atom.string(name))
        graph.add_edge(oid, "value", Atom.of(value))
    for name, summary in metrics.get("histograms", {}).items():
        oid = graph.add_node(Oid(f"hist-{name}"))
        graph.add_to_collection("Histograms", oid)
        graph.add_edge(oid, "name", Atom.string(name))
        graph.add_edge(oid, "count", Atom.int(summary.get("count", 0)))
        graph.add_edge(oid, "mean_ms", _ms(summary.get("mean", 0.0)))
        for quantile in ("p50", "p90", "p95", "p99"):
            graph.add_edge(oid, f"{quantile}_ms",
                           _ms(summary.get(quantile, 0.0)))
        graph.add_edge(oid, "max_ms", _ms(summary.get("max", 0.0)))


#: The telemetry-plane paths a live ``repro serve`` process exposes
#: (mirrored on the dashboard when a ``live_url`` is given).
LIVE_ENDPOINTS = ("/metrics", "/healthz", "/readyz", "/debug/traces",
                  "/debug/events", "/debug/profile", "/debug/queries",
                  "/debug/lineage", "/debug/slo", "/debug/alerts")


def telemetry_graph(recorder: TraceRecorder | NullRecorder,
                    server_log=None,
                    max_spans: int = MAX_SPAN_NODES,
                    live_url: str | None = None,
                    queries=None,
                    max_age: float | None = None,
                    slo=None) -> Graph:
    """A recorder's telemetry as an ordinary STRUDEL data graph.

    ``server_log`` is an optional :class:`~repro.site.server.ServerLog`
    (or its :meth:`~repro.site.server.ServerLog.snapshot` dict) whose
    slowest-requests table becomes the ``Requests`` collection.
    ``live_url`` is the base URL of a running ``repro serve`` process;
    when given, the summary node carries it plus the endpoint list, so
    the generated dashboard links to the live telemetry plane instead
    of being a purely post-hoc view.  ``queries`` is an optional
    :class:`~repro.obs.queries.QueryStatsRegistry` (or its
    ``snapshot()`` dict); by default the process-global query registry
    feeds the ``Queries`` collection.  Source fetch stamps (from the
    mediator's always-on fetch log, merged with the lineage index when
    recording is enabled) become the ``Sources`` collection; ``max_age``
    is the staleness threshold in seconds for the summary's
    ``stale_pages`` count.  ``slo`` is an optional
    :class:`~repro.obs.slo.SLOEvaluator` (or its ``snapshot()`` dict);
    by default the process-global evaluator feeds the ``Slos`` and
    ``Alerts`` collections behind the dashboard's Alerts page.
    """
    graph = Graph("TELEMETRY")
    for name in TELEMETRY_COLLECTIONS:
        graph.declare_collection(name)

    span_count = _span_nodes(graph, list(recorder.roots), max_spans)

    for entry in aggregate_profile(recorder):
        oid = graph.add_node(Oid(f"stage-{entry.name}"))
        graph.add_to_collection("Stages", oid)
        graph.add_edge(oid, "name", Atom.string(entry.name))
        graph.add_edge(oid, "calls", Atom.int(entry.calls))
        graph.add_edge(oid, "self_ms", _ms(entry.self_seconds))
        graph.add_edge(oid, "cum_ms", _ms(entry.cum_seconds))
        graph.add_edge(oid, "avg_ms", _ms(entry.mean_seconds))

    metrics = recorder.metrics.as_dict()
    _metric_nodes(graph, metrics)

    events = recorder.events.records()
    for event in events:
        oid = graph.add_node(Oid(f"event-{event.seq}"))
        graph.add_to_collection("Events", oid)
        graph.add_edge(oid, "seq", Atom.int(event.seq))
        graph.add_edge(oid, "level", Atom.string(event.level))
        graph.add_edge(oid, "name", Atom.string(event.name))
        if event.message:
            graph.add_edge(oid, "message", Atom.string(event.message))
        if event.span:
            graph.add_edge(oid, "span", Atom.string(event.span))
        if event.trace_id:
            graph.add_edge(oid, "trace", Atom.string(event.trace_id))
        if event.attributes:
            detail = ", ".join(f"{k}={v}"
                               for k, v in event.attributes.items())
            graph.add_edge(oid, "detail", Atom.string(detail))

    if server_log is not None:
        snapshot = server_log if isinstance(server_log, dict) \
            else server_log.snapshot()
        for rank, entry in enumerate(snapshot.get("slowest", ()), 1):
            oid = graph.add_node(Oid(f"request-{rank}"))
            graph.add_to_collection("Requests", oid)
            graph.add_edge(oid, "rank", Atom.int(rank))
            graph.add_edge(oid, "id", Atom.string(entry.get("id") or "-"))
            graph.add_edge(oid, "page",
                           Atom.string(entry.get("page") or "-"))
            graph.add_edge(oid, "status",
                           Atom.int(entry.get("status") or 0))
            graph.add_edge(oid, "ms", _ms(entry.get("seconds", 0.0)))

    if queries is None:
        queries = get_query_registry()
    query_snapshot = queries if isinstance(queries, dict) \
        else queries.snapshot(limit=MAX_QUERY_NODES)
    query_entries = query_snapshot.get("queries", ())[:MAX_QUERY_NODES]
    for rank, entry in enumerate(query_entries, 1):
        oid = graph.add_node(Oid(f"query-{entry.get('fingerprint')}"))
        graph.add_to_collection("Queries", oid)
        graph.add_edge(oid, "rank", Atom.int(rank))
        graph.add_edge(oid, "fingerprint",
                       Atom.string(entry.get("fingerprint") or "-"))
        graph.add_edge(oid, "text", Atom.string(entry.get("text") or "-"))
        graph.add_edge(oid, "count", Atom.int(entry.get("count", 0)))
        graph.add_edge(oid, "slow", Atom.int(entry.get("slow", 0)))
        graph.add_edge(oid, "misestimates",
                       Atom.int(entry.get("misestimates", 0)))
        graph.add_edge(oid, "rows", Atom.int(entry.get("rows_total", 0)))
        graph.add_edge(oid, "p50_ms", _ms(entry.get("p50_s", 0.0)))
        graph.add_edge(oid, "p95_ms", _ms(entry.get("p95_s", 0.0)))
        graph.add_edge(oid, "optimizer",
                       Atom.string(entry.get("last_optimizer") or "-"))

    from repro.mediator.sources import recent_fetches
    stamps = {s["source"]: dict(s) for s in recent_fetches()}
    lineage = get_lineage()
    if lineage.enabled:
        for record in lineage.sources():
            stamps.setdefault(record.source, record.to_dict())
    now = time.time()
    for name in sorted(stamps):
        stamp = stamps[name]
        oid = graph.add_node(Oid(f"source-{name}"))
        graph.add_to_collection("Sources", oid)
        graph.add_edge(oid, "name", Atom.string(name))
        graph.add_edge(oid, "kind",
                       Atom.string(stamp.get("kind") or "loader"))
        fetched = float(stamp.get("fetched_at") or 0.0)
        graph.add_edge(oid, "age_s",
                       Atom.float(round(max(now - fetched, 0.0), 1)))
        graph.add_edge(oid, "hash",
                       Atom.string(stamp.get("content_hash") or "-"))
        graph.add_edge(oid, "nodes", Atom.int(int(stamp.get("nodes", 0))))
        graph.add_edge(oid, "edges", Atom.int(int(stamp.get("edges", 0))))

    from repro.obs.slo import get_slo_evaluator
    if slo is None:
        slo = get_slo_evaluator()
    slo_snapshot = (slo if isinstance(slo, dict) or slo is None
                    else slo.snapshot())
    alerts_firing = 0
    if slo_snapshot:
        for entry in slo_snapshot.get("slos", ()):
            oid = graph.add_node(Oid(f"slo-{entry['name']}"))
            graph.add_to_collection("Slos", oid)
            graph.add_edge(oid, "name", Atom.string(entry["name"]))
            graph.add_edge(oid, "objective",
                           Atom.string(entry.get("objective") or "-"))
            burn = entry.get("burn_rate")
            graph.add_edge(oid, "burn", Atom.string(
                "no data" if burn is None else f"{burn:.2f}x"))
            compliance = entry.get("compliance")
            graph.add_edge(oid, "compliance", Atom.string(
                "-" if compliance is None
                else f"{compliance * 100:.3f}%"))
            budget = entry.get("budget_remaining")
            graph.add_edge(oid, "budget", Atom.string(
                "-" if budget is None else f"{budget * 100:.1f}%"))
            graph.add_edge(oid, "status", Atom.string(
                "VIOLATED" if entry.get("violated") else "ok"))
        for rank, alert in enumerate(slo_snapshot.get("alerts", ()), 1):
            oid = graph.add_node(Oid(f"alert-{alert['name']}"))
            graph.add_to_collection("Alerts", oid)
            graph.add_edge(oid, "rank", Atom.int(rank))
            graph.add_edge(oid, "name", Atom.string(alert["name"]))
            state = alert.get("state") or "ok"
            graph.add_edge(oid, "state", Atom.string(state))
            graph.add_edge(oid, "severity",
                           Atom.string(alert.get("severity") or "-"))
            graph.add_edge(oid, "windows", Atom.string(
                f"{int(alert.get('short_window_s', 0))}s / "
                f"{int(alert.get('long_window_s', 0))}s"))
            graph.add_edge(oid, "factor",
                           Atom.of(alert.get("factor", 0.0)))
            short_burn = alert.get("short_burn")
            long_burn = alert.get("long_burn")
            graph.add_edge(oid, "burns", Atom.string(
                ("-" if short_burn is None else f"{short_burn:.2f}x")
                + " / "
                + ("-" if long_burn is None else f"{long_burn:.2f}x")))
            if state == "firing":
                alerts_firing += 1

    summary = graph.add_node(Oid("summary"))
    graph.add_to_collection("Summary", summary)
    graph.add_edge(summary, "spans", Atom.int(span_count))
    graph.add_edge(summary, "traces", Atom.int(len(recorder.roots)))
    graph.add_edge(summary, "counters",
                   Atom.int(len(metrics.get("counters", {}))))
    graph.add_edge(summary, "gauges",
                   Atom.int(len(metrics.get("gauges", {}))))
    graph.add_edge(summary, "histograms",
                   Atom.int(len(metrics.get("histograms", {}))))
    graph.add_edge(summary, "events", Atom.int(len(events)))
    graph.add_edge(summary, "queries",
                   Atom.int(query_snapshot.get("fingerprints", 0)))
    graph.add_edge(summary, "sources", Atom.int(len(stamps)))
    if slo_snapshot:
        graph.add_edge(summary, "slos",
                       Atom.int(len(slo_snapshot.get("slos", ()))))
        graph.add_edge(summary, "alerts_firing",
                       Atom.int(alerts_firing))
    if lineage.enabled:
        report = freshness_report(lineage, max_age=max_age, now=now)
        graph.add_edge(summary, "stale_pages",
                       Atom.int(len(report.get("stale_pages", ()))))
    graph.add_edge(summary, "generated", Atom.string(
        time.strftime("%Y-%m-%d %H:%M:%S")))
    if live_url:
        base = live_url.rstrip("/")
        graph.add_edge(summary, "live", Atom.string(base))
        for path in LIVE_ENDPOINTS:
            graph.add_edge(summary, "endpoint",
                           Atom.string(f"{base}{path}"))
    return graph


#: The site-definition query: telemetry graph in, dashboard site out.
#: ``SpanCard`` and ``SpanTree`` are two Skolem views of the *same*
#: span node — a flat row listed on stage pages, and a recursive
#: drilldown embedded in trace pages — so stage listings don't
#: duplicate whole subtrees.
MONITOR_QUERY = """
INPUT TELEMETRY
CREATE Dashboard(), StageIndex(), TraceIndex(), MetricsPage(),
       RequestsPage(), EventsPage(), QueriesPage(), FreshnessPage(),
       AlertsPage()
LINK Dashboard() -> "Stages" -> StageIndex(),
     Dashboard() -> "Traces" -> TraceIndex(),
     Dashboard() -> "Metrics" -> MetricsPage(),
     Dashboard() -> "Requests" -> RequestsPage(),
     Dashboard() -> "Events" -> EventsPage(),
     Dashboard() -> "Queries" -> QueriesPage(),
     Dashboard() -> "Freshness" -> FreshnessPage(),
     Dashboard() -> "Alerts" -> AlertsPage()
// Overview numbers straight off the summary node
{ WHERE Summary(m), m -> l -> v
  LINK Dashboard() -> l -> v
}
// Per-stage hotspot pages, listed from the stage index
{ WHERE Stages(s), s -> l -> v
  CREATE StagePage(s)
  LINK StagePage(s) -> l -> v,
       StageIndex() -> "Stage" -> StagePage(s)
  { WHERE l = "name", Spans(x), x -> "name" -> v
    LINK StagePage(s) -> "Span" -> SpanCard(x)
  }
}
// Every span as a flat card and as a tree node
{ WHERE Spans(x), x -> l -> v, not(l = "child")
  CREATE SpanCard(x), SpanTree(x)
  LINK SpanCard(x) -> l -> v,
       SpanTree(x) -> l -> v
}
{ WHERE Spans(x), x -> "child" -> y
  LINK SpanTree(x) -> "Child" -> SpanTree(y)
}
// One drilldown page per trace root
{ WHERE Traces(t), t -> l -> v, not(l = "child")
  CREATE TracePage(t)
  LINK TracePage(t) -> l -> v,
       TracePage(t) -> "Root" -> SpanTree(t),
       TraceIndex() -> "Trace" -> TracePage(t)
}
// Metrics tables
{ WHERE Counters(c), c -> l -> v
  CREATE CounterRow(c)
  LINK CounterRow(c) -> l -> v,
       MetricsPage() -> "Counter" -> CounterRow(c)
}
{ WHERE Gauges(g), g -> l -> v
  CREATE GaugeRow(g)
  LINK GaugeRow(g) -> l -> v,
       MetricsPage() -> "Gauge" -> GaugeRow(g)
}
{ WHERE Histograms(h), h -> l -> v
  CREATE HistRow(h)
  LINK HistRow(h) -> l -> v,
       MetricsPage() -> "Histogram" -> HistRow(h)
}
// Slowest requests
{ WHERE Requests(r), r -> l -> v
  CREATE RequestRow(r)
  LINK RequestRow(r) -> l -> v,
       RequestsPage() -> "Request" -> RequestRow(r)
}
// Event log
{ WHERE Events(e), e -> l -> v
  CREATE EventRow(e)
  LINK EventRow(e) -> l -> v,
       EventsPage() -> "Event" -> EventRow(e)
}
// Per-fingerprint query stats from the plan registry
{ WHERE Queries(q), q -> l -> v
  CREATE QueryRow(q)
  LINK QueryRow(q) -> l -> v,
       QueriesPage() -> "Query" -> QueryRow(q)
}
// Per-source freshness rows off the mediator fetch stamps
{ WHERE Sources(f), f -> l -> v
  CREATE SourceRow(f)
  LINK SourceRow(f) -> l -> v,
       FreshnessPage() -> "Source" -> SourceRow(f)
}
// Objectives and their burn-rate alert rules
{ WHERE Slos(o), o -> l -> v
  CREATE SloRow(o)
  LINK SloRow(o) -> l -> v,
       AlertsPage() -> "Slo" -> SloRow(o)
}
{ WHERE Alerts(a), a -> l -> v
  CREATE AlertRow(a)
  LINK AlertRow(a) -> l -> v,
       AlertsPage() -> "Alert" -> AlertRow(a)
}
OUTPUT MONITOR
"""


def monitor_templates() -> TemplateSet:
    """Templates for the dashboard site."""
    templates = TemplateSet()
    templates.add("Dashboard", """<HTML><HEAD><TITLE>STRUDEL Monitor</TITLE></HEAD>
<BODY>
<H1>STRUDEL Monitor</H1>
<P>Generated <SFMT @generated></P>
<UL>
<LI><SFMT @spans> spans in <SFMT @traces> traces</LI>
<LI><SFMT @counters> counters, <SFMT @gauges> gauges, <SFMT @histograms> histograms</LI>
<LI><SFMT @events> events</LI>
<SIF @sources><LI><SFMT @sources> tracked sources<SIF @stale_pages>
(<SFMT @stale_pages> stale pages)</SIF></LI></SIF>
<SIF @slos><LI><SFMT @slos> SLOs, <SFMT @alerts_firing> alerts firing</LI></SIF>
</UL>
<H2>Browse</H2>
<UL>
<LI><SFMT @Stages TAG="Stage hotspots"></LI>
<LI><SFMT @Traces TAG="Trace drilldowns"></LI>
<LI><SFMT @Metrics TAG="Metrics tables"></LI>
<LI><SFMT @Requests TAG="Slowest requests"></LI>
<LI><SFMT @Events TAG="Event log"></LI>
<LI><SFMT @Queries TAG="Query registry"></LI>
<LI><SFMT @Freshness TAG="Source freshness"></LI>
<LI><SFMT @Alerts TAG="SLOs and alerts"></LI>
</UL>
<SIF @live><H2>Live endpoints</H2>
<P>A <TT>repro serve</TT> process is exporting this telemetry at
<SFMT @live> — poll these instead of rebuilding the dashboard:</P>
<SFMTLIST @endpoint WRAP=UL>
</SIF>
</BODY></HTML>""")
    templates.add("StageIndex", """<HTML><HEAD><TITLE>Stages</TITLE></HEAD>
<BODY>
<H1>Stage hotspots</H1>
<SFMTLIST @Stage ORDER=descend KEY=self_ms WRAP=OL>
</BODY></HTML>""")
    templates.add("StagePage", """<HTML><HEAD><TITLE>Stage <SFMT @name></TITLE></HEAD>
<BODY>
<H1>Stage: <SFMT @name></H1>
<P><SFMT @calls> calls — self <SFMT @self_ms> ms,
cumulative <SFMT @cum_ms> ms, mean <SFMT @avg_ms> ms</P>
<SIF @Span><H2>Spans</H2>
<SFMTLIST @Span FORMAT=EMBED ORDER=descend KEY=ms WRAP=UL></SIF>
</BODY></HTML>""")
    templates.add("TraceIndex", """<HTML><HEAD><TITLE>Traces</TITLE></HEAD>
<BODY>
<H1>Trace drilldowns</H1>
<SFMTLIST @Trace ORDER=descend KEY=ms WRAP=OL>
</BODY></HTML>""")
    templates.add("TracePage", """<HTML><HEAD><TITLE>Trace <SFMT @name></TITLE></HEAD>
<BODY>
<H1>Trace: <SFMT @name> (<SFMT @ms> ms)</H1>
<SIF @trace><P>id <SFMT @trace></P></SIF>
<SFMTLIST @Root FORMAT=EMBED WRAP=UL>
</BODY></HTML>""")
    templates.add("SpanCard", """<B><SFMT @name></B> — <SFMT @ms> ms
(self <SFMT @self_ms> ms)<SIF @attrs> <I><SFMT @attrs></I></SIF>""",
                  as_page=False)
    templates.add("SpanTree", """<B><SFMT @name></B> — <SFMT @ms> ms
<SIF @attrs><I><SFMT @attrs></I></SIF>
<SIF @Child><SFMTLIST @Child FORMAT=EMBED WRAP=UL></SIF>""",
                  as_page=False)
    templates.add("MetricsPage", """<HTML><HEAD><TITLE>Metrics</TITLE></HEAD>
<BODY>
<H1>Metrics</H1>
<SIF @Counter><H2>Counters</H2>
<TABLE><TR><TH>name</TH><TH>value</TH></TR>
<SFMTLIST @Counter FORMAT=EMBED ORDER=ascend KEY=name DELIM="">
</TABLE></SIF>
<SIF @Gauge><H2>Gauges</H2>
<TABLE><TR><TH>name</TH><TH>value</TH></TR>
<SFMTLIST @Gauge FORMAT=EMBED ORDER=ascend KEY=name DELIM="">
</TABLE></SIF>
<SIF @Histogram><H2>Histograms</H2>
<TABLE><TR><TH>name</TH><TH>count</TH><TH>mean ms</TH><TH>p50 ms</TH>
<TH>p95 ms</TH><TH>p99 ms</TH><TH>max ms</TH></TR>
<SFMTLIST @Histogram FORMAT=EMBED ORDER=ascend KEY=name DELIM="">
</TABLE></SIF>
</BODY></HTML>""")
    templates.add("CounterRow",
                  """<TR><TD><SFMT @name></TD><TD><SFMT @value></TD></TR>""",
                  as_page=False)
    templates.add("GaugeRow",
                  """<TR><TD><SFMT @name></TD><TD><SFMT @value></TD></TR>""",
                  as_page=False)
    templates.add("HistRow", """<TR><TD><SFMT @name></TD><TD><SFMT @count></TD>
<TD><SFMT @mean_ms></TD><TD><SFMT @p50_ms></TD><TD><SFMT @p95_ms></TD>
<TD><SFMT @p99_ms></TD><TD><SFMT @max_ms></TD></TR>""", as_page=False)
    templates.add("RequestsPage", """<HTML><HEAD><TITLE>Requests</TITLE></HEAD>
<BODY>
<H1>Slowest requests</H1>
<SIF @Request>
<TABLE><TR><TH>#</TH><TH>id</TH><TH>page</TH><TH>status</TH><TH>ms</TH></TR>
<SFMTLIST @Request FORMAT=EMBED ORDER=ascend KEY=rank DELIM="">
</TABLE>
<SELSE><P>No request log attached.</P></SIF>
</BODY></HTML>""")
    templates.add("RequestRow", """<TR><TD><SFMT @rank></TD><TD><SFMT @id></TD>
<TD><SFMT @page></TD><TD><SFMT @status></TD><TD><SFMT @ms></TD></TR>""",
                  as_page=False)
    templates.add("EventsPage", """<HTML><HEAD><TITLE>Events</TITLE></HEAD>
<BODY>
<H1>Event log</H1>
<SIF @Event>
<TABLE><TR><TH>#</TH><TH>level</TH><TH>event</TH><TH>span</TH>
<TH>detail</TH></TR>
<SFMTLIST @Event FORMAT=EMBED ORDER=ascend KEY=seq DELIM="">
</TABLE>
<SELSE><P>No events recorded.</P></SIF>
</BODY></HTML>""")
    templates.add("EventRow", """<TR><TD><SFMT @seq></TD><TD><SFMT @level></TD>
<TD><SFMT @name><SIF @message> — <SFMT @message></SIF></TD>
<TD><SIF @span><SFMT @span></SIF></TD>
<TD><SIF @detail><SFMT @detail></SIF></TD></TR>""", as_page=False)
    templates.add("QueriesPage", """<HTML><HEAD><TITLE>Queries</TITLE></HEAD>
<BODY>
<H1>Query registry</H1>
<P>Per-fingerprint StruQL query stats, worst p95 first (the live
counterpart is <TT>/debug/queries</TT>).</P>
<SIF @Query>
<TABLE><TR><TH>fingerprint</TH><TH>query</TH><TH>runs</TH>
<TH>p50 ms</TH><TH>p95 ms</TH><TH>rows</TH><TH>slow</TH>
<TH>misest.</TH><TH>optimizer</TH></TR>
<SFMTLIST @Query FORMAT=EMBED ORDER=ascend KEY=rank DELIM="">
</TABLE>
<SELSE><P>No queries observed.</P></SIF>
</BODY></HTML>""")
    templates.add("QueryRow", """<TR><TD><TT><SFMT @fingerprint></TT></TD>
<TD><TT><SFMT @text></TT></TD><TD><SFMT @count></TD>
<TD><SFMT @p50_ms></TD><TD><SFMT @p95_ms></TD><TD><SFMT @rows></TD>
<TD><SFMT @slow></TD><TD><SFMT @misestimates></TD>
<TD><SFMT @optimizer></TD></TR>""", as_page=False)
    templates.add("FreshnessPage", """<HTML><HEAD><TITLE>Freshness</TITLE></HEAD>
<BODY>
<H1>Source freshness</H1>
<P>Per-source fetch stamps from the mediator — age since last
successful load, content hash and graph size (the live counterpart
is <TT>/debug/lineage</TT>).</P>
<SIF @Source>
<TABLE><TR><TH>source</TH><TH>kind</TH><TH>age s</TH><TH>hash</TH>
<TH>nodes</TH><TH>edges</TH></TR>
<SFMTLIST @Source FORMAT=EMBED ORDER=ascend KEY=name DELIM="">
</TABLE>
<SELSE><P>No source fetches recorded.</P></SIF>
</BODY></HTML>""")
    templates.add("SourceRow", """<TR><TD><SFMT @name></TD><TD><SFMT @kind></TD>
<TD><SFMT @age_s></TD><TD><TT><SFMT @hash></TT></TD>
<TD><SFMT @nodes></TD><TD><SFMT @edges></TD></TR>""", as_page=False)
    templates.add("AlertsPage", """<HTML><HEAD><TITLE>Alerts</TITLE></HEAD>
<BODY>
<H1>SLOs and alerts</H1>
<P>Service-level objectives judged over rolling windows and their
multi-window burn-rate alert rules (the live counterparts are
<TT>/debug/slo</TT> and <TT>/debug/alerts</TT>).</P>
<SIF @Slo><H2>Objectives</H2>
<TABLE><TR><TH>SLO</TH><TH>objective</TH><TH>compliance</TH>
<TH>burn</TH><TH>budget left</TH><TH>status</TH></TR>
<SFMTLIST @Slo FORMAT=EMBED ORDER=ascend KEY=name DELIM="">
</TABLE>
<SELSE><P>No SLO evaluator ran (serve mode starts one).</P></SIF>
<SIF @Alert><H2>Burn-rate rules</H2>
<TABLE><TR><TH>rule</TH><TH>severity</TH><TH>windows</TH>
<TH>threshold</TH><TH>short / long burn</TH><TH>state</TH></TR>
<SFMTLIST @Alert FORMAT=EMBED ORDER=ascend KEY=rank DELIM="">
</TABLE></SIF>
</BODY></HTML>""")
    templates.add("SloRow", """<TR><TD><SFMT @name></TD>
<TD><SFMT @objective></TD><TD><SFMT @compliance></TD>
<TD><SFMT @burn></TD><TD><SFMT @budget></TD>
<TD><B><SFMT @status></B></TD></TR>""", as_page=False)
    templates.add("AlertRow", """<TR><TD><SFMT @name></TD>
<TD><SFMT @severity></TD><TD><SFMT @windows></TD>
<TD><SFMT @factor>x</TD><TD><SFMT @burns></TD>
<TD><B><SFMT @state></B></TD></TR>""", as_page=False)
    return templates


def build_monitor_site(recorder: TraceRecorder | NullRecorder,
                       server_log=None,
                       max_spans: int = MAX_SPAN_NODES,
                       live_url: str | None = None,
                       queries=None,
                       max_age: float | None = None,
                       slo=None) -> Website:
    """The monitoring dashboard over one recorder's telemetry."""
    data = telemetry_graph(recorder, server_log=server_log,
                           max_spans=max_spans, live_url=live_url,
                           queries=queries, max_age=max_age, slo=slo)
    return Website(data, MONITOR_QUERY, monitor_templates())
