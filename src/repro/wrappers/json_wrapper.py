"""JSON-document wrapper.

The paper's wrappers consume "structured files"; JSON is today's
structured-file lingua franca, and its tree shape maps onto the labeled
graph model the same way XML does:

* a JSON object becomes a node; each key becomes an edge;
* scalars become typed atoms (numbers, booleans, strings; string values
  that look like URLs or file paths get the corresponding atom types);
* an array contributes one edge per element under the same key (the
  model's multi-valued attributes);
* nested objects become child nodes named by path (or by their ``id``
  field when present — which also enables cross-references);
* a top-level array wraps each element as a member of the configured
  collection;
* ``null`` values produce *no* edge: the relational-NULL-to-missing-
  attribute translation again.
"""

from __future__ import annotations

import json
import re

from repro.errors import WrapperError
from repro.graph.model import Graph, Oid
from repro.graph.values import Atom, infer_file_type
from repro.wrappers.base import Wrapper

_PATHY_RE = re.compile(r"^[\w./-]+\.\w{1,6}(\.gz|\.z)?$", re.IGNORECASE)


def _scalar_atom(value) -> Atom:
    if isinstance(value, bool):
        return Atom.bool(value)
    if isinstance(value, int):
        return Atom.int(value)
    if isinstance(value, float):
        return Atom.float(value)
    text = str(value)
    if text.startswith(("http://", "https://", "ftp://")):
        return Atom.url(text)
    if _PATHY_RE.match(text) and "/" in text:
        return Atom(infer_file_type(text), text)
    return Atom.string(text)


class JsonWrapper(Wrapper):
    """Maps a JSON document into a data graph."""

    graph_name = "json"
    kind = "json"

    def __init__(self, collection: str = "Items",
                 id_key: str = "id") -> None:
        self.collection = collection
        self.id_key = id_key

    def wrap(self, source: str, graph_name: str | None = None) -> Graph:
        try:
            document = json.loads(source)
        except json.JSONDecodeError as exc:
            raise WrapperError(f"malformed JSON: {exc}") from exc
        graph = Graph(graph_name or self.graph_name)
        graph.declare_collection(self.collection)
        if isinstance(document, list):
            for index, element in enumerate(document):
                if not isinstance(element, dict):
                    raise WrapperError(
                        f"top-level array element {index} is not an "
                        f"object")
                oid = self._object(graph, element, f"item{index}")
                graph.add_to_collection(self.collection, oid)
        elif isinstance(document, dict):
            oid = self._object(graph, document, "root")
            graph.add_to_collection(self.collection, oid)
        else:
            raise WrapperError("top-level JSON must be an object or "
                               "an array of objects")
        return graph

    def _object(self, graph: Graph, data: dict, fallback: str) -> Oid:
        identity = data.get(self.id_key)
        name = str(identity) if isinstance(identity, (str, int)) \
            else fallback
        oid = Oid(name)
        graph.add_node(oid)
        for key, value in data.items():
            self._entry(graph, oid, key, value, f"{name}.{key}")
        return oid

    def _entry(self, graph: Graph, oid: Oid, key: str, value,
               path: str) -> None:
        if value is None:
            return  # null: the attribute is simply missing
        if isinstance(value, list):
            for index, element in enumerate(value):
                self._entry(graph, oid, key, element,
                            f"{path}[{index}]")
            return
        if isinstance(value, dict):
            child = self._object(graph, value, path)
            graph.add_edge(oid, key, child)
            return
        graph.add_edge(oid, key, _scalar_atom(value))
