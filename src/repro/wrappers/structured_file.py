"""Structured-file wrapper: record files of ``key: value`` lines.

The AT&T site drew project data from "structured files" (section 5.1);
this wrapper reads the classic record format those AWK scripts consumed:

.. code-block:: text

    # projects.rec
    id: strudel
    name: STRUDEL
    member: mff
    member: levy
    synopsis: Declarative web-site management.

    id: daytona
    name: Daytona

Records separate on blank lines; repeated keys make multi-valued
attributes; a record's ``id`` (configurable) names its node; records
join the configured collection.  Values type like the relational
wrapper's cells.  A ``ref:`` prefix on a value makes a reference edge to
another record's node — resolved across the whole file, forward
references allowed.
"""

from __future__ import annotations

import re

from repro.errors import WrapperError
from repro.graph.model import Graph, Oid
from repro.graph.values import Atom, infer_file_type
from repro.wrappers.base import Wrapper

_INT_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d+$")
_PATHY_RE = re.compile(r"^[\w./-]+\.\w{1,6}(\.gz|\.z)?$", re.IGNORECASE)


def _value_atom(text: str) -> Atom:
    if _INT_RE.match(text):
        return Atom.int(int(text))
    if _FLOAT_RE.match(text):
        return Atom.float(float(text))
    if text.startswith(("http://", "https://", "ftp://")):
        return Atom.url(text)
    if _PATHY_RE.match(text) and "/" in text:
        return Atom(infer_file_type(text), text)
    return Atom.string(text)


class StructuredFileWrapper(Wrapper):
    """Maps record files into a data graph."""

    graph_name = "records"
    kind = "structured-file"

    def __init__(self, collection: str = "Records",
                 id_key: str = "id") -> None:
        self.collection = collection
        self.id_key = id_key

    def wrap(self, source: str, graph_name: str | None = None) -> Graph:
        graph = Graph(graph_name or self.graph_name)
        graph.declare_collection(self.collection)
        records = self._split_records(source)
        oids: dict[str, Oid] = {}
        for index, record in enumerate(records):
            rid = self._record_id(record, index)
            oids[rid] = Oid(f"{self.collection}_{rid}")
        pending: list[tuple[Oid, str, str, int]] = []
        for index, record in enumerate(records):
            rid = self._record_id(record, index)
            oid = oids[rid]
            graph.add_node(oid)
            graph.add_to_collection(self.collection, oid)
            for key, value in record:
                if key == self.id_key:
                    graph.add_edge(oid, key, Atom.string(value))
                elif value.startswith("ref:"):
                    pending.append((oid, key, value[len("ref:"):].strip(),
                                    index))
                else:
                    graph.add_edge(oid, key, _value_atom(value))
        for source_oid, key, ref, index in pending:
            target = oids.get(ref)
            if target is None:
                raise WrapperError(
                    f"record {index}: reference to unknown record {ref!r}")
            graph.add_edge(source_oid, key, target)
        return graph

    def _split_records(self, source: str) -> list[list[tuple[str, str]]]:
        records: list[list[tuple[str, str]]] = []
        current: list[tuple[str, str]] = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.rstrip()
            if not line.strip():
                if current:
                    records.append(current)
                    current = []
                continue
            if line.lstrip().startswith("#"):
                continue
            if ":" not in line:
                raise WrapperError(
                    f"line {lineno}: expected 'key: value', got {line!r}")
            key, _, value = line.partition(":")
            current.append((key.strip(), value.strip()))
        if current:
            records.append(current)
        return records

    def _record_id(self, record: list[tuple[str, str]], index: int) -> str:
        for key, value in record:
            if key == self.id_key:
                return value
        return str(index)
