"""BibTeX wrapper: the paper's running example data source.

    A simple wrapper maps BibTeX files into data graphs. (section 5.1)

The wrapper parses standard BibTeX:

* entries ``@type{key, field = value, ...}`` with brace- or
  quote-delimited values, nested braces, and bare numbers;
* ``@string{name = "..."}`` macro definitions and ``#`` concatenation;
* ``@comment`` and ``@preamble`` blocks (ignored);
* multiple authors/editors split on ``and``;
* a ``keywords``/``category`` field split on commas into ``category``
  edges (the Fig 2 data's categories).

Mapping into the graph (mirroring Fig 2):

* each entry becomes a node named by its citation key, member of the
  ``Publications`` collection;
* each field becomes an edge with the lower-cased field name;
* ``year``/``volume``-like numeric fields become int atoms;
* ``abstract`` and ``postscript``/``ps``/``url`` fields whose values
  look like paths become typed file atoms;
* the entry type is recorded as ``pub-type`` (Fig 2's attribute).
"""

from __future__ import annotations

import re

from repro.errors import WrapperError
from repro.graph.model import Graph, Oid
from repro.graph.values import Atom, infer_file_type
from repro.wrappers.base import Wrapper

#: Fields whose values split into multiple edges on " and ".
_PERSON_FIELDS = ("author", "editor")

#: Fields split on commas into one edge per item.
_LIST_FIELDS = ("keywords", "category", "categories")

#: Fields treated as file paths when they look like one.
_FILE_FIELDS = ("abstract", "postscript", "ps", "pdf", "fulltext")

_INT_RE = re.compile(r"^-?\d+$")
_PATHY_RE = re.compile(r"^[\w./-]+\.\w{1,6}(\.gz|\.z)?$", re.IGNORECASE)


class BibTexWrapper(Wrapper):
    """Parses BibTeX text into a Publications data graph.

    ``ordered_authors=True`` applies the paper's section 5.2 solution to
    the order problem ("associating an integer key with each author"):
    instead of plain string atoms, ``author`` edges point to small
    author objects carrying ``name`` and an integer ``key``, so the
    template language's ``ORDER=ascend KEY=key`` reproduces the
    manuscript order even after set-semantics storage.
    """

    graph_name = "bibtex"
    kind = "bibtex"

    def __init__(self, collection: str = "Publications",
                 ordered_authors: bool = False) -> None:
        self.collection = collection
        self.ordered_authors = ordered_authors

    def wrap(self, source: str, graph_name: str | None = None) -> Graph:
        graph = Graph(graph_name or self.graph_name)
        graph.declare_collection(self.collection)
        strings: dict[str, str] = {}
        for kind, body in _entries(source):
            lowered = kind.lower()
            if lowered == "string":
                name, value = _parse_string_def(body, strings)
                strings[name.lower()] = value
            elif lowered in ("comment", "preamble"):
                continue
            else:
                self._add_entry(graph, lowered, body, strings)
        return graph

    def _add_entry(self, graph: Graph, kind: str, body: str,
                   strings: dict[str, str]) -> None:
        key, fields = _parse_entry_body(body, strings)
        oid = Oid(key)
        graph.add_node(oid)
        graph.add_to_collection(self.collection, oid)
        graph.add_edge(oid, "pub-type", Atom.string(kind))
        for name, raw in fields:
            self._add_field(graph, oid, name.lower(), raw)

    def _add_field(self, graph: Graph, oid: Oid, name: str,
                   value: str) -> None:
        value = _collapse_whitespace(value)
        if not value:
            return
        if name in _PERSON_FIELDS:
            people = [p.strip() for p in re.split(r"\s+and\s+", value)
                      if p.strip()]
            if self.ordered_authors:
                for rank, person in enumerate(people, start=1):
                    person_oid = Oid(f"{oid.name}.{name}{rank}")
                    graph.add_node(person_oid)
                    graph.add_edge(person_oid, "name",
                                   Atom.string(person))
                    graph.add_edge(person_oid, "key", Atom.int(rank))
                    graph.add_edge(oid, name, person_oid)
            else:
                for person in people:
                    graph.add_edge(oid, name, Atom.string(person))
            return
        if name in _LIST_FIELDS:
            for item in value.split(","):
                item = item.strip()
                if item:
                    graph.add_edge(oid, "category", Atom.string(item))
            return
        if name in _FILE_FIELDS and _PATHY_RE.match(value):
            graph.add_edge(oid, name,
                           Atom(infer_file_type(value), value))
            return
        if name == "url":
            graph.add_edge(oid, name, Atom.url(value))
            return
        if _INT_RE.match(value):
            graph.add_edge(oid, name, Atom.int(int(value)))
            return
        graph.add_edge(oid, name, Atom.string(value))


def _collapse_whitespace(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()


def _entries(source: str):
    """Yield ``(entry_kind, body_text)`` for each @-entry."""
    i = 0
    n = len(source)
    while i < n:
        at = source.find("@", i)
        if at < 0:
            return
        j = at + 1
        while j < n and (source[j].isalnum() or source[j] == "_"):
            j += 1
        kind = source[at + 1:j]
        while j < n and source[j].isspace():
            j += 1
        if j >= n or source[j] not in "{(":
            i = at + 1
            continue
        opener = source[j]
        closer = "}" if opener == "{" else ")"
        depth = 0
        k = j
        while k < n:
            ch = source[k]
            if ch == opener or (opener == "{" and ch == "{"):
                depth += 1
            elif ch == closer or (opener == "{" and ch == "}"):
                depth -= 1
                if depth == 0:
                    break
            elif ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
            k += 1
        if k >= n:
            raise WrapperError(f"unterminated @{kind} entry")
        yield kind, source[j + 1:k]
        i = k + 1


def _parse_string_def(body: str, strings: dict[str, str]) -> tuple[str, str]:
    eq = body.find("=")
    if eq < 0:
        raise WrapperError(f"malformed @string: {body[:40]!r}")
    name = body[:eq].strip()
    value, _ = _parse_value(body, eq + 1, strings)
    return name, value


def _parse_entry_body(body: str, strings: dict[str, str]
                      ) -> tuple[str, list[tuple[str, str]]]:
    comma = body.find(",")
    if comma < 0:
        key = body.strip()
        if not key:
            raise WrapperError("entry without citation key")
        return key, []
    key = body[:comma].strip()
    if not key:
        raise WrapperError("entry without citation key")
    fields: list[tuple[str, str]] = []
    i = comma + 1
    n = len(body)
    while i < n:
        while i < n and (body[i].isspace() or body[i] == ","):
            i += 1
        if i >= n:
            break
        j = i
        while j < n and body[j] not in "=,":
            j += 1
        if j >= n or body[j] != "=":
            break
        name = body[i:j].strip()
        value, i = _parse_value(body, j + 1, strings)
        if name:
            fields.append((name, value))
    return key, fields


def _parse_value(body: str, i: int, strings: dict[str, str]
                 ) -> tuple[str, int]:
    """Parse a field value (handles braces, quotes, numbers, macros, #)."""
    n = len(body)
    parts: list[str] = []
    while True:
        while i < n and body[i].isspace():
            i += 1
        if i >= n:
            break
        ch = body[i]
        if ch == "{":
            depth = 0
            j = i
            while j < n:
                if body[j] == "{":
                    depth += 1
                elif body[j] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if j >= n:
                raise WrapperError("unterminated braced value")
            parts.append(body[i + 1:j].replace("{", "").replace("}", ""))
            i = j + 1
        elif ch == '"':
            j = i + 1
            while j < n and body[j] != '"':
                j += 1
            if j >= n:
                raise WrapperError("unterminated quoted value")
            parts.append(body[i + 1:j])
            i = j + 1
        elif ch.isdigit():
            j = i
            while j < n and body[j].isdigit():
                j += 1
            parts.append(body[i:j])
            i = j
        elif ch.isalpha() or ch == "_":
            j = i
            while j < n and (body[j].isalnum() or body[j] in "_-"):
                j += 1
            macro = body[i:j]
            parts.append(strings.get(macro.lower(), macro))
            i = j
        else:
            break
        # concatenation?
        while i < n and body[i].isspace():
            i += 1
        if i < n and body[i] == "#":
            i += 1
            continue
        break
    return "".join(parts), i
