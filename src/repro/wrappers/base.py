"""Wrapper interface (paper section 2.2).

    The repository's initial data may be obtained from wrappers that
    convert data in external sources into an internal format.

A wrapper turns one external representation (a BibTeX file, an HTML
page set, a relational table, a structured file, an XML document) into a
:class:`~repro.graph.Graph`.  Wrappers are deterministic and pure: the
same source text yields the same graph, including oid names — which is
what lets re-wrapping after a source update produce a diffable graph.
"""

from __future__ import annotations

from repro.graph.model import Graph


class Wrapper:
    """Base class: translate external source text into a data graph."""

    #: Default name given to produced graphs.
    graph_name = "data"

    #: Wrapper kind recorded in source provenance stamps
    #: (:mod:`repro.obs.lineage`).
    kind = "wrapper"

    def wrap(self, source: str, graph_name: str | None = None) -> Graph:
        """Translate ``source`` (text) into a graph."""
        raise NotImplementedError

    def wrap_file(self, path: str, graph_name: str | None = None) -> Graph:
        """Translate the file at ``path``."""
        with open(path, encoding="utf-8") as handle:
            return self.wrap(handle.read(), graph_name)
