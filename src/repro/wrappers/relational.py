"""Relational wrapper: tables (CSV or dict rows) to data graphs.

The AT&T site's "data sources [...] are small relational databases that
contain personnel and organizational data" and "the wrappers are simple
AWK programs that map structured files and relational databases into
objects in a data graph" (section 5.1).  This wrapper plays that role:

* each row becomes a node, named ``<table>_<primary key>`` (or a
  positional name when no key column is configured), member of a
  collection named after the table;
* each non-empty cell becomes an edge labeled with the column name;
* numeric-looking cells become int/float atoms, path-looking cells file
  atoms, the rest strings — *empty cells produce no edge*, which is how
  relational NULLs become the semistructured model's missing attributes;
* configured foreign keys become *reference edges* to the target
  table's row nodes, so joins in the source become direct graph links.
"""

from __future__ import annotations

import csv
import io
import re

from repro.errors import WrapperError
from repro.graph.model import Graph, Oid
from repro.graph.values import Atom, infer_file_type
from repro.wrappers.base import Wrapper

_INT_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d+$")
_PATHY_RE = re.compile(r"^[\w./-]+\.\w{1,6}(\.gz|\.z)?$", re.IGNORECASE)


def _cell_atom(text: str) -> Atom:
    if _INT_RE.match(text):
        return Atom.int(int(text))
    if _FLOAT_RE.match(text):
        return Atom.float(float(text))
    if text.startswith(("http://", "https://", "ftp://")):
        return Atom.url(text)
    if _PATHY_RE.match(text) and "/" in text:
        return Atom(infer_file_type(text), text)
    return Atom.string(text)


class RelationalWrapper(Wrapper):
    """Maps one or more tables into a data graph.

    ``key_columns`` maps table name to its primary-key column;
    ``foreign_keys`` maps ``(table, column)`` to the referenced table —
    such cells become edges to the referenced row's node instead of
    atoms.  ``multi_value_separator`` (default ``;``) splits a cell into
    several edges, the relational encoding of multi-valued attributes.
    """

    graph_name = "relational"
    kind = "relational"

    def __init__(self, key_columns: dict[str, str] | None = None,
                 foreign_keys: dict[tuple[str, str], str] | None = None,
                 multi_value_separator: str = ";") -> None:
        self.key_columns = key_columns or {}
        self.foreign_keys = foreign_keys or {}
        self.multi_value_separator = multi_value_separator

    # -- public API ----------------------------------------------------------

    def wrap(self, source: str, graph_name: str | None = None) -> Graph:
        """Wrap one CSV table whose first line is ``#table <name>`` or a
        plain header (table then defaults to ``"table"``)."""
        name = "table"
        text = source
        if source.startswith("#table"):
            first, _, rest = source.partition("\n")
            name = first[len("#table"):].strip() or name
            text = rest
        return self.wrap_tables({name: text}, graph_name)

    def wrap_tables(self, tables: dict[str, str],
                    graph_name: str | None = None) -> Graph:
        """Wrap several named CSV tables into one graph."""
        rows = {name: self._read_csv(name, text)
                for name, text in tables.items()}
        return self.wrap_rows(rows, graph_name)

    def wrap_rows(self, tables: dict[str, list[dict[str, str]]],
                  graph_name: str | None = None) -> Graph:
        """Wrap already-parsed rows (list of dicts per table)."""
        graph = Graph(graph_name or self.graph_name)
        oids: dict[tuple[str, str], Oid] = {}
        # First pass: create all row nodes so references can resolve.
        for table, rows in tables.items():
            graph.declare_collection(table)
            key_column = self.key_columns.get(table)
            for index, row in enumerate(rows):
                oid = self._row_oid(table, key_column, row, index)
                oids[(table, oid.name)] = oid
                graph.add_node(oid)
                graph.add_to_collection(table, oid)
        # Second pass: attributes and reference edges.
        for table, rows in tables.items():
            key_column = self.key_columns.get(table)
            for index, row in enumerate(rows):
                oid = self._row_oid(table, key_column, row, index)
                self._add_row(graph, oid, table, row, oids)
        return graph

    # -- internals ---------------------------------------------------------------

    def _read_csv(self, table: str, text: str) -> list[dict[str, str]]:
        reader = csv.DictReader(io.StringIO(text))
        if reader.fieldnames is None:
            raise WrapperError(f"table {table!r} has no header row")
        return [dict(row) for row in reader]

    def _row_oid(self, table: str, key_column: str | None,
                 row: dict[str, str], index: int) -> Oid:
        if key_column is not None:
            key = (row.get(key_column) or "").strip()
            if not key:
                raise WrapperError(
                    f"row {index} of {table!r} lacks key column "
                    f"{key_column!r}")
        else:
            key = str(index)
        return Oid(f"{table}_{key}")

    def _add_row(self, graph: Graph, oid: Oid, table: str,
                 row: dict[str, str],
                 oids: dict[tuple[str, str], Oid]) -> None:
        for column, raw in row.items():
            if raw is None:
                continue
            text = raw.strip()
            if not text:
                continue  # relational NULL: no edge at all
            target_table = self.foreign_keys.get((table, column))
            values = ([v.strip() for v in
                       text.split(self.multi_value_separator)]
                      if self.multi_value_separator in text else [text])
            for value in values:
                if not value:
                    continue
                if target_table is not None:
                    ref = oids.get((target_table,
                                    f"{target_table}_{value}"))
                    if ref is None:
                        raise WrapperError(
                            f"{table}.{column} references missing "
                            f"{target_table} row {value!r}")
                    graph.add_edge(oid, column, ref)
                else:
                    graph.add_edge(oid, column, _cell_atom(value))
