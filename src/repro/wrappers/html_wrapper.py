"""HTML wrapper: existing Web pages into a data graph.

The CNN demonstration "mapped their HTML pages into a data graph
containing about 300 articles" (section 5.1); the AT&T site also
ingested "existing HTML files" through hand-written wrappers.  This
wrapper is that component: given a set of HTML documents it produces

* one node per document (collection ``Pages``), named by its URL;
* a ``title`` edge from the ``<title>`` element;
* a ``text`` edge with the document's visible text;
* ``heading`` edges for ``<h1>``/``<h2>`` text;
* a ``link`` edge per ``<a href>`` — to the target page's node when the
  target is in the wrapped set, else to a URL atom;
* an ``image`` edge per ``<img src>`` (image file atoms);
* ``meta-<name>`` edges for ``<meta name= content=>`` pairs, which is
  how article metadata (section, date) typically rides along.
"""

from __future__ import annotations

from html.parser import HTMLParser

from repro.graph.model import Graph, Oid
from repro.graph.values import Atom, AtomType
from repro.wrappers.base import Wrapper


class _PageParser(HTMLParser):
    """Collects the features the wrapper maps to edges."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.title = ""
        self.headings: list[str] = []
        self.links: list[str] = []
        self.images: list[str] = []
        self.meta: list[tuple[str, str]] = []
        self.text_chunks: list[str] = []
        self._stack: list[str] = []

    def handle_starttag(self, tag: str, attrs) -> None:
        attrs_dict = dict(attrs)
        if tag == "a" and attrs_dict.get("href"):
            self.links.append(attrs_dict["href"])
        elif tag == "img" and attrs_dict.get("src"):
            self.images.append(attrs_dict["src"])
        elif tag == "meta":
            name = attrs_dict.get("name")
            content = attrs_dict.get("content")
            if name and content:
                self.meta.append((name, content))
        if tag in ("title", "h1", "h2", "script", "style"):
            self._stack.append(tag)

    def handle_endtag(self, tag: str) -> None:
        if self._stack and self._stack[-1] == tag:
            self._stack.pop()

    def handle_data(self, data: str) -> None:
        context = self._stack[-1] if self._stack else ""
        stripped = data.strip()
        if not stripped:
            return
        if context == "title":
            self.title += stripped
        elif context in ("h1", "h2"):
            self.headings.append(stripped)
        elif context in ("script", "style"):
            return
        else:
            self.text_chunks.append(stripped)


class HtmlWrapper(Wrapper):
    """Maps HTML documents into a ``Pages`` data graph."""

    graph_name = "html"
    kind = "html"

    def __init__(self, collection: str = "Pages") -> None:
        self.collection = collection

    def wrap(self, source: str, graph_name: str | None = None) -> Graph:
        """Wrap one document under the URL ``page.html``."""
        return self.wrap_pages({"page.html": source}, graph_name)

    def wrap_pages(self, pages: dict[str, str],
                   graph_name: str | None = None) -> Graph:
        """Wrap several documents keyed by URL."""
        graph = Graph(graph_name or self.graph_name)
        graph.declare_collection(self.collection)
        oids = {url: Oid(url) for url in pages}
        for url, oid in oids.items():
            graph.add_node(oid)
            graph.add_to_collection(self.collection, oid)
            graph.add_edge(oid, "url", Atom.url(url))
        for url, html_text in pages.items():
            self._add_page(graph, oids, url, html_text)
        return graph

    def _add_page(self, graph: Graph, oids: dict[str, Oid], url: str,
                  html_text: str) -> None:
        parser = _PageParser()
        parser.feed(html_text)
        parser.close()
        oid = oids[url]
        if parser.title:
            graph.add_edge(oid, "title", Atom.string(parser.title))
        for heading in parser.headings:
            graph.add_edge(oid, "heading", Atom.string(heading))
        if parser.text_chunks:
            graph.add_edge(oid, "text",
                           Atom.string(" ".join(parser.text_chunks)))
        for href in parser.links:
            target = oids.get(href)
            if target is not None:
                graph.add_edge(oid, "link", target)
            else:
                graph.add_edge(oid, "link", Atom.url(href))
        for src in parser.images:
            graph.add_edge(oid, "image", Atom(AtomType.IMAGE_FILE, src))
        for name, content in parser.meta:
            graph.add_edge(oid, f"meta-{name}", Atom.string(content))
