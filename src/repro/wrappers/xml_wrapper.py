"""XML wrapper.

The paper names XML as "another possible data exchange language between
the wrappers and the mediator layer" (section 2.2).  The mapping is the
natural one for the labeled-graph model:

* each element becomes a node (named by an ``id`` attribute when
  present, else positionally);
* each XML attribute becomes an edge to a string atom;
* element text becomes a ``text`` edge;
* each child element becomes an edge labeled with the child's tag;
* elements join a collection named after their tag (capitalized), so
  ``<publication>`` elements are queryable as ``Publication(x)``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import WrapperError
from repro.graph.model import Graph, Oid
from repro.graph.values import Atom
from repro.wrappers.base import Wrapper


class XmlWrapper(Wrapper):
    """Maps an XML document into a data graph."""

    graph_name = "xml"
    kind = "xml"

    def wrap(self, source: str, graph_name: str | None = None) -> Graph:
        try:
            root = ET.fromstring(source)
        except ET.ParseError as exc:
            raise WrapperError(f"malformed XML: {exc}") from exc
        graph = Graph(graph_name or self.graph_name)
        counter = [0]
        self._add_element(graph, root, counter, path="")
        return graph

    def _add_element(self, graph: Graph, element: ET.Element,
                     counter: list[int], path: str) -> Oid:
        explicit = element.get("id")
        if explicit:
            name = explicit
        else:
            counter[0] += 1
            name = f"{path}/{element.tag}[{counter[0]}]" if path \
                else f"{element.tag}[{counter[0]}]"
        oid = Oid(name)
        graph.add_node(oid)
        graph.add_to_collection(element.tag.capitalize(), oid)
        for attr, value in element.attrib.items():
            if attr == "id":
                continue
            graph.add_edge(oid, attr, _typed(value))
        text = (element.text or "").strip()
        if text:
            graph.add_edge(oid, "text", _typed(text))
        for child in element:
            child_oid = self._add_element(graph, child, counter, name)
            graph.add_edge(oid, child.tag, child_oid)
            tail = (child.tail or "").strip()
            if tail:
                graph.add_edge(oid, "text", Atom.string(tail))
        return oid


def _typed(text: str) -> Atom:
    try:
        return Atom.int(int(text))
    except ValueError:
        pass
    try:
        return Atom.float(float(text))
    except ValueError:
        pass
    return Atom.string(text)
