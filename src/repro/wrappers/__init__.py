"""Source wrappers (paper section 2.2): external data to data graphs."""

from repro.wrappers.base import Wrapper
from repro.wrappers.bibtex import BibTexWrapper
from repro.wrappers.html_wrapper import HtmlWrapper
from repro.wrappers.json_wrapper import JsonWrapper
from repro.wrappers.relational import RelationalWrapper
from repro.wrappers.structured_file import StructuredFileWrapper
from repro.wrappers.xml_wrapper import XmlWrapper

__all__ = [
    "BibTexWrapper",
    "HtmlWrapper",
    "JsonWrapper",
    "RelationalWrapper",
    "StructuredFileWrapper",
    "Wrapper",
    "XmlWrapper",
]
