"""STRUDEL data-definition language (paper Fig 2): parser and writer."""

from repro.ddl.parser import DDLParser, parse_ddl, parse_ddl_file
from repro.ddl.writer import write_ddl

__all__ = ["DDLParser", "parse_ddl", "parse_ddl_file", "write_ddl"]
