"""Parser for the STRUDEL data-definition language (paper Fig 2).

The DDL is the textual exchange format between wrappers and the
mediator/repository.  Its grammar, reconstructed from Fig 2 and the
surrounding prose:

.. code-block:: text

    file        ::=  (collection | object)*
    collection  ::=  "collection" NAME "{" (attr type)* "}"
    object      ::=  "object" NAME ["in" NAME ("," NAME)*] "{" entry* "}"
    entry       ::=  attr value
    value       ::=  STRING | INT | FLOAT | "true" | "false" | "null"
                   | "&" NAME            (reference to another object)
                   | "{" entry* "}"      (anonymous nested object)

``collection`` directives declare *default types* for attribute values
that "would otherwise be interpreted as strings" — e.g. in Fig 2,
``abstract text postscript ps`` says the ``abstract`` attribute holds a
text file and ``postscript`` a PostScript file.  Per the paper, "these
directives are not constraints and can be overridden in the input file":
a value that is not a plain string (an int, a reference, …) keeps its
own type.

Type names accepted in directives: ``text``, ``ps``/``postscript``,
``html``, ``image``, ``url``, ``int``, ``float``, ``string``, ``bool``.
"""

from __future__ import annotations

from repro.errors import DDLError
from repro.graph.model import Graph, GraphObject, Oid
from repro.graph.values import Atom, AtomType
from repro.lexutil import EOF, FLOAT, IDENT, INT, PUNCT, STRING, ScanError, Token, scan

_PUNCTUATION = ("{", "}", "&", ",")

#: DDL type-directive names to atom types.
TYPE_NAMES: dict[str, AtomType] = {
    "text": AtomType.TEXT_FILE,
    "ps": AtomType.POSTSCRIPT_FILE,
    "postscript": AtomType.POSTSCRIPT_FILE,
    "html": AtomType.HTML_FILE,
    "image": AtomType.IMAGE_FILE,
    "url": AtomType.URL,
    "int": AtomType.INT,
    "float": AtomType.FLOAT,
    "string": AtomType.STRING,
    "bool": AtomType.BOOL,
}


class DDLParser:
    """Recursive-descent parser producing a :class:`~repro.graph.Graph`.

    Parsing is two-phase: declarations are read in document order, and
    ``&name`` references resolve against *all* objects in the file, so
    forward references are legal.
    """

    def __init__(self, text: str, graph_name: str = "data") -> None:
        try:
            # Attribute names may contain hyphens (Fig 2 uses pub-type).
            self._tokens = list(scan(
                text, _PUNCTUATION,
                ident_ok=lambda ch: ch.isalnum() or ch in "-_"))
        except ScanError as exc:
            raise DDLError(str(exc), exc.line) from exc
        self._pos = 0
        self._graph = Graph(graph_name)
        #: collection name -> attribute -> default AtomType
        self._defaults: dict[str, dict[str, AtomType]] = {}
        #: (source oid, attr, ref name, line) pending reference edges
        self._pending: list[tuple[Oid, str, str, int]] = []
        self._declared: dict[str, Oid] = {}
        self._anon_counter = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not EOF and token.kind != EOF:
            self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise DDLError(f"expected {want!r}, found {token.text!r}",
                           token.line)
        return self._next()

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind == PUNCT and token.text == text

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == IDENT and token.text == word

    # -- grammar --------------------------------------------------------------

    def parse(self) -> Graph:
        """Parse the whole input and return the resulting data graph."""
        while self._peek().kind != EOF:
            if self._at_keyword("collection"):
                self._parse_collection()
            elif self._at_keyword("object"):
                self._parse_object()
            else:
                token = self._peek()
                raise DDLError(
                    f"expected 'collection' or 'object', found {token.text!r}",
                    token.line)
        self._resolve_references()
        return self._graph

    def _parse_collection(self) -> None:
        self._expect(IDENT, "collection")
        name = self._expect(IDENT).text
        self._graph.declare_collection(name)
        defaults = self._defaults.setdefault(name, {})
        self._expect(PUNCT, "{")
        while not self._at_punct("}"):
            attr = self._expect(IDENT).text
            type_token = self._expect(IDENT)
            atom_type = TYPE_NAMES.get(type_token.text.lower())
            if atom_type is None:
                raise DDLError(f"unknown type directive {type_token.text!r}",
                               type_token.line)
            defaults[attr] = atom_type
        self._expect(PUNCT, "}")

    def _parse_object(self) -> None:
        self._expect(IDENT, "object")
        name_token = self._expect(IDENT)
        oid = self._declared.get(name_token.text)
        if oid is None:
            oid = Oid(name_token.text)
            self._declared[name_token.text] = oid
        self._graph.add_node(oid)
        collections: list[str] = []
        if self._at_keyword("in"):
            self._next()
            collections.append(self._expect(IDENT).text)
            while self._at_punct(","):
                self._next()
                collections.append(self._expect(IDENT).text)
        for cname in collections:
            self._graph.add_to_collection(cname, oid)
        self._parse_body(oid, collections)

    def _parse_body(self, oid: Oid, collections: list[str]) -> None:
        self._expect(PUNCT, "{")
        while not self._at_punct("}"):
            attr_token = self._expect(IDENT)
            self._parse_entry(oid, attr_token.text, collections,
                              attr_token.line)
        self._expect(PUNCT, "}")

    def _parse_entry(self, oid: Oid, attr: str, collections: list[str],
                     line: int) -> None:
        token = self._peek()
        if token.kind == STRING:
            self._next()
            atom = self._typed_string(attr, token.text, collections)
            self._graph.add_edge(oid, attr, atom)
        elif token.kind == INT:
            self._next()
            self._graph.add_edge(oid, attr, Atom.int(int(token.text)))
        elif token.kind == FLOAT:
            self._next()
            self._graph.add_edge(oid, attr, Atom.float(float(token.text)))
        elif token.kind == IDENT and token.text in ("true", "false"):
            self._next()
            self._graph.add_edge(oid, attr, Atom.bool(token.text == "true"))
        elif token.kind == IDENT and token.text == "null":
            # An explicit null records the attribute's presence with an
            # empty string; the semistructured model has no null atom.
            self._next()
            self._graph.add_edge(oid, attr, Atom.string(""))
        elif self._at_punct("&"):
            self._next()
            ref = self._expect(IDENT).text
            self._pending.append((oid, attr, ref, line))
        elif self._at_punct("{"):
            nested = self._fresh_anonymous(oid, attr)
            self._graph.add_edge(oid, attr, nested)
            self._parse_body(nested, [])
        else:
            raise DDLError(f"expected a value after attribute {attr!r}, "
                           f"found {token.text!r}", token.line)

    def _fresh_anonymous(self, parent: Oid, attr: str) -> Oid:
        self._anon_counter += 1
        return self._graph.add_node(
            Oid(f"{parent.name}.{attr}#{self._anon_counter}"))

    def _typed_string(self, attr: str, text: str,
                      collections: list[str]) -> Atom:
        for cname in collections:
            default = self._defaults.get(cname, {}).get(attr)
            if default is not None:
                if default.is_file:
                    return Atom(default, text)
                if default is AtomType.URL:
                    return Atom.url(text)
                if default is AtomType.INT:
                    try:
                        return Atom.int(int(text))
                    except ValueError:
                        return Atom.string(text)
                if default is AtomType.FLOAT:
                    try:
                        return Atom.float(float(text))
                    except ValueError:
                        return Atom.string(text)
                if default is AtomType.BOOL:
                    return Atom.bool(text.lower() in ("true", "1", "yes"))
                return Atom.string(text)
        return Atom.string(text)

    def _resolve_references(self) -> None:
        for source, attr, ref, line in self._pending:
            target = self._declared.get(ref)
            if target is None:
                raise DDLError(f"reference to undeclared object {ref!r}",
                               line)
            self._graph.add_edge(source, attr, target)


def parse_ddl(text: str, graph_name: str = "data") -> Graph:
    """Parse STRUDEL DDL text into a data graph."""
    return DDLParser(text, graph_name).parse()


def parse_ddl_file(path: str, graph_name: str | None = None) -> Graph:
    """Parse a DDL file; the graph is named after the file by default."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    if graph_name is None:
        import os
        graph_name = os.path.splitext(os.path.basename(path))[0]
    return parse_ddl(text, graph_name)
