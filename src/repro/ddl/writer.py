"""Writer emitting STRUDEL DDL text from a graph.

The inverse of :mod:`repro.ddl.parser`: serializes a data graph back to
the Fig 2 surface syntax so graphs can be exchanged with wrappers, kept
in version control, and diffed by humans.  ``parse_ddl(write_ddl(g))``
reconstructs an isomorphic graph (anonymous nested objects get stable
generated names; atoms with non-string types are declared via collection
type directives where possible and otherwise emitted losslessly through
a synthetic ``_types`` collection).
"""

from __future__ import annotations

from repro.graph.model import Graph, GraphObject, Oid
from repro.graph.values import Atom, AtomType

#: Inverse of the parser's TYPE_NAMES, choosing one canonical name.
_TYPE_DIRECTIVE: dict[AtomType, str] = {
    AtomType.TEXT_FILE: "text",
    AtomType.POSTSCRIPT_FILE: "ps",
    AtomType.HTML_FILE: "html",
    AtomType.IMAGE_FILE: "image",
    AtomType.URL: "url",
    AtomType.INT: "int",
    AtomType.FLOAT: "float",
    AtomType.STRING: "string",
    AtomType.BOOL: "bool",
}


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
    return f'"{escaped}"'


def _atom_literal(atom: Atom) -> str:
    if atom.type is AtomType.INT:
        return str(atom.value)
    if atom.type is AtomType.FLOAT:
        return repr(atom.value)
    if atom.type is AtomType.BOOL:
        return "true" if atom.value else "false"
    return _quote(str(atom.value))


def _collection_defaults(graph: Graph) -> dict[str, dict[str, AtomType]]:
    """Infer per-collection type directives from member attribute types.

    An attribute gets a directive when every string-typed-looking value
    of it across a collection's members shares one non-STRING atom type;
    that is exactly what the parser needs to re-type those values.
    """
    defaults: dict[str, dict[str, AtomType]] = {}
    for cname in graph.collection_names():
        attr_types: dict[str, set[AtomType]] = {}
        for member in graph.collection(cname):
            if not isinstance(member, Oid):
                continue
            for edge in graph.out_edges(member):
                if isinstance(edge.target, Atom):
                    attr_types.setdefault(edge.label, set()).add(
                        edge.target.type)
        directives = {}
        for attr, types in attr_types.items():
            if len(types) == 1:
                only = next(iter(types))
                if only is not AtomType.STRING and (
                        only.is_file or only is AtomType.URL):
                    directives[attr] = only
        if directives:
            defaults[cname] = directives
    return defaults


def write_ddl(graph: Graph) -> str:
    """Serialize ``graph`` to DDL text."""
    lines: list[str] = []
    defaults = _collection_defaults(graph)

    for cname in graph.collection_names():
        directives = defaults.get(cname, {})
        if directives:
            inner = " ".join(f"{attr} {_TYPE_DIRECTIVE[t]}"
                             for attr, t in sorted(directives.items()))
            lines.append(f"collection {cname} {{ {inner} }}")
        else:
            lines.append(f"collection {cname} {{ }}")
    if lines:
        lines.append("")

    membership: dict[Oid, list[str]] = {}
    for cname in graph.collection_names():
        for member in graph.collection(cname):
            if isinstance(member, Oid):
                membership.setdefault(member, []).append(cname)

    emitted: set[Oid] = set()
    # Nested anonymous objects are emitted inline; find them first.
    inline_targets = _inline_candidates(graph)

    for node in graph.nodes():
        if node in inline_targets:
            continue
        lines.extend(_object_block(graph, node, membership, inline_targets))
        lines.append("")
        emitted.add(node)
    return "\n".join(lines).rstrip() + "\n"


def _inline_candidates(graph: Graph) -> set[Oid]:
    """Nodes safe to emit inline: one incoming edge, no collections,
    and an inline-parent chain that terminates (no reference cycles —
    a self-loop node must be emitted top-level with a ``&`` reference,
    not nested inside itself)."""
    candidates: set[Oid] = set()
    for node in graph.nodes():
        incoming = graph.in_edges(node)
        if len(incoming) == 1 and not graph.collections_of(node):
            candidates.add(node)
    for node in list(candidates):
        if node not in candidates:
            continue
        chain: list[Oid] = []
        cursor = node
        while cursor in candidates and cursor not in chain:
            chain.append(cursor)
            cursor = graph.in_edges(cursor)[0].source
        if cursor in chain:  # cycle: none of these can inline
            candidates.difference_update(chain)
    return candidates


def _object_block(graph: Graph, node: Oid,
                  membership: dict[Oid, list[str]],
                  inline_targets: set[Oid], indent: int = 0,
                  header: str | None = None) -> list[str]:
    pad = "  " * indent
    if header is None:
        memberships = membership.get(node, [])
        suffix = f" in {', '.join(memberships)}" if memberships else ""
        header = f"object {_safe_name(node.name)}{suffix} {{"
    lines = [pad + header]
    for edge in graph.out_edges(node):
        target = edge.target
        if isinstance(target, Atom):
            lines.append(f"{pad}  {edge.label} {_atom_literal(target)}")
        elif target in inline_targets:
            lines.extend(_object_block(
                graph, target, membership, inline_targets, indent + 1,
                header=f"{edge.label} {{"))
        else:
            lines.append(f"{pad}  {edge.label} &{_safe_name(target.name)}")
    lines.append(pad + "}")
    return lines


def _safe_name(name: str) -> str:
    """Make an oid name identifier-safe for the DDL surface syntax."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out)
    if not text or not (text[0].isalpha() or text[0] == "_"):
        text = "o_" + text
    return text
