"""Hand-written (CGI-style) baseline site generators for benchmarks."""

from repro.baseline.procedural import (
    HOMEPAGE_HELPERS,
    NEWS_HELPERS,
    generate_homepage_site,
    generate_homepage_site_external,
    generate_news_site,
    generate_news_site_sports,
    source_lines,
)

__all__ = [
    "HOMEPAGE_HELPERS",
    "NEWS_HELPERS",
    "generate_homepage_site",
    "generate_homepage_site_external",
    "generate_news_site",
    "generate_news_site_sports",
    "source_lines",
]
