"""The procedural baseline: hand-written page generators.

The paper's comparison point is current practice — "a site builder
writes HTML files by hand or writes programs to produce them", and the
official AT&T site "is generated using a large set of CGI-BIN scripts".
Benchmarks F8 and A5 need that baseline concretely, so this module
implements the homepage and news sites the way a CGI author would: one
Python generator per site *version*, each walking the data graph and
printing HTML, with content selection, structure and presentation all
tangled together.

The deliberate sins that make the comparison meaningful (and which
STRUDEL's separation removes) are the same ones the paper names:

* a second site version (`external`, `sports-only`) is a copy-pasted,
  edited generator — there is no shared site structure to reuse;
* restructuring the site means editing every function that mentions the
  structure;
* there is nothing to verify statically: no site schema exists.

``source_lines`` measures the specification sizes the paper reports
(query lines / template lines vs program lines).
"""

from __future__ import annotations

import html
import inspect

from repro.graph.model import Graph, GraphObject, Oid
from repro.graph.values import Atom, AtomType


def _esc(value: GraphObject | None) -> str:
    return html.escape(str(value)) if value is not None else ""


def _first(graph: Graph, oid: Oid, label: str):
    return graph.get_one(oid, label)


def _safe(name: str) -> str:
    return "".join(ch if (ch.isalnum() or ch in "-_") else "_"
                   for ch in name)


# --------------------------------------------------------------------------
# Homepage site, internal version


def generate_homepage_site(data: Graph) -> dict[str, str]:
    """The internal homepage site, hand-rolled: returns url -> HTML."""
    pages: dict[str, str] = {}
    pubs = [p for p in data.collection("Publications")
            if isinstance(p, Oid)]
    years = sorted({str(_first(data, p, "year")) for p in pubs
                    if _first(data, p, "year") is not None})
    categories = sorted({str(c) for p in pubs
                         for c in data.get(p, "category")})

    # Root page: year and category indexes plus the abstracts link.
    body = ["<HTML><BODY><H1>Publications</H1>",
            "<H2>Publications by Year</H2><UL>"]
    for year in years:
        body.append(f'<LI><A HREF="year_{year}.html">{year}</A>')
    body.append("</UL><H2>Publications by Topic</H2><UL>")
    for category in categories:
        body.append(f'<LI><A HREF="cat_{_safe(category)}.html">'
                    f"{_esc(category)}</A>")
    body.append('</UL><P><A HREF="abstracts.html">Paper Abstracts</A>'
                "</BODY></HTML>")
    pages["index.html"] = "\n".join(body)

    # Year pages: full presentation of each matching publication.
    for year in years:
        chunks = [f"<HTML><BODY><H1>Publications from {year}</H1>"]
        for pub in pubs:
            if str(_first(data, pub, "year")) != year:
                continue
            chunks.append("<P>" + _present_pub(data, pub,
                                               with_postscript=True))
        chunks.append("</BODY></HTML>")
        pages[f"year_{year}.html"] = "\n".join(chunks)

    # Category pages: same presentation, other grouping.
    for category in categories:
        chunks = [f"<HTML><BODY><H1>Publications on "
                  f"{_esc(category)}</H1>"]
        for pub in pubs:
            if category not in {str(c) for c in data.get(pub, "category")}:
                continue
            chunks.append("<P>" + _present_pub(data, pub,
                                               with_postscript=True))
        chunks.append("</BODY></HTML>")
        pages[f"cat_{_safe(category)}.html"] = "\n".join(chunks)

    # Abstracts page and one page per abstract.
    chunks = ["<HTML><BODY><H1>Paper Abstracts</H1>"]
    for pub in pubs:
        chunks.append("<HR>" + _abstract_block(data, pub))
        pages[f"abs_{_safe(pub.name)}.html"] = (
            "<HTML><BODY>" + _abstract_block(data, pub) + "</BODY></HTML>")
    chunks.append("</BODY></HTML>")
    pages["abstracts.html"] = "\n".join(chunks)
    return pages


def _present_pub(data: Graph, pub: Oid, with_postscript: bool) -> str:
    title = _esc(_first(data, pub, "title"))
    authors = ", ".join(_esc(a) for a in data.get(pub, "author"))
    year = _esc(_first(data, pub, "year"))
    venue = _first(data, pub, "journal") or _first(data, pub, "booktitle")
    postscript = _first(data, pub, "postscript")
    if with_postscript and postscript is not None:
        head = f'<A HREF="{_esc(postscript)}">{title}</A>'
    else:
        head = title
    venue_text = f"<I>{_esc(venue)}</I>, " if venue is not None else ""
    return (f"{head}. By {authors}. {venue_text}{year}. "
            f'<A HREF="abs_{_safe(pub.name)}.html">Abstract</A>')


def _abstract_block(data: Graph, pub: Oid) -> str:
    title = _esc(_first(data, pub, "title"))
    abstract = _esc(_first(data, pub, "abstract"))
    return f"<H3>{title}</H3><P>{abstract}"


# --------------------------------------------------------------------------
# Homepage site, external version: a copy-pasted, edited generator.
# (This duplication is the point: there is no shared structure to edit.)


def generate_homepage_site_external(data: Graph) -> dict[str, str]:
    """The external homepage site: no PostScript links, no volumes."""
    pages: dict[str, str] = {}
    pubs = [p for p in data.collection("Publications")
            if isinstance(p, Oid)]
    years = sorted({str(_first(data, p, "year")) for p in pubs
                    if _first(data, p, "year") is not None})
    categories = sorted({str(c) for p in pubs
                         for c in data.get(p, "category")})

    body = ["<HTML><BODY><H1>Publications</H1>",
            "<H2>Publications by Year</H2><UL>"]
    for year in years:
        body.append(f'<LI><A HREF="year_{year}.html">{year}</A>')
    body.append("</UL><H2>Publications by Topic</H2><UL>")
    for category in categories:
        body.append(f'<LI><A HREF="cat_{_safe(category)}.html">'
                    f"{_esc(category)}</A>")
    body.append('</UL><P><A HREF="abstracts.html">Paper Abstracts</A>'
                "</BODY></HTML>")
    pages["index.html"] = "\n".join(body)

    for year in years:
        chunks = [f"<HTML><BODY><H1>Publications from {year}</H1>"]
        for pub in pubs:
            if str(_first(data, pub, "year")) != year:
                continue
            chunks.append("<P>" + _present_pub(data, pub,
                                               with_postscript=False))
        chunks.append("</BODY></HTML>")
        pages[f"year_{year}.html"] = "\n".join(chunks)

    for category in categories:
        chunks = [f"<HTML><BODY><H1>Publications on "
                  f"{_esc(category)}</H1>"]
        for pub in pubs:
            if category not in {str(c) for c in data.get(pub, "category")}:
                continue
            chunks.append("<P>" + _present_pub(data, pub,
                                               with_postscript=False))
        chunks.append("</BODY></HTML>")
        pages[f"cat_{_safe(category)}.html"] = "\n".join(chunks)

    chunks = ["<HTML><BODY><H1>Paper Abstracts</H1>"]
    for pub in pubs:
        chunks.append("<HR>" + _abstract_block(data, pub))
        pages[f"abs_{_safe(pub.name)}.html"] = (
            "<HTML><BODY>" + _abstract_block(data, pub) + "</BODY></HTML>")
    chunks.append("</BODY></HTML>")
    pages["abstracts.html"] = "\n".join(chunks)
    return pages


# --------------------------------------------------------------------------
# News site, general + sports-only versions


def generate_news_site(data: Graph) -> dict[str, str]:
    """The general news site, hand-rolled: front page, section pages,
    per-day archive pages, article pages with related-story links."""
    pages: dict[str, str] = {}
    articles = [a for a in data.collection("Articles")
                if isinstance(a, Oid)]
    sections = sorted({str(_first(data, a, "meta-section"))
                       for a in articles
                       if _first(data, a, "meta-section") is not None})
    days = sorted({str(_first(data, a, "meta-day")) for a in articles
                   if _first(data, a, "meta-day") is not None}, key=int)

    body = ["<HTML><BODY><H1>Today's News</H1><H2>Sections</H2><UL>"]
    for section in sections:
        body.append(f'<LI><A HREF="sec_{_safe(section)}.html">'
                    f"{_esc(section)}</A>")
    body.append("</UL><H2>Archive</H2><OL>")
    for day in days:
        body.append(f'<LI><A HREF="day_{day}.html">day {day}</A>')
    body.append("</OL></BODY></HTML>")
    pages["index.html"] = "\n".join(body)

    for section in sections:
        chunks = [f"<HTML><BODY><H1>Section: {_esc(section)}</H1>"]
        for article in articles:
            if str(_first(data, article, "meta-section")) != section:
                continue
            chunks.append("<HR>" + _summarize(data, article))
        chunks.append("</BODY></HTML>")
        pages[f"sec_{_safe(section)}.html"] = "\n".join(chunks)

    for day in days:
        chunks = [f"<HTML><BODY><H1>Stories from day {day}</H1>"]
        for article in articles:
            if str(_first(data, article, "meta-day")) != day:
                continue
            chunks.append("<HR>" + _summarize(data, article))
        chunks.append("</BODY></HTML>")
        pages[f"day_{day}.html"] = "\n".join(chunks)

    article_set = set(articles)
    for article in articles:
        related = [t for t in data.get(article, "link")
                   if isinstance(t, Oid) and t in article_set]
        pages[f"art_{_safe(article.name)}.html"] = _article_page(
            data, article, related)
    return pages


def generate_news_site_sports(data: Graph) -> dict[str, str]:
    """The sports-only news site: another copy-pasted generator."""
    pages: dict[str, str] = {}
    articles = [a for a in data.collection("Articles")
                if isinstance(a, Oid)
                and str(_first(data, a, "meta-section")) == "sports"]

    days = sorted({str(_first(data, a, "meta-day")) for a in articles
                   if _first(data, a, "meta-day") is not None}, key=int)

    body = ["<HTML><BODY><H1>Today's Sports</H1><UL>",
            '<LI><A HREF="sec_sports.html">sports</A>',
            "</UL><H2>Archive</H2><OL>"]
    for day in days:
        body.append(f'<LI><A HREF="day_{day}.html">day {day}</A>')
    body.append("</OL></BODY></HTML>")
    pages["index.html"] = "\n".join(body)

    chunks = ["<HTML><BODY><H1>Section: sports</H1>"]
    for article in articles:
        chunks.append("<HR>" + _summarize(data, article))
    chunks.append("</BODY></HTML>")
    pages["sec_sports.html"] = "\n".join(chunks)

    for day in days:
        chunks = [f"<HTML><BODY><H1>Stories from day {day}</H1>"]
        for article in articles:
            if str(_first(data, article, "meta-day")) != day:
                continue
            chunks.append("<HR>" + _summarize(data, article))
        chunks.append("</BODY></HTML>")
        pages[f"day_{day}.html"] = "\n".join(chunks)

    article_set = set(articles)
    for article in articles:
        related = [t for t in data.get(article, "link")
                   if isinstance(t, Oid) and t in article_set]
        pages[f"art_{_safe(article.name)}.html"] = _article_page(
            data, article, related)
    return pages


def _summarize(data: Graph, article: Oid) -> str:
    title = _esc(_first(data, article, "title"))
    byline = _first(data, article, "meta-byline")
    byline_text = f" — {_esc(byline)}" if byline is not None else ""
    return (f"<P><B>{title}</B>{byline_text} "
            f'<A HREF="art_{_safe(article.name)}.html">full story</A></P>')


def _article_page(data: Graph, article: Oid,
                  related: list[Oid] | None = None) -> str:
    title = _esc(_first(data, article, "title"))
    text = _esc(_first(data, article, "text"))
    image = _first(data, article, "image")
    image_tag = (f'<IMG SRC="{_esc(image)}">'
                 if isinstance(image, Atom)
                 and image.type is AtomType.IMAGE_FILE else "")
    related_html = ""
    if related:
        links = "<BR>".join(_summarize(data, r) for r in related)
        related_html = f"<H3>Related stories</H3>{links}"
    return (f"<HTML><BODY><H1>{title}</H1>{image_tag}"
            f"<P>{text}</P>{related_html}</BODY></HTML>")


# --------------------------------------------------------------------------
# Specification-size accounting


def source_lines(*functions) -> int:
    """Non-blank source lines of the given generator functions — the
    baseline's 'specification size' for the Fig 8 / A5 comparisons."""
    total = 0
    for fn in functions:
        source = inspect.getsource(fn)
        total += sum(1 for line in source.splitlines() if line.strip())
    return total


#: The helper functions shared by the internal homepage generator.
HOMEPAGE_HELPERS = (_present_pub, _abstract_block)

#: Helpers shared by the news generators.
NEWS_HELPERS = (_summarize, _article_page)
