"""STRUDEL: a declarative Web-site management system.

A faithful reproduction of *"Overview of Strudel — A Web-Site Management
System"* (Fernandez, Florescu, Kang, Levy, Suciu; SIGMOD 1997 system).
STRUDEL separates the three tasks of Web-site construction — managing
the site's **data**, defining its **structure**, and designing its
**visual presentation** — and makes the middle one declarative: the site
is the result of a **StruQL** query over a semistructured data graph,
rendered to HTML by a template language.

Typical use::

    from repro import BibTexWrapper, Website, TemplateSet

    data = BibTexWrapper().wrap(open("pubs.bib").read())
    templates = TemplateSet()
    templates.add("RootPage", "<h1>My papers</h1><SFMTLIST @YearPage WRAP=UL>")
    ...
    site = Website(data, SITE_QUERY, templates)
    site.generate("public_html/")

Subsystems (see DESIGN.md for the full inventory):

* :mod:`repro.graph` — the labeled-directed-graph data model;
* :mod:`repro.ddl` — the textual data-definition language (Fig 2);
* :mod:`repro.repository` — the indexed schemaless store;
* :mod:`repro.wrappers` — BibTeX / HTML / relational / record / XML;
* :mod:`repro.mediator` — GAV integration, warehoused or virtual;
* :mod:`repro.struql` — the query language, engine and optimizers;
* :mod:`repro.templates` — the HTML-template language and generator;
* :mod:`repro.site` — site builder, site schemas, verification,
  click-time evaluation and the dynamic page server;
* :mod:`repro.obs` — the observability layer: span tracing, metrics
  (counters/gauges/histograms) and JSON/text exporters shared by every
  stage above;
* :mod:`repro.datagen` — seeded synthetic workloads.
"""

from repro.ddl import parse_ddl, parse_ddl_file, write_ddl
from repro.errors import (
    ConstraintViolation,
    DDLError,
    StruQLError,
    StruQLSemanticError,
    StruQLSyntaxError,
    StrudelError,
    TemplateError,
    TemplateSyntaxError,
    WrapperError,
)
from repro.graph import Atom, AtomType, Database, Edge, Graph, Oid
from repro.mediator import DataSource, LimitedAccessSource, Mediator
from repro.repository import GraphIndex, GraphStatistics, Repository
from repro.site import (
    DynamicSite,
    DynamicSiteServer,
    LazySiteGraph,
    ReachableFromRoot,
    RequiredLink,
    SiteSchema,
    Verifier,
    Website,
    build_site_schema,
)
from repro.struql import (
    QueryEngine,
    QueryResult,
    SkolemRegistry,
    evaluate,
    parse_query,
)
from repro.templates import HtmlGenerator, TemplateSet, parse_template
from repro.wrappers import (
    BibTexWrapper,
    HtmlWrapper,
    RelationalWrapper,
    StructuredFileWrapper,
    XmlWrapper,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "AtomType",
    "BibTexWrapper",
    "ConstraintViolation",
    "DDLError",
    "DataSource",
    "Database",
    "DynamicSite",
    "DynamicSiteServer",
    "Edge",
    "Graph",
    "GraphIndex",
    "GraphStatistics",
    "HtmlGenerator",
    "HtmlWrapper",
    "LazySiteGraph",
    "LimitedAccessSource",
    "Mediator",
    "Oid",
    "QueryEngine",
    "QueryResult",
    "ReachableFromRoot",
    "RelationalWrapper",
    "Repository",
    "RequiredLink",
    "SiteSchema",
    "SkolemRegistry",
    "StruQLError",
    "StruQLSemanticError",
    "StruQLSyntaxError",
    "StructuredFileWrapper",
    "StrudelError",
    "TemplateError",
    "TemplateSet",
    "TemplateSyntaxError",
    "Verifier",
    "Website",
    "WrapperError",
    "XmlWrapper",
    "build_site_schema",
    "evaluate",
    "parse_ddl",
    "parse_ddl_file",
    "parse_query",
    "parse_template",
    "write_ddl",
    "__version__",
]
