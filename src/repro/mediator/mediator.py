"""The mediator: GAV data integration, warehoused or virtual.

Paper section 2.3: STRUDEL's mediator "supports data integration by
providing a uniform view of all underlying data".  Two design questions
are resolved exactly as the paper resolves them:

* **warehousing vs virtual** — the prototype warehouses ("the result of
  data integration is stored in STRUDEL's data repository"), but "the
  architecture can accommodate either approach"; both modes are
  implemented here and benchmark A4 compares them;
* **GAV vs LAV** — GAV: "for each relation R in the mediated schema, a
  query over the source relations specifies how to obtain R's tuples".
  Here a *mapping* is a StruQL query whose ``input`` names a source and
  whose ``output`` is the mediated graph; all mappings share one Skolem
  registry, so objects from different sources unify when the mappings
  mint them with the same Skolem function and key (the classic GAV
  object-fusion idiom).

:meth:`Mediator.warehouse` loads every source, runs every mapping, and
caches the mediated graph until :meth:`Mediator.refresh`.
:meth:`Mediator.virtual_view` recomputes from live sources on every
call — always fresh, always paying the integration cost.
:meth:`Mediator.staleness` reports how many source updates the current
warehouse has not seen (benchmark A4's staleness measure).
"""

from __future__ import annotations

from repro.errors import MediatorError
from repro.graph.model import Graph
from repro.obs.queries import fingerprint
from repro.obs.trace import emit_event, get_recorder
from repro.repository.repository import Repository
from repro.struql.ast import Query
from repro.struql.evaluator import QueryEngine
from repro.struql.parser import parse_query
from repro.struql.skolem import SkolemRegistry
from repro.mediator.sources import DataSource


class Mediator:
    """Integrates several sources into one mediated data graph."""

    def __init__(self, mediated_name: str = "data",
                 engine: QueryEngine | None = None) -> None:
        self.mediated_name = mediated_name
        self.engine = engine or QueryEngine()
        self._sources: dict[str, DataSource] = {}
        self._mappings: list[Query] = []
        self._warehouse: Graph | None = None
        self._warehouse_versions: dict[str, int] = {}
        #: Counters for benchmarking the two integration modes.
        self.stats = {"warehouse_builds": 0, "virtual_builds": 0}

    # -- configuration ------------------------------------------------------------

    def add_source(self, source: DataSource) -> DataSource:
        """Register a source; returns it for chaining."""
        self._sources[source.name] = source
        return source

    def source(self, name: str) -> DataSource:
        """Fetch a registered source by name."""
        try:
            return self._sources[name]
        except KeyError:
            raise MediatorError(f"unknown source {name!r}") from None

    def add_mapping(self, query: Query | str) -> Query:
        """Register a GAV mapping (input = a source, output = mediated).

        The mapping's input must name a registered source and its output
        must be the mediated graph's name.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if query.input_name not in self._sources:
            raise MediatorError(
                f"mapping reads unknown source {query.input_name!r}")
        if query.output_name != self.mediated_name:
            raise MediatorError(
                f"mapping must output {self.mediated_name!r}, "
                f"not {query.output_name!r}")
        self._mappings.append(query)
        return query

    def sources(self) -> list[str]:
        """Sorted names of registered sources."""
        return sorted(self._sources)

    # -- integration --------------------------------------------------------------

    def _integrate(self) -> Graph:
        """Load every source and run every mapping into a fresh graph."""
        if not self._mappings:
            raise MediatorError("no GAV mappings registered")
        recorder = get_recorder()
        mediated = Graph(self.mediated_name)
        skolem = SkolemRegistry()
        with recorder.span("mediator.integrate",
                           output=self.mediated_name,
                           mappings=len(self._mappings)):
            for mapping in self._mappings:
                with recorder.span("mediator.fetch",
                                   source=mapping.input_name) as span:
                    source_graph = self.source(mapping.input_name).load()
                    span.set(nodes=source_graph.node_count,
                             edges=source_graph.edge_count)
                    emit_event("info", "mediator.fetch",
                               source=mapping.input_name,
                               nodes=source_graph.node_count,
                               edges=source_graph.edge_count)
                with recorder.span("mediator.map",
                                   source=mapping.input_name,
                                   fingerprint=fingerprint(mapping)):
                    self.engine.evaluate(mapping, source_graph,
                                         output=mediated, skolem=skolem)
        return mediated

    def _count_build(self, kind: str) -> None:
        self.stats[kind] += 1
        get_recorder().metrics.counter(f"mediator.{kind}").inc()

    def warehouse(self) -> Graph:
        """The warehoused mediated graph (built once, then cached)."""
        if self._warehouse is None:
            self._warehouse = self._integrate()
            self._warehouse_versions = {
                name: src.version for name, src in self._sources.items()}
            self._count_build("warehouse_builds")
        return self._warehouse

    def refresh(self) -> Graph:
        """Rebuild the warehouse from current source contents."""
        self._warehouse = None
        return self.warehouse()

    def staleness(self) -> int:
        """Source updates the warehouse has not incorporated."""
        if self._warehouse is None:
            return 0
        return sum(src.version - self._warehouse_versions.get(name, 0)
                   for name, src in self._sources.items())

    def virtual_view(self) -> Graph:
        """A freshly integrated graph (virtual mode: no caching)."""
        self._count_build("virtual_builds")
        return self._integrate()

    # -- repository plumbing ---------------------------------------------------------

    def store_warehouse(self, repository: Repository) -> Graph:
        """Materialize the warehouse into a repository (the prototype's
        behaviour: integration results live in the data repository)."""
        graph = self.warehouse()
        repository.store(graph)
        return graph
