"""Data sources for the mediator.

A :class:`DataSource` pairs a name with a loader producing a graph and a
version counter so the mediator can detect updates cheaply ("the data in
the sources may change frequently", section 2.3).

:class:`LimitedAccessSource` models the paper's observation that
semistructured sources "often require that some inputs be given to
access the data" (section 2.4): loading without the required parameters
raises :class:`~repro.errors.AccessPatternError`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

from repro.errors import AccessPatternError, MediatorError
from repro.graph.model import Graph
from repro.obs.lineage import SourceRecord, get_lineage, \
    graph_content_hash
from repro.obs.trace import emit_event, get_recorder

#: Most recent fetch stamps per source, kept even when lineage is off
#: so the ``/debug`` snapshot can always answer "what did we load,
#: when, and did its content change?".
_FETCH_LIMIT = 256
_FETCHES: "OrderedDict[str, dict]" = OrderedDict()
_FETCH_LOCK = threading.Lock()


def record_fetch(name: str, kind: str, content_hash: str,
                 nodes: int, edges: int, version: int = 0,
                 fetched_at: float | None = None) -> SourceRecord:
    """Stamp one source fetch (always), feed lineage when enabled."""
    fetched_at = time.time() if fetched_at is None else fetched_at
    stamp = {"source": name, "kind": kind, "fetched_at": fetched_at,
             "content_hash": content_hash, "nodes": nodes,
             "edges": edges, "version": version}
    with _FETCH_LOCK:
        _FETCHES[name] = stamp
        _FETCHES.move_to_end(name)
        while len(_FETCHES) > _FETCH_LIMIT:
            _FETCHES.popitem(last=False)
    record = SourceRecord(source=name, kind=kind, fetched_at=fetched_at,
                          content_hash=content_hash, nodes=nodes,
                          edges=edges, version=version)
    lineage = get_lineage()
    if lineage.enabled:
        lineage.record_source(record)
    return record


def recent_fetches() -> list[dict]:
    """Fetch stamps for every recently loaded source (newest last)."""
    with _FETCH_LOCK:
        return [dict(stamp) for stamp in _FETCHES.values()]

#: Produces a source's current graph.  Parameterless for ordinary
#: sources; limited-access sources receive keyword parameters.
Loader = Callable[..., Graph]


class DataSource:
    """One external source: a named, versioned graph loader."""

    def __init__(self, name: str, loader: Loader) -> None:
        if not name:
            raise MediatorError("a data source needs a name")
        self.name = name
        self._loader = loader
        self.version = 0
        self.load_count = 0
        self.last_fetched_at: float | None = None
        self.last_content_hash: str | None = None

    @property
    def kind(self) -> str:
        """The wrapper kind backing this source (for provenance).

        A loader may declare ``wrapper_kind``; bound wrapper methods
        expose their wrapper's ``kind``; plain functions fall back to
        their name.
        """
        loader = self._loader
        declared = getattr(loader, "wrapper_kind", None)
        if declared:
            return str(declared)
        owner = getattr(loader, "__self__", None)
        if owner is not None and getattr(owner, "kind", None):
            return str(owner.kind)
        return getattr(loader, "__name__", type(loader).__name__)

    def load(self, **parameters) -> Graph:
        """Fetch the source's current contents as a graph."""
        self.load_count += 1
        recorder = get_recorder()
        with recorder.span("source.load", source=self.name):
            graph = self._loader(**parameters)
            emit_event("debug", "source.load", source=self.name,
                       version=self.version, load_count=self.load_count)
        recorder.metrics.counter("mediator.source_loads").inc()
        graph.name = self.name
        self.last_content_hash = graph_content_hash(graph)
        self.last_fetched_at = time.time()
        record_fetch(self.name, self.kind, self.last_content_hash,
                     graph.node_count, graph.edge_count,
                     version=self.version,
                     fetched_at=self.last_fetched_at)
        lineage = get_lineage()
        if lineage.enabled:
            lineage.record_source_nodes(self.name, graph)
        return graph

    def touch(self) -> None:
        """Mark the source updated (bumps the version counter)."""
        self.version += 1

    def __repr__(self) -> str:
        return f"DataSource({self.name!r}, version={self.version})"


class LimitedAccessSource(DataSource):
    """A source that can only be read with certain inputs bound."""

    def __init__(self, name: str, loader: Loader,
                 required: tuple[str, ...]) -> None:
        super().__init__(name, loader)
        self.required = tuple(required)

    def load(self, **parameters) -> Graph:
        missing = [r for r in self.required if r not in parameters]
        if missing:
            raise AccessPatternError(
                f"source {self.name!r} requires inputs "
                f"{', '.join(missing)}")
        return super().load(**parameters)
