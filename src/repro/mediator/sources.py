"""Data sources for the mediator.

A :class:`DataSource` pairs a name with a loader producing a graph and a
version counter so the mediator can detect updates cheaply ("the data in
the sources may change frequently", section 2.3).

:class:`LimitedAccessSource` models the paper's observation that
semistructured sources "often require that some inputs be given to
access the data" (section 2.4): loading without the required parameters
raises :class:`~repro.errors.AccessPatternError`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AccessPatternError, MediatorError
from repro.graph.model import Graph
from repro.obs.trace import emit_event, get_recorder

#: Produces a source's current graph.  Parameterless for ordinary
#: sources; limited-access sources receive keyword parameters.
Loader = Callable[..., Graph]


class DataSource:
    """One external source: a named, versioned graph loader."""

    def __init__(self, name: str, loader: Loader) -> None:
        if not name:
            raise MediatorError("a data source needs a name")
        self.name = name
        self._loader = loader
        self.version = 0
        self.load_count = 0

    def load(self, **parameters) -> Graph:
        """Fetch the source's current contents as a graph."""
        self.load_count += 1
        recorder = get_recorder()
        with recorder.span("source.load", source=self.name):
            graph = self._loader(**parameters)
            emit_event("debug", "source.load", source=self.name,
                       version=self.version, load_count=self.load_count)
        recorder.metrics.counter("mediator.source_loads").inc()
        graph.name = self.name
        return graph

    def touch(self) -> None:
        """Mark the source updated (bumps the version counter)."""
        self.version += 1

    def __repr__(self) -> str:
        return f"DataSource({self.name!r}, version={self.version})"


class LimitedAccessSource(DataSource):
    """A source that can only be read with certain inputs bound."""

    def __init__(self, name: str, loader: Loader,
                 required: tuple[str, ...]) -> None:
        super().__init__(name, loader)
        self.required = tuple(required)

    def load(self, **parameters) -> Graph:
        missing = [r for r in self.required if r not in parameters]
        if missing:
            raise AccessPatternError(
                f"source {self.name!r} requires inputs "
                f"{', '.join(missing)}")
        return super().load(**parameters)
