"""GAV mediator for data integration (paper section 2.3)."""

from repro.mediator.mediator import Mediator
from repro.mediator.sources import DataSource, LimitedAccessSource, Loader

__all__ = ["DataSource", "LimitedAccessSource", "Loader", "Mediator"]
