"""Parser for the HTML-template language.

Plain HTML passes through untouched; the parser recognizes the directive
tags case-insensitively:

.. code-block:: text

    <SFMT @expr [FORMAT=EMBED|LINK] [TAG="text"|TAG=@expr]>
    <SIF cond> ... [<SELSE> ...] </SIF>
    <SFOR var @expr [ORDER=ascend|descend] [KEY=attr] [DELIM="s"]> ... </SFOR>
    <SFMTLIST @expr [FORMAT=...] [TAG=...] [ORDER=...] [KEY=...]
              [DELIM="s"] [WRAP=UL|OL]>

Conditions follow Fig 6's EBNF: comparisons with ``= != < <= > >=``
between attribute expressions and constants (``NULL`` tests absence),
combined with ``AND``/``OR``/``NOT`` and parentheses.  Because ``>``
terminates the directive tag, comparisons using ``<``/``>`` must be
parenthesized: ``<SIF (@year > 1997)>``; a tag ends at the first ``>``
at parenthesis depth zero outside a quoted string.
"""

from __future__ import annotations

import re

from repro.errors import TemplateSyntaxError
from repro.graph.values import Atom
from repro.templates.ast import (
    AndCond,
    AttrExpr,
    CmpCond,
    Cond,
    Constant,
    ExistsCond,
    ForExpr,
    FormatExpr,
    IfExpr,
    ListExpr,
    NotCondT,
    Null,
    OrCond,
    Template,
    TemplateNode,
    Text,
)

_DIRECTIVE = re.compile(r"<(/?)(SFMTLIST|SFMT|SIF|SELSE|SFOR)\b",
                        re.IGNORECASE)

_ORDER_VALUES = ("ascend", "descend")


class _Tag:
    """One scanned directive tag: its kind and inner text."""

    def __init__(self, closing: bool, kind: str, body: str, start: int,
                 end: int, line: int) -> None:
        self.closing = closing
        self.kind = kind.upper()
        self.body = body
        self.start = start
        self.end = end
        self.line = line


def _find_tag_end(text: str, start: int, line: int) -> int:
    """Index just past the ``>`` ending a directive tag."""
    depth = 0
    i = start
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            i += 1
            while i < n and text[i] != '"':
                i += 1
            if i >= n:
                raise TemplateSyntaxError("unterminated string in tag", line)
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == ">" and depth == 0:
            return i + 1
        i += 1
    raise TemplateSyntaxError("unterminated directive tag", line)


def _scan(text: str) -> list[object]:
    """Split template text into Text runs and _Tag markers."""
    out: list[object] = []
    pos = 0
    for match in _DIRECTIVE.finditer(text):
        if match.start() < pos:
            continue  # inside a previously consumed tag
        if match.start() > pos:
            out.append(Text(text[pos:match.start()]))
        line = text.count("\n", 0, match.start()) + 1
        closing = match.group(1) == "/"
        kind = match.group(2)
        end = _find_tag_end(text, match.end(), line)
        body = text[match.end():end - 1].strip()
        out.append(_Tag(closing, kind, body, match.start(), end, line))
        pos = end
    if pos < len(text):
        out.append(Text(text[pos:]))
    return out


class TemplateParser:
    """Builds a :class:`Template` from directive-scanned pieces."""

    def __init__(self, name: str, text: str) -> None:
        self._name = name
        self._source = text
        self._pieces = _scan(text)
        self._pos = 0

    def parse(self) -> Template:
        nodes = self._parse_nodes(stop=None)
        if self._pos < len(self._pieces):
            piece = self._pieces[self._pos]
            assert isinstance(piece, _Tag)
            raise TemplateSyntaxError(
                f"unexpected closing tag </{piece.kind}>", piece.line)
        return Template(self._name, nodes, source=self._source)

    def _parse_nodes(self, stop: str | None) -> list[TemplateNode]:
        nodes: list[TemplateNode] = []
        while self._pos < len(self._pieces):
            piece = self._pieces[self._pos]
            if isinstance(piece, Text):
                nodes.append(piece)
                self._pos += 1
                continue
            assert isinstance(piece, _Tag)
            if piece.closing or piece.kind == "SELSE":
                if stop is None:
                    if piece.kind == "SELSE":
                        raise TemplateSyntaxError(
                            "<SELSE> outside <SIF>", piece.line)
                    raise TemplateSyntaxError(
                        f"unmatched closing tag </{piece.kind}>", piece.line)
                return nodes
            self._pos += 1
            if piece.kind == "SFMT":
                nodes.append(self._parse_sfmt(piece))
            elif piece.kind == "SFMTLIST":
                nodes.append(self._parse_sfmtlist(piece))
            elif piece.kind == "SIF":
                nodes.append(self._parse_sif(piece))
            elif piece.kind == "SFOR":
                nodes.append(self._parse_sfor(piece))
            else:
                raise TemplateSyntaxError(
                    f"unexpected directive {piece.kind}", piece.line)
        return nodes

    # -- block closers ------------------------------------------------------------

    def _consume_closer(self, kind: str, line: int) -> None:
        if self._pos >= len(self._pieces):
            raise TemplateSyntaxError(f"missing </{kind}>", line)
        piece = self._pieces[self._pos]
        if not isinstance(piece, _Tag) or not piece.closing \
                or piece.kind != kind:
            raise TemplateSyntaxError(f"missing </{kind}>", line)
        self._pos += 1

    def _parse_sif(self, tag: _Tag) -> IfExpr:
        cond = _CondParser(tag.body, tag.line).parse()
        then = self._parse_nodes(stop="SIF")
        orelse: list[TemplateNode] = []
        if self._pos < len(self._pieces):
            piece = self._pieces[self._pos]
            if isinstance(piece, _Tag) and piece.kind == "SELSE" \
                    and not piece.closing:
                self._pos += 1
                orelse = self._parse_nodes(stop="SIF")
        self._consume_closer("SIF", tag.line)
        return IfExpr(cond, then, orelse)

    def _parse_sfor(self, tag: _Tag) -> ForExpr:
        words = _Words(tag.body, tag.line)
        var = words.take_identifier("loop variable")
        # Optional 'IN' keyword for readability.
        if words.peek_word() and words.peek_word().upper() == "IN":
            words.take_word()
        expr = words.take_attr_expr()
        options = words.take_options(("ORDER", "KEY", "DELIM"))
        words.finish()
        body = self._parse_nodes(stop="SFOR")
        self._consume_closer("SFOR", tag.line)
        return ForExpr(var=var, expr=expr, body=body,
                       order=_order(options, tag.line),
                       key=options.get("KEY"),
                       delim=options.get("DELIM"))

    def _parse_sfmt(self, tag: _Tag) -> FormatExpr:
        words = _Words(tag.body, tag.line)
        expr = words.take_attr_expr()
        options = words.take_options(("FORMAT", "TAG"))
        words.finish()
        return FormatExpr(expr=expr,
                          format=_format(options, tag.line),
                          tag=options.get("TAG"))

    def _parse_sfmtlist(self, tag: _Tag) -> ListExpr:
        words = _Words(tag.body, tag.line)
        expr = words.take_attr_expr()
        options = words.take_options(
            ("FORMAT", "TAG", "ORDER", "KEY", "DELIM", "WRAP"))
        words.finish()
        wrap = options.get("WRAP")
        if isinstance(wrap, str):
            wrap = wrap.upper()
            if wrap not in ("UL", "OL", "NONE"):
                raise TemplateSyntaxError(
                    f"WRAP must be UL, OL or NONE, got {wrap!r}", tag.line)
            if wrap == "NONE":
                wrap = None
        return ListExpr(expr=expr,
                        format=_format(options, tag.line),
                        tag=options.get("TAG"),
                        order=_order(options, tag.line),
                        key=options.get("KEY"),
                        delim=options.get("DELIM"),
                        wrap=wrap)


def _order(options: dict, line: int) -> str | None:
    order = options.get("ORDER")
    if order is None:
        return None
    if not isinstance(order, str) or order.lower() not in _ORDER_VALUES:
        raise TemplateSyntaxError(
            f"ORDER must be ascend or descend, got {order!r}", line)
    return order.lower()


def _format(options: dict, line: int) -> str | None:
    fmt = options.get("FORMAT")
    if fmt is None:
        return None
    if not isinstance(fmt, str) or fmt.upper() not in ("EMBED", "LINK"):
        raise TemplateSyntaxError(
            f"FORMAT must be EMBED or LINK, got {fmt!r}", line)
    return fmt.upper()


class _Words:
    """Tokenizer for directive-tag bodies: words, options, @-exprs."""

    _TOKEN = re.compile(
        r'\s*(?:(@[A-Za-z_][\w.-]*)|"((?:[^"\\]|\\.)*)"|'
        r'([A-Za-z_][\w-]*)|(=)|(\()|(\))|(-?\d+(?:\.\d+)?)|'
        r'(!=|<=|>=|<|>))')

    def __init__(self, body: str, line: int) -> None:
        self.body = body
        self.line = line
        self.pos = 0

    def _match(self) -> re.Match | None:
        if self.pos >= len(self.body):
            return None
        match = self._TOKEN.match(self.body, self.pos)
        if match is None:
            raise TemplateSyntaxError(
                f"cannot tokenize tag body near "
                f"{self.body[self.pos:self.pos + 12]!r}", self.line)
        return match

    def peek_word(self) -> str | None:
        save = self.pos
        match = self._match()
        self.pos = save
        if match and match.group(3):
            return match.group(3)
        return None

    def take_word(self) -> str:
        match = self._match()
        if match is None or not match.group(3):
            raise TemplateSyntaxError("expected a word", self.line)
        self.pos = match.end()
        return match.group(3)

    def take_identifier(self, what: str) -> str:
        match = self._match()
        if match is None or not match.group(3):
            raise TemplateSyntaxError(f"expected {what}", self.line)
        self.pos = match.end()
        return match.group(3)

    def take_attr_expr(self) -> AttrExpr:
        match = self._match()
        if match is None or not match.group(1):
            raise TemplateSyntaxError(
                "expected an attribute expression (@attr or @var.attr)",
                self.line)
        self.pos = match.end()
        return AttrExpr(tuple(match.group(1)[1:].split(".")))

    def take_options(self, allowed: tuple[str, ...]) -> dict[str, object]:
        options: dict[str, object] = {}
        while True:
            save = self.pos
            match = self._match()
            if match is None or not match.group(3):
                self.pos = save
                break
            name = match.group(3).upper()
            if name not in allowed:
                raise TemplateSyntaxError(
                    f"unknown option {match.group(3)!r} "
                    f"(allowed: {', '.join(allowed)})", self.line)
            self.pos = match.end()
            eq = self._match()
            if eq is None or not eq.group(4):
                raise TemplateSyntaxError(
                    f"option {name} needs '='", self.line)
            self.pos = eq.end()
            value = self._match()
            if value is None:
                raise TemplateSyntaxError(
                    f"option {name} needs a value", self.line)
            self.pos = value.end()
            if value.group(1):
                options[name] = AttrExpr(
                    tuple(value.group(1)[1:].split(".")))
            elif value.group(2) is not None:
                options[name] = value.group(2).replace('\\"', '"')
            elif value.group(3):
                options[name] = value.group(3)
            else:
                raise TemplateSyntaxError(
                    f"bad value for option {name}", self.line)
        return options

    def finish(self) -> None:
        if self.body[self.pos:].strip():
            raise TemplateSyntaxError(
                f"trailing content in tag: {self.body[self.pos:]!r}",
                self.line)


class _CondParser:
    """Recursive-descent parser for Fig 6's CondExpr grammar."""

    def __init__(self, body: str, line: int) -> None:
        self._words = _Words(body, line)
        self.line = line

    def parse(self) -> Cond:
        cond = self._parse_or()
        self._words.finish()
        return cond

    def _parse_or(self) -> Cond:
        left = self._parse_and()
        while self._at_keyword("OR"):
            self._words.take_word()
            left = OrCond(left, self._parse_and())
        return left

    def _parse_and(self) -> Cond:
        left = self._parse_unary()
        while self._at_keyword("AND"):
            self._words.take_word()
            left = AndCond(left, self._parse_unary())
        return left

    def _at_keyword(self, word: str) -> bool:
        peeked = self._words.peek_word()
        return peeked is not None and peeked.upper() == word

    def _parse_unary(self) -> Cond:
        if self._at_keyword("NOT"):
            self._words.take_word()
            return NotCondT(self._parse_unary())
        match = self._words._match()
        if match is None:
            raise TemplateSyntaxError("expected a condition", self.line)
        if match.group(5):  # '('
            self._words.pos = match.end()
            inner = self._parse_or()
            closer = self._words._match()
            if closer is None or not closer.group(6):
                raise TemplateSyntaxError("missing ')'", self.line)
            self._words.pos = closer.end()
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Cond:
        left = self._parse_expr()
        match = self._words._match()
        op: str | None = None
        if match is not None:
            if match.group(4):
                op = "="
                self._words.pos = match.end()
            elif match.group(8):
                op = match.group(8)
                self._words.pos = match.end()
        if op is None:
            if isinstance(left, AttrExpr):
                return ExistsCond(left)
            raise TemplateSyntaxError(
                "a constant alone is not a condition", self.line)
        right = self._parse_expr()
        return CmpCond(left, op, right)

    def _parse_expr(self):
        match = self._words._match()
        if match is None:
            raise TemplateSyntaxError("expected an expression", self.line)
        self._words.pos = match.end()
        if match.group(1):
            return AttrExpr(tuple(match.group(1)[1:].split(".")))
        if match.group(2) is not None:
            return Constant(Atom.string(match.group(2).replace('\\"', '"')))
        if match.group(3):
            word = match.group(3).upper()
            if word == "NULL":
                return Null()
            if word in ("TRUE", "FALSE"):
                return Constant(Atom.bool(word == "TRUE"))
            raise TemplateSyntaxError(
                f"unexpected word {match.group(3)!r} in condition",
                self.line)
        if match.group(7):
            text = match.group(7)
            if "." in text:
                return Constant(Atom.float(float(text)))
            return Constant(Atom.int(int(text)))
        raise TemplateSyntaxError("expected an expression", self.line)


def parse_template(name: str, text: str) -> Template:
    """Compile template ``text`` under ``name``."""
    return TemplateParser(name, text).parse()
