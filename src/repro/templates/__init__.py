"""HTML-template language and generator (paper sections 2.5 and 4)."""

from repro.templates.ast import (
    AttrExpr,
    CmpCond,
    Constant,
    ExistsCond,
    ForExpr,
    FormatExpr,
    IfExpr,
    ListExpr,
    Null,
    Template,
    Text,
)
from repro.templates.formats import anchor, escape, realize_atom
from repro.templates.generator import (
    TEMPLATE_ATTRIBUTE,
    HtmlGenerator,
    TemplateSet,
)
from repro.templates.parser import TemplateParser, parse_template

__all__ = [
    "AttrExpr",
    "CmpCond",
    "Constant",
    "ExistsCond",
    "ForExpr",
    "FormatExpr",
    "HtmlGenerator",
    "IfExpr",
    "ListExpr",
    "Null",
    "TEMPLATE_ATTRIBUTE",
    "Template",
    "TemplateParser",
    "TemplateSet",
    "Text",
    "anchor",
    "escape",
    "parse_template",
    "realize_atom",
]
