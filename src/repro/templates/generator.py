"""The HTML generator (paper sections 2.5 and 4).

    The HTML Generator is responsible to produce the HTML code for every
    page in the Web site.  In order to do so, we associate an HTML
    template with every node in the site graph. [...] Given an object
    and its HTML template, the HTML generator interprets the HTML
    template, replacing template expressions by the HTML values of the
    object's attributes.

Two classes:

* :class:`TemplateSet` — the template library with the paper's
  three-level selection rule: (1) an object-specific template, (2) the
  template named by the object's ``HTML-template`` attribute, (3) the
  template of the object's Skolem function or collection.
* :class:`HtmlGenerator` — renders objects to HTML and materializes the
  browsable site on disk.  "The choice to realize internal objects as
  pages or as page components is delayed until HTML generation": an
  object whose selected template is registered ``as_page`` renders as a
  separate page, referenced by links; others embed.  ``FORMAT=EMBED`` /
  ``FORMAT=LINK`` override per reference, exactly as Fig 7's
  AbstractsPage template embeds the AbstractPage objects that are pages
  everywhere else.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import CoercionError, MissingTemplateError, TemplateEvalError
from repro.graph.model import Graph, GraphObject, Oid
from repro.graph.values import Atom
from repro.obs.lineage import get_lineage
from repro.obs.trace import get_recorder, timed
from repro.templates.ast import (
    AndCond,
    AttrExpr,
    CmpCond,
    Cond,
    Constant,
    ExistsCond,
    ForExpr,
    FormatExpr,
    IfExpr,
    ListExpr,
    NotCondT,
    Null,
    OrCond,
    Template,
    TemplateNode,
    Text,
)
from repro.templates.formats import FileLoader, anchor, escape, realize_atom
from repro.templates.parser import parse_template

#: Attribute naming an object's own template (selection rule 2).
TEMPLATE_ATTRIBUTE = "HTML-template"

#: Attributes probed, in order, for a default link text.
_TITLE_ATTRIBUTES = ("title", "Title", "name", "Name", "Year", "year")


@dataclass
class _Entry:
    template: Template
    as_page: bool


class TemplateSet:
    """A named library of compiled templates.

    Names are matched against, in order: the object's oid name, the
    value of its ``HTML-template`` attribute, its Skolem function name,
    and each of its collections.
    """

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}

    def add(self, name: str, text: str, as_page: bool = True) -> Template:
        """Compile and register ``text`` under ``name``."""
        template = parse_template(name, text)
        self._entries[name] = _Entry(template, as_page)
        return template

    def names(self) -> list[str]:
        """Sorted registered template names."""
        return sorted(self._entries)

    def get(self, name: str) -> Template | None:
        """The template registered under ``name``, if any."""
        entry = self._entries.get(name)
        return entry.template if entry else None

    def is_page_template(self, name: str) -> bool:
        """Whether ``name`` renders as its own page (vs. a component)."""
        entry = self._entries.get(name)
        return entry.as_page if entry else False

    def total_lines(self) -> int:
        """Total source lines across templates (the paper's '380 lines
        of templates' metric)."""
        return sum(len(e.template.source.splitlines())
                   for e in self._entries.values())

    # -- selection --------------------------------------------------------------

    def _candidates(self, graph: Graph, oid: Oid) -> list[str]:
        names = [oid.name]
        attr = graph.get_one(oid, TEMPLATE_ATTRIBUTE)
        if isinstance(attr, Atom):
            names.append(str(attr.value))
        if oid.skolem_fn:
            names.append(oid.skolem_fn)
        names.extend(graph.collections_of(oid))
        return names

    def select(self, graph: Graph, oid: Oid) -> tuple[Template, bool] | None:
        """The (template, as_page) pair for ``oid``, or ``None``."""
        for name in self._candidates(graph, oid):
            entry = self._entries.get(name)
            if entry is not None:
                return entry.template, entry.as_page
        return None


class HtmlGenerator:
    """Interprets templates over a site graph and emits the site."""

    def __init__(self, graph: Graph, templates: TemplateSet,
                 loader: FileLoader | None = None) -> None:
        self.graph = graph
        self.templates = templates
        self.loader = loader
        # Per-thread render stacks: parallel page rendering must not
        # see another worker's embedding chain as a cycle.
        self._local = threading.local()

    @property
    def _render_stack(self) -> list[Oid]:
        stack = getattr(self._local, "render_stack", None)
        if stack is None:
            stack = self._local.render_stack = []
        return stack

    # -- page bookkeeping ----------------------------------------------------------

    def is_page(self, oid: Oid) -> bool:
        """Whether ``oid`` is realized as a separate page by default."""
        selected = self.templates.select(self.graph, oid)
        return selected is not None and selected[1]

    def pages(self) -> list[Oid]:
        """All site-graph nodes realized as pages."""
        return [node for node in self.graph.nodes() if self.is_page(node)]

    def url_for(self, oid: Oid) -> str:
        """The relative URL of a page object."""
        safe = "".join(ch if (ch.isalnum() or ch in "-_") else "_"
                       for ch in oid.name)
        return f"{safe or 'page'}.html"

    def template_for(self, oid: Oid) -> str | None:
        """The name of the template that would render ``oid``."""
        selected = self.templates.select(self.graph, oid)
        return selected[0].name if selected else None

    def record_lineage(self, pages: list[Oid] | None = None) -> int:
        """Attach page -> site-graph node -> template lineage edges.

        Covers *all* pages by default (not just a dirty subset), so an
        incremental rebuild keeps cache-skipped pages resolvable.
        """
        lineage = get_lineage()
        if not lineage.enabled:
            return 0
        targets = self.pages() if pages is None else pages
        for page in targets:
            lineage.record_page(self.url_for(page), page,
                                self.template_for(page) or "")
        return len(targets)

    # -- rendering ---------------------------------------------------------------

    def render(self, oid: Oid) -> str:
        """The full HTML value of one object (page or component).

        Top-level renders (not embedded components) are timed into the
        ``templates.render_seconds`` histogram and a ``render.page``
        span.
        """
        if self._render_stack:
            return self._do_render(oid)
        with timed("render.page", page=str(oid)) as span:
            html = self._do_render(oid)
        get_recorder().metrics.histogram(
            "templates.render_seconds").observe(span.seconds)
        return html

    def _do_render(self, oid: Oid) -> str:
        selected = self.templates.select(self.graph, oid)
        if selected is None:
            raise MissingTemplateError(oid)
        template, _ = selected
        if oid in self._render_stack:
            cycle = " -> ".join(str(o) for o in self._render_stack)
            raise TemplateEvalError(
                f"embedding cycle while rendering {oid}: {cycle}")
        self._render_stack.append(oid)
        try:
            return self._render_nodes(template.nodes, oid, {})
        finally:
            self._render_stack.pop()

    def generate_site(self, out_dir: str, jobs: int = 1,
                      pages: list[Oid] | None = None) -> dict[Oid, str]:
        """Write every page's HTML under ``out_dir``.

        Returns the mapping from page oid to written file path, in
        deterministic (sorted-by-oid) order regardless of parallelism.
        The result is the paper's "browsable Web site".

        ``jobs`` > 1 renders pages on a thread pool (render stacks are
        per-thread, so embedding-cycle detection stays per page); pass
        it only over a fully materialized graph — a
        :class:`~repro.site.incremental.LazySiteGraph` materializes
        pages on access and must not be mutated from several threads.
        ``pages`` restricts the build to a subset (the build cache's
        dirty set); by default every page renders.
        """
        os.makedirs(out_dir, exist_ok=True)
        targets = sorted(self.pages(), key=str) if pages is None \
            else sorted(pages, key=str)

        def emit(page: Oid) -> tuple[Oid, str]:
            path = os.path.join(out_dir, self.url_for(page))
            with get_recorder().span("site.build.page",
                                     page=str(page)) as page_span:
                html = self.render(page)
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(html)
                page_span.set(bytes=len(html))
            return page, path

        self.record_lineage()
        with get_recorder().span("site.generate_site", out_dir=out_dir,
                                 jobs=jobs) as span:
            if jobs > 1 and len(targets) > 1:
                with ThreadPoolExecutor(
                        max_workers=jobs,
                        thread_name_prefix="site-build") as pool:
                    written = dict(pool.map(emit, targets))
            else:
                written = dict(emit(page) for page in targets)
            span.set(pages=len(written))
        return written

    # -- node dispatch ----------------------------------------------------------

    def _render_nodes(self, nodes: list[TemplateNode], obj: Oid,
                      env: dict[str, GraphObject]) -> str:
        chunks: list[str] = []
        for node in nodes:
            if isinstance(node, Text):
                chunks.append(node.text)
            elif isinstance(node, FormatExpr):
                chunks.append(self._render_format(node, obj, env))
            elif isinstance(node, IfExpr):
                branch = node.then if self._eval_cond(node.cond, obj, env) \
                    else node.orelse
                chunks.append(self._render_nodes(branch, obj, env))
            elif isinstance(node, ForExpr):
                chunks.append(self._render_for(node, obj, env))
            elif isinstance(node, ListExpr):
                chunks.append(self._render_list(node, obj, env))
            else:
                raise TemplateEvalError(f"unknown template node {node!r}")
        return "".join(chunks)

    # -- attribute expressions --------------------------------------------------------

    def resolve(self, expr: AttrExpr, obj: Oid,
                env: dict[str, GraphObject]) -> list[GraphObject]:
        """All values of an attribute expression, in edge order."""
        first, *rest = expr.segments
        values: list[GraphObject]
        if first in env:
            values = [env[first]]
        else:
            values = self.graph.get(obj, first)
        for segment in rest:
            next_values: list[GraphObject] = []
            for value in values:
                if isinstance(value, Oid):
                    next_values.extend(self.graph.get(value, segment))
            values = next_values
        return values

    def _resolve_one(self, expr: AttrExpr, obj: Oid,
                     env: dict[str, GraphObject]) -> GraphObject | None:
        values = self.resolve(expr, obj, env)
        return values[0] if values else None

    # -- format expressions --------------------------------------------------------

    def _tag_text(self, tag, obj: Oid,
                  env: dict[str, GraphObject]) -> str | None:
        if tag is None:
            return None
        if isinstance(tag, str):
            return tag
        value = self._resolve_one(tag, obj, env)
        if value is None:
            return None
        if isinstance(value, Atom):
            return str(value.value)
        return self._default_title(value)

    def _default_title(self, oid: Oid) -> str:
        for attribute in _TITLE_ATTRIBUTES:
            value = self.graph.get_one(oid, attribute)
            if isinstance(value, Atom):
                return str(value.value)
        return oid.name

    def _render_format(self, node: FormatExpr, obj: Oid,
                       env: dict[str, GraphObject]) -> str:
        value = self._resolve_one(node.expr, obj, env)
        if value is None:
            return ""
        tag = self._tag_text(node.tag, obj, env)
        return self._realize(value, tag, node.format)

    def _realize(self, value: GraphObject, tag: str | None,
                 format: str | None) -> str:
        if isinstance(value, Atom):
            return realize_atom(value, tag=tag, format=format,
                                loader=self.loader)
        # Internal object: embed or link, default decided by page-ness.
        if format == "EMBED":
            return self.render(value)
        if format == "LINK" or self.is_page(value):
            return anchor(self.url_for(value),
                          tag or self._default_title(value))
        if self.templates.select(self.graph, value) is not None:
            return self.render(value)
        # No template at all: fall back to its title text.
        return escape(tag or self._default_title(value))

    # -- iteration ----------------------------------------------------------------

    def _sorted_values(self, values: list[GraphObject], order: str | None,
                       key: str | None) -> list[GraphObject]:
        if order is None:
            return values

        def sort_key(value: GraphObject):
            probe: GraphObject | None = value
            if isinstance(value, Oid) and key is not None:
                probe = self.graph.get_one(value, key)
            if isinstance(probe, Atom):
                return str(probe.value)
            if probe is None:
                return ""
            return str(probe)

        # Sort numerically when every key looks numeric, else lexically
        # (the paper's ORDER is lexicographic; numeric keys like years
        # sort identically either way at fixed width, but mixed-width
        # years deserve numeric order).
        keys = [sort_key(v) for v in values]
        try:
            numeric = [float(k) for k in keys]
            decorated = sorted(zip(numeric, range(len(values))))
        except ValueError:
            decorated = sorted(zip(keys, range(len(values))))
        ordered = [values[i] for _, i in decorated]
        if order == "descend":
            ordered.reverse()
        return ordered

    def _render_for(self, node: ForExpr, obj: Oid,
                    env: dict[str, GraphObject]) -> str:
        values = self._sorted_values(
            self.resolve(node.expr, obj, env), node.order, node.key)
        chunks: list[str] = []
        for i, value in enumerate(values):
            if i and node.delim is not None:
                chunks.append(node.delim)
            inner = dict(env)
            inner[node.var] = value
            chunks.append(self._render_nodes(node.body, obj, inner))
        return "".join(chunks)

    def _render_list(self, node: ListExpr, obj: Oid,
                     env: dict[str, GraphObject]) -> str:
        values = self._sorted_values(
            self.resolve(node.expr, obj, env), node.order, node.key)
        tag = self._tag_text(node.tag, obj, env)
        items = [self._realize(v, tag, node.format) for v in values]
        if node.wrap:
            element = node.wrap.lower()
            body = "".join(f"<li>{item}</li>" for item in items)
            return f"<{element}>{body}</{element}>"
        delim = node.delim if node.delim is not None else ", "
        return delim.join(items)

    # -- conditions ---------------------------------------------------------------

    def _eval_cond(self, cond: Cond, obj: Oid,
                   env: dict[str, GraphObject]) -> bool:
        if isinstance(cond, ExistsCond):
            return bool(self.resolve(cond.expr, obj, env))
        if isinstance(cond, AndCond):
            return self._eval_cond(cond.left, obj, env) and \
                self._eval_cond(cond.right, obj, env)
        if isinstance(cond, OrCond):
            return self._eval_cond(cond.left, obj, env) or \
                self._eval_cond(cond.right, obj, env)
        if isinstance(cond, NotCondT):
            return not self._eval_cond(cond.inner, obj, env)
        if isinstance(cond, CmpCond):
            return self._eval_cmp(cond, obj, env)
        raise TemplateEvalError(f"unknown condition {cond!r}")

    def _eval_cmp(self, cond: CmpCond, obj: Oid,
                  env: dict[str, GraphObject]) -> bool:
        left = self._expr_value(cond.left, obj, env)
        right = self._expr_value(cond.right, obj, env)
        null_involved = isinstance(cond.left, Null) or \
            isinstance(cond.right, Null)
        if null_involved:
            missing = left is None if isinstance(cond.right, Null) \
                else right is None
            if isinstance(cond.left, Null) and isinstance(cond.right, Null):
                missing = True
            if cond.op == "=":
                return missing
            if cond.op == "!=":
                return not missing
            return False
        if left is None or right is None:
            # Missing attribute: only != succeeds against a present value.
            return cond.op == "!="
        return self._compare_values(left, cond.op, right)

    def _expr_value(self, expr, obj: Oid,
                    env: dict[str, GraphObject]) -> GraphObject | None:
        if isinstance(expr, Null):
            return None
        if isinstance(expr, Constant):
            return expr.value
        if isinstance(expr, AttrExpr):
            return self._resolve_one(expr, obj, env)
        raise TemplateEvalError(f"unknown expression {expr!r}")

    def _compare_values(self, left: GraphObject, op: str,
                        right: GraphObject) -> bool:
        if isinstance(left, Oid) or isinstance(right, Oid):
            same = isinstance(left, Oid) and isinstance(right, Oid) \
                and left == right
            if op == "=":
                return same
            if op == "!=":
                return not same
            return False
        try:
            if op == "=":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left < right or left == right
            if op == ">":
                return right < left
            if op == ">=":
                return right < left or left == right
        except CoercionError:
            return op == "!="
        raise TemplateEvalError(f"unknown operator {op!r}")
