"""Abstract syntax of STRUDEL's HTML-template language (paper Fig 6).

A template is plain HTML text interleaved with three extension forms:

* the **format expression** ``<SFMT ...>`` maps an attribute expression
  to an HTML value;
* the **conditional** ``<SIF ...> ... <SELSE> ... </SIF>``;
* the **enumeration** ``<SFOR v ...> ... </SFOR>`` plus the common-idiom
  abbreviation ``<SFMTLIST ...>``.

Attribute expressions are ``@ID(.ID)*`` — a bounded traversal from the
current object (or a loop variable) through attribute edges, the paper's
"limited traversal of the site graph".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.graph.values import Atom


@dataclass(frozen=True)
class AttrExpr:
    """``@seg1.seg2...``: traversal through attributes.

    The first segment resolves against the loop-variable environment
    first, then as an attribute of the current object.
    """

    segments: tuple[str, ...]

    def __str__(self) -> str:
        return "@" + ".".join(self.segments)


@dataclass(frozen=True)
class Constant:
    """A literal constant in a condition (BOOL, INT, FLOAT, STRING)."""

    value: Atom

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Null:
    """The ``NULL`` constant: 'attribute absent'."""

    def __str__(self) -> str:
        return "NULL"


Expr = Union[AttrExpr, Constant, Null]


# -- conditions ---------------------------------------------------------------


@dataclass(frozen=True)
class CmpCond:
    """``expr op expr`` with dynamic coercion; ``= NULL`` tests absence."""

    left: Expr
    op: str
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class ExistsCond:
    """A bare attribute expression as condition: non-null test."""

    expr: AttrExpr

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class AndCond:
    left: "Cond"
    right: "Cond"

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class OrCond:
    left: "Cond"
    right: "Cond"

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class NotCondT:
    inner: "Cond"

    def __str__(self) -> str:
        return f"(NOT {self.inner})"


Cond = Union[CmpCond, ExistsCond, AndCond, OrCond, NotCondT]


# -- template nodes --------------------------------------------------------------


@dataclass
class Text:
    """A run of plain HTML passed through verbatim."""

    text: str


@dataclass
class FormatExpr:
    """``<SFMT @expr [FORMAT=EMBED|LINK] [TAG=...]>``.

    ``format`` overrides the type-specific realization rules (EMBED
    forces inlining an internal object; LINK forces an anchor).  ``tag``
    supplies the anchor text for link realizations.
    """

    expr: AttrExpr
    format: str | None = None          # "EMBED" | "LINK" | None
    tag: Union[str, AttrExpr, None] = None


@dataclass
class IfExpr:
    """``<SIF cond> then <SELSE> else </SIF>``."""

    cond: Cond
    then: list["TemplateNode"] = field(default_factory=list)
    orelse: list["TemplateNode"] = field(default_factory=list)


@dataclass
class ForExpr:
    """``<SFOR v @expr [ORDER=...] [KEY=...] [DELIM=...]> body </SFOR>``.

    Iterates over all values of the attribute expression, binding ``v``.
    ``ORDER`` sorts values ``ascend``/``descend``; ``KEY`` names the
    attribute of internal-object values used as the sort key; ``DELIM``
    is emitted between iterations.
    """

    var: str
    expr: AttrExpr
    body: list["TemplateNode"] = field(default_factory=list)
    order: str | None = None           # "ascend" | "descend" | None
    key: str | None = None
    delim: str | None = None


@dataclass
class ListExpr:
    """``<SFMTLIST @expr ...>`` — the paper's abbreviation for the
    common enumerate-and-format idiom, optionally wrapped in a list.

    Equivalent to ``<SFOR v @expr ...><LI><SFMT @v ...></SFOR>`` inside
    ``<UL>``/``<OL>`` when ``wrap`` is set, or a bare delimited
    enumeration when not.
    """

    expr: AttrExpr
    format: str | None = None
    tag: Union[str, AttrExpr, None] = None
    order: str | None = None
    key: str | None = None
    delim: str | None = None
    wrap: str | None = None            # "UL" | "OL" | None


TemplateNode = Union[Text, FormatExpr, IfExpr, ForExpr, ListExpr]


@dataclass
class Template:
    """A compiled template: name + node sequence."""

    name: str
    nodes: list[TemplateNode]
    source: str = ""

    def walk(self) -> list[TemplateNode]:
        """All nodes, preorder (for analysis and tests)."""
        out: list[TemplateNode] = []

        def visit(nodes: list[TemplateNode]) -> None:
            for node in nodes:
                out.append(node)
                if isinstance(node, IfExpr):
                    visit(node.then)
                    visit(node.orelse)
                elif isinstance(node, ForExpr):
                    visit(node.body)

        visit(self.nodes)
        return out
