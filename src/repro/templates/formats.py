"""Type-specific HTML realization rules (paper section 4).

    Format expressions are concise, because the HTML generator uses
    type-specific rules to determine an attribute's HTML value.  For
    most atomic values (integers, strings, URLs, HTML and text files),
    the attribute's HTML value is converted to a string and is embedded
    in the HTML template. [...] Some values, such as PostScript files,
    should not be realized as strings.  For these values, the HTML
    generator produces an appropriate link to the value.

Rules implemented:

========================  =============================================
atom type                 default realization
========================  =============================================
int, float, bool, string  escaped text
url                       anchor to the URL (text = tag or the URL)
text file                 file contents escaped (via the loader), else
                          the path as text
html file                 file contents inlined raw (it *is* HTML)
postscript file           anchor to the file (text = tag or the path)
image file                ``<img>`` tag
========================  =============================================

``FORMAT=LINK`` forces an anchor for any value; atoms have no meaningful
``FORMAT=EMBED`` override (they already embed where sensible).
"""

from __future__ import annotations

import html
from typing import Callable

from repro.graph.values import Atom, AtomType

#: Loads file contents for text/HTML embedding; returns None if the
#: file cannot be provided (the path is then shown as text).
FileLoader = Callable[[str], str | None]


def escape(text: str) -> str:
    """HTML-escape arbitrary text."""
    return html.escape(text, quote=True)


def anchor(href: str, text: str) -> str:
    """An ``<a>`` element."""
    return f'<a href="{escape(href)}">{escape(text)}</a>'


def realize_atom(atom: Atom, tag: str | None = None,
                 format: str | None = None,
                 loader: FileLoader | None = None) -> str:
    """The HTML value of an atomic value.

    ``tag`` is the anchor text for link realizations; ``format`` is the
    template's explicit FORMAT override (``"LINK"`` forces an anchor).
    """
    text = str(atom.value)
    if format == "LINK":
        return anchor(text, tag or text)
    if atom.type is AtomType.URL:
        return anchor(text, tag or text)
    if atom.type is AtomType.POSTSCRIPT_FILE:
        return anchor(text, tag or text)
    if atom.type is AtomType.IMAGE_FILE:
        alt = escape(tag) if tag else ""
        return f'<img src="{escape(text)}" alt="{alt}">'
    if atom.type is AtomType.HTML_FILE:
        contents = loader(text) if loader else None
        return contents if contents is not None else escape(text)
    if atom.type is AtomType.TEXT_FILE:
        contents = loader(text) if loader else None
        return escape(contents) if contents is not None else escape(text)
    return escape(text)
