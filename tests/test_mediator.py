"""The GAV mediator: warehousing, virtual views, staleness, access patterns."""

import pytest

from repro.errors import AccessPatternError, MediatorError
from repro.graph import Atom, Graph, Oid
from repro.mediator import DataSource, LimitedAccessSource, Mediator
from repro.repository import Repository


def _make_source(name: str, rows: list[tuple[str, int]]):
    """A source of Items(x) with a value attribute; mutable via list."""

    def load() -> Graph:
        graph = Graph(name)
        for key, value in rows:
            oid = Oid(f"{name}_{key}")
            graph.add_to_collection("Items", oid)
            graph.add_edge(oid, "key", Atom.string(key))
            graph.add_edge(oid, "value", Atom.int(value))
        return graph

    return DataSource(name, load)


MAPPING = """
input {src}
where Items(i), i -> l -> v
create Obj(i)
link Obj(i) -> l -> v
collect All(Obj(i))
output data
"""


@pytest.fixture
def mediator():
    med = Mediator("data")
    med.add_source(_make_source("alpha", [("a", 1), ("b", 2)]))
    med.add_source(_make_source("beta", [("c", 3)]))
    med.add_mapping(MAPPING.format(src="alpha"))
    med.add_mapping(MAPPING.format(src="beta"))
    return med


class TestMediator:
    def test_warehouse_integrates_all_sources(self, mediator):
        data = mediator.warehouse()
        assert len(data.collection("All")) == 3
        assert data.name == "data"

    def test_warehouse_cached(self, mediator):
        assert mediator.warehouse() is mediator.warehouse()
        assert mediator.stats["warehouse_builds"] == 1

    def test_virtual_always_fresh(self, mediator):
        one = mediator.virtual_view()
        two = mediator.virtual_view()
        assert one is not two
        assert mediator.stats["virtual_builds"] == 2

    def test_staleness_counts_source_updates(self, mediator):
        mediator.warehouse()
        assert mediator.staleness() == 0
        mediator.source("alpha").touch()
        mediator.source("alpha").touch()
        mediator.source("beta").touch()
        assert mediator.staleness() == 3
        mediator.refresh()
        assert mediator.staleness() == 0

    def test_refresh_rebuilds(self, mediator):
        mediator.warehouse()
        before = mediator.stats["warehouse_builds"]
        mediator.refresh()
        assert mediator.stats["warehouse_builds"] == before + 1

    def test_store_warehouse(self, mediator):
        repo = Repository()
        mediator.store_warehouse(repo)
        assert repo.has_graph("data")

    def test_mapping_validation(self, mediator):
        with pytest.raises(MediatorError):
            mediator.add_mapping(MAPPING.format(src="unknown"))
        with pytest.raises(MediatorError):
            mediator.add_mapping("""
            input alpha
            where Items(i)
            create X(i)
            collect Y(X(i))
            output wrong_name
            """)

    def test_no_mappings_is_an_error(self):
        med = Mediator()
        med.add_source(_make_source("s", []))
        with pytest.raises(MediatorError):
            med.warehouse()

    def test_unknown_source(self, mediator):
        with pytest.raises(MediatorError):
            mediator.source("nope")

    def test_gav_object_fusion(self):
        """Two sources minting Obj with the same key unify objects."""
        med = Mediator("data")
        med.add_source(_make_source("alpha", [("shared", 1)]))
        med.add_source(_make_source("beta", [("other", 2)]))
        fusion = """
        input {src}
        where Items(i), i -> "key" -> k, i -> "value" -> v
        create Obj(k)
        link Obj(k) -> "value" -> v, Obj(k) -> "from" -> "{src}"
        collect All(Obj(k))
        output data
        """
        med.add_mapping(fusion.format(src="alpha"))
        med.add_mapping(fusion.format(src="beta"))
        data = med.warehouse()
        # Keys differ here, so two objects...
        assert len(data.collection("All")) == 2
        # ...but the same key from both sources would fuse:
        med2 = Mediator("data")
        med2.add_source(_make_source("alpha", [("k1", 1)]))
        med2.add_source(_make_source("beta", [("k1", 9)]))
        med2.add_mapping(fusion.format(src="alpha"))
        med2.add_mapping(fusion.format(src="beta"))
        fused = med2.warehouse()
        assert len(fused.collection("All")) == 1
        obj = fused.collection("All")[0]
        froms = {str(v) for v in fused.get(obj, "from")}
        assert froms == {"alpha", "beta"}


class TestSources:
    def test_load_counts(self):
        source = _make_source("s", [("a", 1)])
        source.load()
        source.load()
        assert source.load_count == 2

    def test_nameless_rejected(self):
        with pytest.raises(MediatorError):
            DataSource("", lambda: Graph("x"))

    def test_limited_access_requires_inputs(self):
        source = LimitedAccessSource(
            "lookup", lambda key: Graph("lookup"), required=("key",))
        with pytest.raises(AccessPatternError):
            source.load()
        graph = source.load(key="x")
        assert graph.name == "lookup"
