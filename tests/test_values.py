"""Atomic value types: construction, coercion, comparison, hashing."""

import pytest

from repro.errors import CoercionError
from repro.graph.values import (
    Atom,
    AtomType,
    compare,
    infer_file_type,
    is_file,
    is_image_file,
    is_postscript,
    is_url,
)


class TestConstruction:
    def test_int(self):
        atom = Atom.int(42)
        assert atom.type is AtomType.INT
        assert atom.value == 42

    def test_float(self):
        assert Atom.float(2.5).value == 2.5

    def test_bool(self):
        assert Atom.bool(True).value is True

    def test_string(self):
        assert Atom.string("x").type is AtomType.STRING

    def test_url(self):
        assert Atom.url("http://a/b").type is AtomType.URL

    def test_of_passthrough(self):
        atom = Atom.string("x")
        assert Atom.of(atom) is atom

    def test_of_python_values(self):
        assert Atom.of(3).type is AtomType.INT
        assert Atom.of(3.5).type is AtomType.FLOAT
        assert Atom.of(True).type is AtomType.BOOL
        assert Atom.of("s").type is AtomType.STRING

    def test_of_rejects_unknown(self):
        with pytest.raises(TypeError):
            Atom.of([1, 2])

    def test_type_validation(self):
        with pytest.raises(TypeError):
            Atom(AtomType.INT, "not an int")
        with pytest.raises(TypeError):
            Atom(AtomType.STRING, 3)

    def test_bool_is_not_int(self):
        # bool is a subclass of int in Python; the model keeps them apart.
        assert Atom.of(True).type is AtomType.BOOL

    def test_immutable(self):
        atom = Atom.int(1)
        with pytest.raises(AttributeError):
            atom.value = 2


class TestFileTypes:
    @pytest.mark.parametrize("path,expected", [
        ("papers/x.ps", AtomType.POSTSCRIPT_FILE),
        ("papers/x.ps.gz", AtomType.POSTSCRIPT_FILE),
        ("x.EPS", AtomType.POSTSCRIPT_FILE),
        ("a/b.html", AtomType.HTML_FILE),
        ("a/b.htm", AtomType.HTML_FILE),
        ("img.gif", AtomType.IMAGE_FILE),
        ("img.JPEG", AtomType.IMAGE_FILE),
        ("img.png", AtomType.IMAGE_FILE),
        ("doc.txt", AtomType.TEXT_FILE),
        ("README", AtomType.TEXT_FILE),       # unknown -> text
        ("weird.xyz", AtomType.TEXT_FILE),
    ])
    def test_infer(self, path, expected):
        assert infer_file_type(path) is expected

    def test_file_constructor_infers(self):
        assert Atom.file("a.ps").type is AtomType.POSTSCRIPT_FILE

    def test_file_constructor_override(self):
        atom = Atom.file("a.dat", AtomType.IMAGE_FILE)
        assert atom.type is AtomType.IMAGE_FILE

    def test_file_constructor_rejects_scalar_type(self):
        with pytest.raises(ValueError):
            Atom.file("a.ps", AtomType.INT)

    def test_is_file_predicates(self):
        ps = Atom.file("a.ps")
        assert is_file(ps) and is_postscript(ps)
        assert not is_image_file(ps)
        assert is_image_file(Atom.file("a.gif"))
        assert is_url(Atom.url("http://x"))
        assert not is_file(Atom.int(1))
        assert not is_postscript("a.ps")  # non-atoms are never files


class TestCoercion:
    def test_same_type_equality(self):
        assert Atom.int(3) == Atom.int(3)
        assert Atom.int(3) != Atom.int(4)

    def test_numeric_cross_type(self):
        assert Atom.int(3) == Atom.float(3.0)
        assert Atom.int(1) == Atom.bool(True)

    def test_string_to_number(self):
        assert Atom.string("1997") == Atom.int(1997)
        assert Atom.string(" 2.5 ") == Atom.float(2.5)

    def test_string_url_comparison(self):
        assert Atom.string("http://x") == Atom.url("http://x")

    def test_file_path_string(self):
        assert Atom.file("a.ps") == Atom.string("a.ps")

    def test_incoercible_unequal(self):
        assert Atom.int(3) != Atom.string("three")

    def test_equal_atoms_hash_equal(self):
        assert hash(Atom.int(3)) == hash(Atom.string("3"))
        assert hash(Atom.int(3)) == hash(Atom.float(3.0))
        assert hash(Atom.string("x.ps")) == hash(Atom.file("x.ps"))

    def test_usable_in_sets(self):
        values = {Atom.int(3), Atom.string("3"), Atom.float(3.0)}
        assert len(values) == 1
        assert Atom.bool(True) in {Atom.int(1)}

    def test_ordering(self):
        assert Atom.int(3) < Atom.int(5)
        assert Atom.string("10") > Atom.int(9)
        assert Atom.string("abc") < Atom.string("abd")

    def test_ordering_incoercible_raises(self):
        with pytest.raises(CoercionError):
            Atom.int(3) < Atom.string("three")

    def test_compare_three_way(self):
        assert compare(Atom.int(1), Atom.int(2)) == -1
        assert compare(Atom.int(2), Atom.int(2)) == 0
        assert compare(Atom.string("5"), Atom.int(4)) == 1

    def test_not_equal_to_non_atom(self):
        assert Atom.int(3) != 3
        assert (Atom.int(3) == 3) is False


class TestPresentation:
    def test_str_is_payload(self):
        assert str(Atom.string("hi")) == "hi"
        assert str(Atom.int(7)) == "7"

    def test_repr_mentions_type(self):
        assert "postscript" in repr(Atom.file("a.ps"))

    def test_to_python(self):
        assert Atom.int(3).to_python() == 3
