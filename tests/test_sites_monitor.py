"""The dogfooded monitoring dashboard site (repro.sites.monitor)."""

import pytest

from repro import obs
from repro.graph import Oid
from repro.site import DynamicSiteServer
from repro.sites.homepage import FIG3_QUERY, fig2_data, fig7_templates
from repro.sites.monitor import (
    MONITOR_QUERY,
    build_monitor_site,
    monitor_templates,
    telemetry_graph,
)


@pytest.fixture(autouse=True)
def _clean_recorder():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def busy_recorder():
    """A recorder with real pipeline telemetry plus a server log."""
    with obs.recording() as rec:
        server = DynamicSiteServer(FIG3_QUERY, fig2_data(),
                                   fig7_templates())
        server.crawl()
        server.request("missing.html")
    return rec, server.log


class TestTelemetryGraph:
    def test_collections_always_declared(self):
        graph = telemetry_graph(obs.TraceRecorder())
        for name in ("Spans", "Traces", "Stages", "Counters", "Gauges",
                     "Histograms", "Events", "Requests", "Summary"):
            assert graph.has_collection(name), name
        assert len(graph.collection("Summary")) == 1

    def test_spans_and_stages_converted(self, busy_recorder):
        recorder, log = busy_recorder
        graph = telemetry_graph(recorder, server_log=log)
        assert graph.collection("Spans")
        assert graph.collection("Traces")
        stage_names = {
            str(graph.get_one(oid, "name").value)
            for oid in graph.collection("Stages")}
        assert "server.request" in stage_names
        assert graph.collection("Events")
        assert graph.collection("Requests")
        counters = {str(graph.get_one(oid, "name").value)
                    for oid in graph.collection("Counters")}
        assert "server.requests" in counters

    def test_span_budget_respected(self, busy_recorder):
        recorder, _ = busy_recorder
        graph = telemetry_graph(recorder, max_spans=5)
        assert len(graph.collection("Spans")) == 5

    def test_accepts_snapshot_dict(self, busy_recorder):
        recorder, log = busy_recorder
        graph = telemetry_graph(recorder, server_log=log.snapshot())
        assert graph.collection("Requests")


class TestDashboardSite:
    def test_generates_browsable_site(self, busy_recorder, tmp_path):
        recorder, log = busy_recorder
        site = build_monitor_site(recorder, server_log=log)
        out = tmp_path / "dash"
        out.mkdir()
        pages = site.generate(str(out))
        assert (out / "Dashboard__.html").exists()
        dashboard = (out / "Dashboard__.html").read_text()
        # Overview links every section page.
        for target in ("StageIndex__.html", "TraceIndex__.html",
                       "MetricsPage__.html", "RequestsPage__.html",
                       "EventsPage__.html"):
            assert target in dashboard, target
        # Per-stage drilldowns exist and list spans.
        stage_pages = [p for p in out.iterdir()
                       if p.name.startswith("StagePage_")]
        assert stage_pages
        server_stage = next(p for p in stage_pages
                            if "server_request" in p.name)
        assert "req-1" in server_stage.read_text()
        # Trace pages embed the recursive span tree.
        trace_pages = [p for p in out.iterdir()
                       if p.name.startswith("TracePage_")]
        assert trace_pages
        # Metrics tables carry real counter values.
        metrics_page = (out / "MetricsPage__.html").read_text()
        assert "server.requests" in metrics_page
        # Slowest requests table has ranked ids.
        requests_page = (out / "RequestsPage__.html").read_text()
        assert "req-" in requests_page
        # 404 warning made it into the event log page.
        events_page = (out / "EventsPage__.html").read_text()
        assert "server.not_found" in events_page
        assert len(pages) > 5

    def test_site_is_query_generated(self):
        """The dashboard comes from a StruQL query, not hand HTML."""
        assert "INPUT TELEMETRY" in MONITOR_QUERY
        assert "OUTPUT MONITOR" in MONITOR_QUERY
        with obs.recording() as rec:
            with rec.span("only"):
                pass
        site = build_monitor_site(rec)
        assert site.site_graph.has_node(Oid.skolem("Dashboard", ()))

    def test_empty_recorder_still_builds(self, tmp_path):
        site = build_monitor_site(obs.TraceRecorder())
        out = tmp_path / "empty"
        out.mkdir()
        site.generate(str(out))
        dashboard = (out / "Dashboard__.html").read_text()
        assert "0 spans" in dashboard
        requests_page = (out / "RequestsPage__.html").read_text()
        assert "No request log attached" in requests_page
        events_page = (out / "EventsPage__.html").read_text()
        assert "No events recorded" in events_page

    def test_templates_cover_every_skolem(self):
        """Every Skolem function the query creates has a template."""
        from repro.struql.parser import parse_query
        templates = monitor_templates()
        created = {term.fn
                   for block in parse_query(MONITOR_QUERY).blocks()
                   for term in block.creates}
        missing = {name for name in created
                   if templates.get(name) is None}
        assert not missing, missing


class TestLiveEndpoints:
    def test_summary_carries_live_links(self, busy_recorder):
        from repro.graph import Atom
        from repro.sites.monitor import LIVE_ENDPOINTS
        recorder, _ = busy_recorder
        graph = telemetry_graph(recorder,
                                live_url="http://127.0.0.1:8080/")
        summary = graph.collection("Summary")[0]
        live = graph.get_one(summary, "live")
        assert isinstance(live, Atom)
        assert live.value == "http://127.0.0.1:8080"  # slash stripped
        endpoints = {str(v.value)
                     for v in graph.get(summary, "endpoint")}
        assert endpoints == {f"http://127.0.0.1:8080{p}"
                             for p in LIVE_ENDPOINTS}

    def test_no_live_url_no_edges(self, busy_recorder):
        recorder, _ = busy_recorder
        graph = telemetry_graph(recorder)
        summary = graph.collection("Summary")[0]
        assert graph.get_one(summary, "live") is None
        assert graph.get(summary, "endpoint") == []

    def test_dashboard_renders_live_section(self, busy_recorder,
                                            tmp_path):
        recorder, log = busy_recorder
        site = build_monitor_site(recorder, server_log=log,
                                  live_url="http://127.0.0.1:9999")
        out = tmp_path / "live"
        out.mkdir()
        site.generate(str(out))
        dashboard = (out / "Dashboard__.html").read_text()
        assert "Live endpoints" in dashboard
        assert "http://127.0.0.1:9999/metrics" in dashboard
        assert "http://127.0.0.1:9999/readyz" in dashboard

    def test_dashboard_omits_live_section_by_default(self,
                                                     busy_recorder,
                                                     tmp_path):
        recorder, log = busy_recorder
        site = build_monitor_site(recorder, server_log=log)
        out = tmp_path / "nolive"
        out.mkdir()
        site.generate(str(out))
        assert "Live endpoints" not in \
            (out / "Dashboard__.html").read_text()


class TestQueriesPage:
    @pytest.fixture
    def registry(self):
        from repro.obs.queries import QueryStatsRegistry
        reg = QueryStatsRegistry()
        reg.observe('where Big(x), x = "a"', seconds=0.002, rows=5,
                    plan="member/filter", optimizer="cost")
        reg.observe('where Small(y)', seconds=0.050, rows=2,
                    plan="member", optimizer="heuristic", misestimates=1)
        return reg

    def test_query_nodes_in_graph(self, registry):
        from repro.graph import Atom

        graph = telemetry_graph(obs.TraceRecorder(), queries=registry)
        assert graph.has_collection("Queries")
        rows = graph.collection("Queries")
        assert len(rows) == 2
        # Worst p95 ranks first.
        first = next(r for r in rows
                     if graph.get(r, "rank") == [Atom.int(1)])
        assert graph.get(first, "text") == [Atom.string("where Small(y)")]
        assert graph.get(first, "misestimates") == [Atom.int(1)]
        summary = graph.collection("Summary")[0]
        assert graph.get(summary, "queries") == [Atom.int(2)]

    def test_accepts_snapshot_dict(self, registry):
        graph = telemetry_graph(obs.TraceRecorder(),
                                queries=registry.snapshot())
        assert len(graph.collection("Queries")) == 2

    def test_defaults_to_global_registry(self):
        from repro.obs.queries import (
            QueryStatsRegistry,
            get_query_registry,
            set_query_registry,
        )
        previous = get_query_registry()
        try:
            set_query_registry(QueryStatsRegistry())
            get_query_registry().observe("where C(x)", seconds=0.001)
            graph = telemetry_graph(obs.TraceRecorder())
            assert len(graph.collection("Queries")) == 1
        finally:
            set_query_registry(previous)

    def test_queries_page_rendered(self, registry, tmp_path):
        site = build_monitor_site(obs.TraceRecorder(), queries=registry)
        out = tmp_path / "dash"
        out.mkdir()
        site.generate(str(out))
        dashboard = (out / "Dashboard__.html").read_text()
        assert "QueriesPage__.html" in dashboard
        page = (out / "QueriesPage__.html").read_text()
        assert "Query registry" in page
        assert "where Small(y)" in page
        assert "cost" in page and "heuristic" in page

    def test_empty_registry_renders_placeholder(self, tmp_path):
        from repro.obs.queries import QueryStatsRegistry

        site = build_monitor_site(obs.TraceRecorder(),
                                  queries=QueryStatsRegistry())
        out = tmp_path / "dash"
        out.mkdir()
        site.generate(str(out))
        page = (out / "QueriesPage__.html").read_text()
        assert "No queries observed" in page


class TestAlertsPage:
    """Issue 9: SLO objectives and burn-rate alerts on the dashboard."""

    def _firing_evaluator(self):
        from repro.obs.slo import SLO, BurnRatePair, SLOEvaluator
        recorder = obs.TraceRecorder()
        slo = SLO(name="avail", kind="availability", target=0.99,
                  window_s=8.0, total_metric="req", bad_metric="err")
        pair = BurnRatePair(long_s=8.0, short_s=2.0, factor=10.0,
                            severity="page")
        evaluator = SLOEvaluator(recorder, slos=[slo], step=1.0,
                                 pairs=(pair,), for_ticks=2)
        evaluator.evaluate(now=100.0)
        for now in (101.0, 102.0):
            recorder.metrics.counter("req").inc(20)
            recorder.metrics.counter("err").inc(10)
            evaluator.evaluate(now=now)
        return evaluator

    def test_slo_collections_in_graph(self):
        from repro.graph import Atom
        evaluator = self._firing_evaluator()
        graph = telemetry_graph(obs.TraceRecorder(), slo=evaluator)
        (slo_row,) = graph.collection("Slos")
        assert graph.get(slo_row, "name") == [Atom.string("avail")]
        assert graph.get(slo_row, "status") == [Atom.string("VIOLATED")]
        assert str(graph.get_one(slo_row, "burn").value).endswith("x")
        (alert_row,) = graph.collection("Alerts")
        assert graph.get(alert_row, "name") == \
            [Atom.string("avail:page")]
        assert graph.get(alert_row, "state") == [Atom.string("firing")]
        summary = graph.collection("Summary")[0]
        assert graph.get(summary, "slos") == [Atom.int(1)]
        assert graph.get(summary, "alerts_firing") == [Atom.int(1)]

    def test_accepts_snapshot_dict(self):
        evaluator = self._firing_evaluator()
        graph = telemetry_graph(obs.TraceRecorder(),
                                slo=evaluator.snapshot())
        assert len(graph.collection("Slos")) == 1
        assert len(graph.collection("Alerts")) == 1

    def test_defaults_to_global_evaluator(self):
        from repro.obs.slo import set_slo_evaluator
        evaluator = self._firing_evaluator()
        set_slo_evaluator(evaluator)
        try:
            graph = telemetry_graph(obs.TraceRecorder())
            assert len(graph.collection("Slos")) == 1
        finally:
            set_slo_evaluator(None)

    def test_alerts_page_rendered(self, tmp_path):
        evaluator = self._firing_evaluator()
        site = build_monitor_site(obs.TraceRecorder(), slo=evaluator)
        out = tmp_path / "dash"
        out.mkdir()
        site.generate(str(out))
        dashboard = (out / "Dashboard__.html").read_text()
        assert "AlertsPage__.html" in dashboard
        assert "1 SLOs, 1 alerts firing" in dashboard
        page = (out / "AlertsPage__.html").read_text()
        assert "avail:page" in page
        assert "firing" in page
        assert "VIOLATED" in page
        assert "2s / 8s" in page  # short / long windows

    def test_no_evaluator_renders_placeholder(self, tmp_path):
        from repro.obs.slo import set_slo_evaluator
        set_slo_evaluator(None)
        site = build_monitor_site(obs.TraceRecorder())
        out = tmp_path / "dash"
        out.mkdir()
        site.generate(str(out))
        page = (out / "AlertsPage__.html").read_text()
        assert "No SLO evaluator ran" in page
        dashboard = (out / "Dashboard__.html").read_text()
        assert "alerts firing" not in dashboard


class TestFreshnessPage:
    """PR 8: the dashboard's source-freshness section."""

    def _stamp(self, name="feed.json"):
        from repro.mediator.sources import record_fetch
        record_fetch(name, "graph-json", "cafe1234", nodes=7, edges=9)

    def test_sources_collection_from_fetch_stamps(self):
        from repro.graph import Atom
        self._stamp()
        graph = telemetry_graph(obs.TraceRecorder())
        assert graph.has_collection("Sources")
        rows = graph.collection("Sources")
        # The stamp store is process-global, so other tests may have
        # contributed rows too — ours must be among them.
        row = next(oid for oid in rows
                   if graph.get(oid, "name") ==
                   [Atom.string("feed.json")])
        assert graph.get(row, "kind") == [Atom.string("graph-json")]
        assert graph.get(row, "hash") == [Atom.string("cafe1234")]
        assert graph.get(row, "nodes") == [Atom.int(7)]
        assert graph.get(row, "edges") == [Atom.int(9)]
        summary = graph.collection("Summary")[0]
        assert int(graph.get_one(summary, "sources").value) >= 1

    def test_freshness_page_rendered(self, tmp_path):
        self._stamp()
        site = build_monitor_site(obs.TraceRecorder())
        out = tmp_path / "dash"
        out.mkdir()
        site.generate(str(out))
        dashboard = (out / "Dashboard__.html").read_text()
        assert "FreshnessPage__.html" in dashboard
        assert "tracked sources" in dashboard
        page = (out / "FreshnessPage__.html").read_text()
        assert "feed.json" in page and "graph-json" in page

    def test_stale_pages_counted_with_lineage(self):
        import time

        from repro.graph import Atom, Graph
        from repro.obs.lineage import SourceRecord, lineage_recording
        now = time.time()
        with lineage_recording() as lineage:
            lineage.record_source(SourceRecord(
                source="old-src", kind="loader", fetched_at=now - 5000,
                content_hash="ff", nodes=1, edges=0))
            old_page = Oid.skolem("OldPage", (Oid("o1"),))
            lineage.record_node(old_page, "OldPage",
                                old_page.skolem_args)
            data = Graph("O")
            data.add_node(Oid("o1"))
            lineage.record_source_nodes("old-src", data)
            lineage.record_page("old.html", old_page, "T")
            graph = telemetry_graph(obs.TraceRecorder(), max_age=600.0)
            summary = graph.collection("Summary")[0]
            assert graph.get(summary, "stale_pages") == [Atom.int(1)]
            # The lineage source record surfaces as a Sources row even
            # without a mediator fetch stamp.
            rows = graph.collection("Sources")
            assert any(graph.get(r, "name") ==
                       [Atom.string("old-src")] for r in rows)
