"""Site schemas (Fig 5): construction, rendering, query recovery."""

import pytest

from repro.site import NS, build_site_schema
from repro.struql import parse_query


class TestFig5:
    """The schema of the Fig 3 query matches Fig 5 exactly."""

    @pytest.fixture
    def schema(self, fig3_query):
        return build_site_schema(fig3_query)

    def test_nodes_are_skolem_functions(self, schema):
        expected = {"RootPage", "AbstractsPage", "PaperPresentation",
                    "AbstractPage", "YearPage", "CategoryPage", NS}
        assert set(schema.nodes) == expected

    def test_fig5_edges_present(self, schema):
        assert schema.has_edge("RootPage", "AbstractsPage",
                               "AbstractsPage")
        assert schema.has_edge("RootPage", "YearPage", "YearPage")
        assert schema.has_edge("RootPage", "CategoryPage", "CategoryPage")
        assert schema.has_edge("YearPage", "Paper", "PaperPresentation")
        assert schema.has_edge("CategoryPage", "Paper",
                               "PaperPresentation")
        assert schema.has_edge("AbstractsPage", "Abstract",
                               "AbstractPage")
        assert schema.has_edge("PaperPresentation", "Abstract",
                               "AbstractPage")

    def test_edge_labels_match_fig5_notation(self, schema):
        edge = next(e for e in schema.edges
                    if e.source == "YearPage" and e.label == "Paper")
        assert edge.render() == '(Q1 ^ Q2, "Paper", [v], [x])'
        root_year = next(e for e in schema.edges
                         if e.source == "RootPage"
                         and e.target == "YearPage")
        assert root_year.render() == '(Q1 ^ Q2, "YearPage", [], [v])'
        top = next(e for e in schema.edges
                   if e.target == "AbstractsPage")
        assert top.query_label == "true"

    def test_ns_edges_for_data_targets(self, schema):
        ns_edges = [e for e in schema.in_edges(NS)]
        # AbstractPage -> l -> v, PaperPresentation -> l -> v,
        # YearPage -> "Year" -> v, CategoryPage -> "Name" -> v.
        assert {e.source for e in ns_edges} == {
            "AbstractPage", "PaperPresentation", "YearPage",
            "CategoryPage"}

    def test_arc_variable_edges_flagged(self, schema):
        arc = next(e for e in schema.edges
                   if e.source == "AbstractPage" and e.target == NS)
        assert arc.label_is_var and arc.label == "l"

    def test_roots(self, schema):
        assert schema.roots() == ["RootPage"]

    def test_render_excludes_ns_by_default(self, schema):
        text = schema.render()
        assert NS not in text
        assert NS in schema.render(include_ns=True)
        assert '(Q1 ^ Q2, "Paper", [v], [x])' in text

    def test_reachability(self, schema):
        reachable = schema.reachable_from("RootPage")
        assert "AbstractPage" in reachable
        assert schema.reachable_from("AbstractPage") == {"AbstractPage",
                                                         NS}

    def test_to_dot(self, schema):
        dot = schema.to_dot()
        assert dot.startswith("digraph") and "YearPage" in dot


class TestQueryRecovery:
    def test_recovered_query_is_equivalent(self, fig2_graph, fig3_query):
        """The schema is equivalent to the query: the recovered text
        evaluates to the same site graph."""
        from repro.struql import QueryEngine
        schema = build_site_schema(fig3_query)
        recovered = parse_query(schema.recover_query())
        engine = QueryEngine()
        original = engine.evaluate(fig3_query, fig2_graph).output
        again = engine.evaluate(recovered, fig2_graph).output
        assert set(original.edges()) == set(again.edges())
        assert original.node_count == again.node_count

    def test_recovery_without_query_fails(self):
        from repro.site import SiteSchema
        with pytest.raises(ValueError):
            SiteSchema().recover_query()


class TestOtherShapes:
    def test_query_without_links(self):
        schema = build_site_schema(
            "input G where A(x) create F(x) collect C(F(x)) output O")
        assert schema.nodes == ["F"]
        assert schema.edges == []

    def test_constant_target(self):
        schema = build_site_schema("""
            input G
            where A(x)
            create F(x)
            link F(x) -> "kind" -> "fixed"
            output O
        """)
        edge = schema.edges[0]
        assert edge.target == NS
        assert edge.render() == '(Q1, "kind", [x], ["fixed"])'

    def test_disconnected_schema_has_multiple_roots(self):
        schema = build_site_schema("""
            input G
            { where A(x) create F(x) link F(x) -> "a" -> x }
            { where B(y) create G2(y) link G2(y) -> "b" -> y }
            output O
        """)
        assert set(schema.roots()) == {"F", "G2"}
