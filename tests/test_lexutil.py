"""The shared lexical scanner."""

import pytest

from repro.lexutil import EOF, FLOAT, IDENT, INT, PUNCT, STRING, ScanError, scan

PUNCT_TABLE = ("->", "{", "}", "(", ")", ",", "=", "*")


def tokens(text: str, punct=PUNCT_TABLE):
    return [(t.kind, t.text) for t in scan(text, punct)
            if t.kind != EOF]


class TestBasics:
    def test_identifiers_and_keywords_look_alike(self):
        assert tokens("where Foo _bar") == [
            (IDENT, "where"), (IDENT, "Foo"), (IDENT, "_bar")]

    def test_numbers(self):
        assert tokens("42 2.5") == [(INT, "42"), (FLOAT, "2.5")]

    def test_scientific_notation(self):
        assert tokens("2.5e-308 1E6 3e+2") == [
            (FLOAT, "2.5e-308"), (FLOAT, "1E6"), (FLOAT, "3e+2")]

    def test_exponent_requires_digits(self):
        # '3e' is a number followed by an identifier, not a float.
        assert tokens("3 exam") == [(INT, "3"), (IDENT, "exam")]

    def test_negative_numbers_only_without_minus_operator(self):
        assert tokens("-3", punct=("{",)) == [(INT, "-3")]
        # With '->' as punctuation, '-' cannot start a number.
        with pytest.raises(ScanError):
            tokens("-3", punct=("->",))

    def test_strings_with_escapes(self):
        toks = tokens(r'"a\"b\n"')
        assert toks == [(STRING, 'a"b\n')]

    def test_unterminated_string(self):
        with pytest.raises(ScanError):
            tokens('"open')
        with pytest.raises(ScanError):
            tokens('"line\nbreak"')

    def test_punctuation_longest_match(self):
        assert tokens("x->y") == [(IDENT, "x"), (PUNCT, "->"),
                                  (IDENT, "y")]

    def test_unknown_character(self):
        with pytest.raises(ScanError) as err:
            tokens("a ? b")
        assert err.value.line == 1


class TestComments:
    def test_line_comments(self):
        assert tokens("a // rest\nb # more\nc") == [
            (IDENT, "a"), (IDENT, "b"), (IDENT, "c")]

    def test_block_comments(self):
        assert tokens("a /* x\ny */ b") == [(IDENT, "a"), (IDENT, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(ScanError):
            tokens("a /* never closed")


class TestPositions:
    def test_line_and_column_tracking(self):
        all_tokens = list(scan("ab\n  cd", PUNCT_TABLE))
        cd = next(t for t in all_tokens if t.text == "cd")
        assert cd.line == 2 and cd.column == 3

    def test_position_after_block_comment(self):
        all_tokens = list(scan("/* one\ntwo */ x", PUNCT_TABLE))
        x = next(t for t in all_tokens if t.text == "x")
        assert x.line == 2

    def test_eof_token_always_last(self):
        assert list(scan("", PUNCT_TABLE))[-1].kind == EOF

    def test_custom_ident_charset(self):
        toks = [(t.kind, t.text) for t in scan(
            "pub-type", ("{",),
            ident_ok=lambda ch: ch.isalnum() or ch in "-_")
            if t.kind != EOF]
        assert toks == [(IDENT, "pub-type")]
