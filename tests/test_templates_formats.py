"""Type-specific HTML realization rules (formats module)."""

from repro.graph import Atom, AtomType
from repro.templates.formats import anchor, escape, realize_atom


class TestEscape:
    def test_escapes_html(self):
        assert escape("<b>&\"'") == "&lt;b&gt;&amp;&quot;&#x27;"

    def test_anchor(self):
        assert anchor("a/b.ps", 'say "hi"') == \
            '<a href="a/b.ps">say &quot;hi&quot;</a>'


class TestRealize:
    def test_scalars_become_text(self):
        assert realize_atom(Atom.int(7)) == "7"
        assert realize_atom(Atom.float(2.5)) == "2.5"
        assert realize_atom(Atom.bool(True)) == "True"
        assert realize_atom(Atom.string("<i>")) == "&lt;i&gt;"

    def test_url_is_anchor(self):
        html = realize_atom(Atom.url("http://x/"))
        assert html == '<a href="http://x/">http://x/</a>'

    def test_url_with_tag(self):
        html = realize_atom(Atom.url("http://x/"), tag="Home")
        assert ">Home</a>" in html

    def test_postscript_is_anchor(self):
        html = realize_atom(Atom.file("p.ps.gz"), tag="Paper")
        assert html == '<a href="p.ps.gz">Paper</a>'

    def test_image_is_img(self):
        html = realize_atom(Atom.file("x.png"), tag="alt text")
        assert html == '<img src="x.png" alt="alt text">'

    def test_image_without_tag(self):
        assert realize_atom(Atom.file("x.png")) == \
            '<img src="x.png" alt="">'

    def test_force_link_format(self):
        html = realize_atom(Atom.string("plain"), format="LINK")
        assert html == '<a href="plain">plain</a>'

    def test_text_file_with_loader_escaped(self):
        html = realize_atom(Atom.file("a.txt"),
                            loader=lambda p: "<raw> content")
        assert html == "&lt;raw&gt; content"

    def test_html_file_with_loader_raw(self):
        html = realize_atom(Atom.file("a.html"),
                            loader=lambda p: "<b>bold</b>")
        assert html == "<b>bold</b>"  # it IS html: inlined verbatim

    def test_file_without_loader_shows_path(self):
        assert realize_atom(Atom.file("dir/a.txt")) == "dir/a.txt"

    def test_loader_returning_none_falls_back(self):
        assert realize_atom(Atom.file("a.txt"),
                            loader=lambda p: None) == "a.txt"
