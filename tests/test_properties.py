"""Property-based tests (hypothesis) for the core invariants.

* atom coercion: equality is symmetric, hash-consistent, and agrees
  with three-way compare;
* graph model: edge-set semantics, import idempotence;
* serialization and DDL: lossless round trips on random graphs;
* regular paths: the product-automaton evaluation agrees with a
  reference implementation (Python ``re`` over enumerated label paths);
* Skolem identity: determinism and injectivity per function;
* optimizers: all three orderings compute the same binding relation;
* incremental evaluation: dynamic page views equal materialized pages
  on random data graphs.
"""

from __future__ import annotations

import re
import string

from hypothesis import given, settings, strategies as st

from repro.ddl import parse_ddl, write_ddl
from repro.graph import Atom, Graph, Oid, graph_from_json, graph_to_json
from repro.graph.values import compare
from repro.errors import CoercionError
from repro.site import DynamicSite
from repro.struql import (
    LabelEquals,
    PathEvaluator,
    QueryEngine,
    RAlt,
    RConcat,
    RLabel,
    RStar,
    default_registry,
)
from repro.struql.skolem import SkolemRegistry

# --------------------------------------------------------------------------
# Strategies

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)

_atoms = st.one_of(
    st.integers(-50, 50).map(Atom.int),
    st.floats(-50, 50, allow_nan=False).map(Atom.float),
    st.booleans().map(Atom.bool),
    _names.map(Atom.string),
    st.integers(0, 30).map(lambda n: Atom.string(str(n))),
)


@st.composite
def graphs(draw, max_nodes: int = 8, max_edges: int = 16,
           labels: tuple[str, ...] = ("a", "b", "c")) -> Graph:
    node_count = draw(st.integers(1, max_nodes))
    nodes = [Oid(f"n{i}") for i in range(node_count)]
    graph = Graph("G")
    for node in nodes:
        graph.add_node(node)
    edge_count = draw(st.integers(0, max_edges))
    for _ in range(edge_count):
        source = draw(st.sampled_from(nodes))
        label = draw(st.sampled_from(labels))
        target_is_atom = draw(st.booleans())
        if target_is_atom:
            graph.add_edge(source, label, draw(_atoms))
        else:
            graph.add_edge(source, label, draw(st.sampled_from(nodes)))
    member_count = draw(st.integers(0, node_count))
    for node in nodes[:member_count]:
        graph.add_to_collection("C", node)
    graph.declare_collection("C")
    return graph


@st.composite
def path_exprs(draw, depth: int = 3):
    if depth == 0:
        return RLabel(LabelEquals(draw(st.sampled_from("abc"))))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return RLabel(LabelEquals(draw(st.sampled_from("abc"))))
    if kind == 1:
        return RConcat((draw(path_exprs(depth=depth - 1)),
                        draw(path_exprs(depth=depth - 1))))
    if kind == 2:
        return RAlt((draw(path_exprs(depth=depth - 1)),
                     draw(path_exprs(depth=depth - 1))))
    return RStar(draw(path_exprs(depth=depth - 1)))


# --------------------------------------------------------------------------
# Atom coercion


class TestAtomProperties:
    @given(_atoms, _atoms)
    def test_equality_symmetric(self, a, b):
        assert (a == b) == (b == a)

    @given(_atoms, _atoms)
    def test_equal_implies_hash_equal(self, a, b):
        if a == b:
            assert hash(a) == hash(b)

    @given(_atoms)
    def test_reflexive(self, a):
        assert a == a
        assert compare(a, a) == 0

    @given(_atoms, _atoms)
    def test_compare_consistent_with_eq(self, a, b):
        try:
            result = compare(a, b)
        except CoercionError:
            assert a != b
            return
        assert (result == 0) == (a == b)
        assert result == -compare(b, a)


# --------------------------------------------------------------------------
# Graph model and round trips


class TestGraphProperties:
    @given(graphs())
    def test_edge_count_equals_distinct_edges(self, graph):
        assert graph.edge_count == len(set(graph.edges()))

    @given(graphs())
    def test_import_is_idempotent(self, graph):
        target = Graph("copy")
        target.import_graph(graph)
        once = (target.node_count, target.edge_count)
        target.import_graph(graph)
        assert (target.node_count, target.edge_count) == once

    @given(graphs())
    def test_json_roundtrip(self, graph):
        back = graph_from_json(graph_to_json(graph))
        assert set(back.edges()) == set(graph.edges())
        assert back.node_count == graph.node_count
        assert back.collection_names() == graph.collection_names()
        for name in graph.collection_names():
            assert list(back.collection(name)) == \
                list(graph.collection(name))

    @given(graphs())
    @settings(max_examples=30)
    def test_ddl_roundtrip_preserves_structure(self, graph):
        back = parse_ddl(write_ddl(graph))
        assert back.node_count == graph.node_count
        assert back.edge_count == graph.edge_count


# --------------------------------------------------------------------------
# Regular paths vs a reference implementation


def _to_regex(expr) -> str:
    if isinstance(expr, RLabel):
        assert isinstance(expr.pred, LabelEquals)
        return re.escape(expr.pred.label)
    if isinstance(expr, RConcat):
        return "".join(f"(?:{_to_regex(p)})" for p in expr.parts)
    if isinstance(expr, RAlt):
        return "|".join(f"(?:{_to_regex(o)})" for o in expr.options)
    if isinstance(expr, RStar):
        return f"(?:{_to_regex(expr.inner)})*"
    raise TypeError(expr)


def _reference_forward(graph: Graph, start, regex: str,
                       max_length: int = 6) -> set:
    """Enumerate label paths up to a bound and match with ``re``."""
    pattern = re.compile(f"^(?:{regex})$")
    hits = set()
    if pattern.match(""):
        hits.add(start)
    frontier = [(start, "")]
    for _ in range(max_length):
        next_frontier = []
        for obj, word in frontier:
            if not isinstance(obj, Oid):
                continue
            for edge in graph.out_edges(obj):
                extended = word + edge.label
                if pattern.match(extended):
                    hits.add(edge.target)
                next_frontier.append((edge.target, extended))
        frontier = next_frontier
    return hits


class TestPathProperties:
    @given(graphs(max_nodes=5, max_edges=8), path_exprs())
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_on_short_paths(self, graph, expr):
        """Product-automaton results agree with regex matching over
        enumerated paths (bounded; the automaton may also find longer
        matches, so we check the reference is a subset and that every
        automaton hit has *some* matching path)."""
        evaluator = PathEvaluator(expr, default_registry())
        start = next(iter(graph.nodes()))
        mine = evaluator.forward(graph, start)
        reference = _reference_forward(graph, start, _to_regex(expr))
        assert reference <= mine

    @given(graphs(max_nodes=5, max_edges=8), path_exprs())
    @settings(max_examples=40, deadline=None)
    def test_backward_is_converse(self, graph, expr):
        evaluator = PathEvaluator(expr, default_registry())
        pairs = evaluator.pairs(graph)
        for source, target in pairs:
            assert source in evaluator.backward(graph, target)


# --------------------------------------------------------------------------
# Skolem identity


class TestSkolemProperties:
    @given(st.lists(_atoms, max_size=3), st.lists(_atoms, max_size=3))
    def test_identity_iff_equal_args(self, args1, args2):
        registry = SkolemRegistry()
        one = registry.apply("F", args1)
        two = registry.apply("F", args2)
        if tuple(args1) == tuple(args2):
            assert one == two
        if one == two:
            # same oid -> coercion-equal argument tuples
            assert len(args1) == len(args2)

    @given(st.lists(_atoms, max_size=3))
    def test_deterministic_across_registries(self, args):
        assert SkolemRegistry().apply("F", args) == \
            SkolemRegistry().apply("F", args)

    @given(st.lists(_atoms, min_size=1, max_size=3))
    def test_different_functions_never_collide(self, args):
        registry = SkolemRegistry()
        assert registry.apply("F", args) != registry.apply("G", args)


# --------------------------------------------------------------------------
# Optimizer equivalence and incremental agreement on random data

COPY_QUERY = """
input G
where C(x), x -> l -> v
create Page(x)
link Page(x) -> l -> v
collect Pages(Page(x))
output O
"""

LINKED_QUERY = """
input G
create Root()
{ where C(x)
  create Page(x)
  link Root() -> "item" -> Page(x)
  { where x -> "a" -> y
    link Page(x) -> "A" -> y }
}
output O
"""


class TestEngineProperties:
    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_optimizers_agree(self, graph):
        outputs = []
        for optimizer in ("naive", "heuristic", "cost"):
            out = QueryEngine(optimizer=optimizer).evaluate(
                COPY_QUERY, graph).output
            outputs.append((out.node_count, frozenset(out.edges())))
        assert outputs[0] == outputs[1] == outputs[2]

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_indexing_does_not_change_results(self, graph):
        with_index = QueryEngine(indexing=True).evaluate(
            COPY_QUERY, graph).output
        without = QueryEngine(indexing=False).evaluate(
            COPY_QUERY, graph).output
        assert frozenset(with_index.edges()) == frozenset(without.edges())

    @given(graphs())
    @settings(max_examples=25, deadline=None)
    def test_dynamic_pages_equal_materialized(self, graph):
        materialized = QueryEngine().evaluate(LINKED_QUERY, graph).output
        dynamic = DynamicSite(LINKED_QUERY, graph)
        for node in materialized.nodes():
            if node.skolem_fn is None:
                continue
            view = dynamic.get_page(node)
            expected = {(e.label, e.target)
                        for e in materialized.out_edges(node)}
            assert set(view.edges) == expected

    @given(graphs())
    @settings(max_examples=25, deadline=None)
    def test_copy_query_preserves_attribute_multiset(self, graph):
        out = QueryEngine().evaluate(COPY_QUERY, graph).output
        for member in graph.collection("C"):
            if not isinstance(member, Oid):
                continue
            page = Oid.skolem("Page", (member,))
            if not out.has_node(page):
                assert not graph.out_edges(member)
                continue
            original = {(e.label, e.target if not isinstance(e.target, Oid)
                         else e.target)
                        for e in graph.out_edges(member)}
            copied = {(e.label, e.target)
                      for e in out.out_edges(page)}
            assert len(copied) == len(original)


# --------------------------------------------------------------------------
# Aggregation and site-diff properties

AGG_QUERY = """
input G
where C(x), x -> "a" -> v, count(v) per x as n
create F(x)
link F(x) -> "n" -> n
collect All(F(x))
output O
"""


class TestAggregateProperties:
    @given(graphs(labels=("a", "b")))
    @settings(max_examples=30, deadline=None)
    def test_count_matches_direct_computation(self, graph):
        out = QueryEngine().evaluate(AGG_QUERY, graph).output
        for member in graph.collection("C"):
            if not isinstance(member, Oid):
                continue
            distinct = {
                (str(t.type), str(t.value)) if not isinstance(t, Oid)
                else t
                for t in graph.get(member, "a")}
            page = Oid.skolem("F", (member,))
            if not distinct:
                assert not out.has_node(page)
                continue
            counted = out.get_one(page, "n")
            assert counted is not None
            assert counted.value == len(distinct)

    @given(graphs(labels=("a", "b")))
    @settings(max_examples=20, deadline=None)
    def test_aggregate_stable_across_optimizers(self, graph):
        results = []
        for optimizer in ("naive", "heuristic", "cost"):
            out = QueryEngine(optimizer=optimizer).evaluate(
                AGG_QUERY, graph).output
            results.append(frozenset(out.edges()))
        assert results[0] == results[1] == results[2]


class TestDiffProperties:
    @given(graphs(), graphs())
    @settings(max_examples=30, deadline=None)
    def test_diff_is_exact(self, old, new):
        from repro.site import diff_graphs
        diff = diff_graphs(old, new)
        assert diff.added_edges == set(new.edges()) - set(old.edges())
        assert diff.removed_edges == set(old.edges()) - set(new.edges())
        assert diff.added_nodes == set(new.nodes()) - set(old.nodes())

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_self_diff_empty(self, graph):
        from repro.site import diff_graphs
        assert diff_graphs(graph, graph.copy()).empty


class TestTemplateRobustness:
    """Rendering never crashes on arbitrary site graphs."""

    TEMPLATE = ('<SIF @a><SFMT @a></SIF>'
                '<SFOR v @b DELIM=", "><SFMT @v></SFOR>'
                '<SFMTLIST @c ORDER=ascend WRAP=UL>')

    @given(graphs(labels=("a", "b", "c")))
    @settings(max_examples=40, deadline=None)
    def test_render_total(self, graph):
        from repro.templates import HtmlGenerator, TemplateSet
        templates = TemplateSet()
        for node in graph.nodes():
            templates.add(node.name, self.TEMPLATE)
        generator = HtmlGenerator(graph, templates)
        for node in graph.nodes():
            html = generator.render(node)
            assert isinstance(html, str)

    @given(graph=graphs(labels=("a", "b", "c")))
    @settings(max_examples=25, deadline=None)
    def test_generated_files_parse_as_text(self, tmp_path_factory, graph):
        from repro.templates import HtmlGenerator, TemplateSet
        templates = TemplateSet()
        for node in graph.nodes():
            templates.add(node.name, self.TEMPLATE)
        generator = HtmlGenerator(graph, templates)
        out = tmp_path_factory.mktemp("site")
        written = generator.generate_site(str(out))
        assert len(written) == graph.node_count
