"""The example scripts run end to end (smoke level, small scales)."""

import runpy
import subprocess
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", []),
    ("examples/news_site.py", ["40"]),
    ("examples/org_site.py", ["30"]),
    ("examples/dynamic_site.py", ["40"]),
    ("examples/multilingual_site.py", ["4"]),
    ("examples/statistics_page.py", ["20"]),
    ("examples/search_form.py", ["20"]),
    ("examples/restructure_site.py", ["20"]),
]


@pytest.mark.parametrize("script,args", EXAMPLES,
                         ids=[s for s, _ in EXAMPLES])
def test_example_runs(script, args, tmp_path):
    needs_dir = script.split("/")[-1] in (
        "quickstart.py", "news_site.py", "org_site.py",
        "multilingual_site.py")  # statistics/dynamic pick their own dir
    argv = args + ([str(tmp_path)] if needs_dir else [])
    completed = subprocess.run(
        [sys.executable, script, *argv],
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()
