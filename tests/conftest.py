"""Shared fixtures: the paper's running example and small graphs."""

from __future__ import annotations

import pytest

from repro.ddl import parse_ddl
from repro.graph import Atom, Graph, Oid
from repro.sites.homepage import FIG2_DDL, FIG3_QUERY
from repro.struql import QueryEngine, parse_query


@pytest.fixture
def fig2_graph() -> Graph:
    """The Fig 2 data graph (two publications)."""
    return parse_ddl(FIG2_DDL, "BIBTEX")


@pytest.fixture
def fig3_query():
    """The Fig 3 site-definition query, parsed."""
    return parse_query(FIG3_QUERY)


@pytest.fixture
def fig4_site(fig2_graph, fig3_query) -> Graph:
    """The Fig 4 site graph: Fig 3 applied to Fig 2."""
    return QueryEngine().evaluate(fig3_query, fig2_graph).output


@pytest.fixture
def tiny_graph() -> Graph:
    """root -sec-> a, b; a -pic-> img; b -next-> a; plus atoms."""
    graph = Graph("tiny")
    root, a, b, img = Oid("root"), Oid("a"), Oid("b"), Oid("img")
    graph.add_edge(root, "sec", a)
    graph.add_edge(root, "sec", b)
    graph.add_edge(a, "pic", img)
    graph.add_edge(img, "data", Atom.file("x.gif"))
    graph.add_edge(a, "txt", Atom.string("hello"))
    graph.add_edge(b, "next", a)
    graph.add_to_collection("Root", root)
    return graph


@pytest.fixture(params=["naive", "heuristic", "cost"])
def any_engine(request) -> QueryEngine:
    """A query engine for each optimizer generation."""
    return QueryEngine(optimizer=request.param)
