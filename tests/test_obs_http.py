"""The live telemetry HTTP plane (repro.obs.http) and repro serve."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro import obs
from repro.obs.http import (
    DEBUG_ENDPOINTS,
    DEBUG_TRACE_DEPTH,
    SERVE_MAX_ROOTS,
    TelemetryHTTPServer,
    serving_recorder,
)
from repro.obs.slo import (
    CanaryProber,
    SLOEvaluator,
    set_slo_evaluator,
)
from repro.obs.trace import (
    TAIL_ERRORS_KEPT,
    TAIL_RECENT_KEPT,
    TAIL_SLOWEST_KEPT,
    Span,
    TailSampler,
    TraceRecorder,
)
from repro.site import DynamicSiteServer
from repro.sites.homepage import (
    FIG2_DDL,
    FIG3_QUERY,
    fig2_data,
    fig7_templates,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _clean_recorder():
    obs.disable()
    yield
    obs.disable()


def _span(name, seconds, **attrs):
    span = Span(name, dict(attrs), start=0.0, end=seconds)
    return span


class TestTailSampler:
    def test_recent_ring_bounded_oldest_first(self):
        tail = TailSampler(recent=3)
        for i in range(5):
            tail.offer(_span(f"t{i}", 0.001))
        assert [s.name for s in tail.recent] == ["t2", "t3", "t4"]
        assert tail.offered == 5

    def test_slowest_survive_newer_faster_traces(self):
        tail = TailSampler(slow=2)
        tail.offer(_span("slow", 9.0))
        tail.offer(_span("slower", 10.0))
        for i in range(20):
            tail.offer(_span(f"fast{i}", 0.001))
        assert [s.name for s in tail.slowest] == ["slower", "slow"]

    def test_error_traces_kept(self):
        tail = TailSampler(errors=2)
        tail.offer(_span("ok", 0.001, status=200))
        child_fail = _span("parent", 0.002)
        child_fail.children.append(_span("child", 0.001, error="boom"))
        tail.offer(child_fail)
        tail.offer(_span("5xx", 0.001, status=503))
        assert [s.name for s in tail.errors] == ["parent", "5xx"]

    def test_is_error_trace(self):
        assert not TailSampler.is_error_trace(_span("ok", 0, status=200))
        assert TailSampler.is_error_trace(_span("e", 0, error="x"))
        assert TailSampler.is_error_trace(_span("s", 0, status=500))
        # Non-integer status attributes never classify as errors.
        assert not TailSampler.is_error_trace(_span("s", 0, status="bad"))

    def test_clear(self):
        tail = TailSampler()
        tail.offer(_span("a", 1.0, error="x"))
        tail.clear()
        assert tail.recent == [] and tail.slowest == []
        assert tail.errors == [] and tail.offered == 0

    def test_default_bounds(self):
        tail = TailSampler()
        for i in range(TAIL_RECENT_KEPT * 2):
            tail.offer(_span(f"t{i}", 0.001, error="x"))
        assert len(tail.recent) == TAIL_RECENT_KEPT
        assert len(tail.slowest) == TAIL_SLOWEST_KEPT
        assert len(tail.errors) == TAIL_ERRORS_KEPT


class TestServingRecorder:
    def test_roots_bounded_with_tail(self):
        recorder = serving_recorder()
        assert isinstance(recorder.tail, TailSampler)
        for i in range(SERVE_MAX_ROOTS + 10):
            with recorder.span(f"r{i}"):
                pass
        assert len(recorder.roots) == SERVE_MAX_ROOTS
        assert recorder.roots_dropped == 10
        assert recorder.tail.offered == SERVE_MAX_ROOTS + 10

    def test_completed_traces_offered_to_tail(self):
        recorder = TraceRecorder(tail=TailSampler())
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        # Only the completed *root* is offered, once.
        assert recorder.tail.offered == 1
        assert recorder.tail.recent[0].name == "outer"


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


@pytest.fixture
def plane():
    """A ready TelemetryHTTPServer over the Fig 2/3 site, torn down."""
    recorder = obs.enable(serving_recorder())
    site = DynamicSiteServer(FIG3_QUERY, fig2_data(), fig7_templates())
    server = TelemetryHTTPServer(recorder, port=0, access_log=False)
    server.start_background()
    try:
        server.mount(site)
        site.warm()
        server.set_ready()
        yield server
    finally:
        server.request_shutdown()
        thread = server._serve_thread
        if thread is not None:
            thread.join(10)
        server.server_close()
        obs.disable()


class TestEndpoints:
    def test_healthz_before_ready(self):
        recorder = obs.enable(serving_recorder())
        server = TelemetryHTTPServer(recorder, port=0, access_log=False)
        server.start_background()
        try:
            status, _, body = _get(server.url + "/healthz")
            assert status == 200
            # First line stays "ok" (probe compatibility); the body
            # now also reports uptime, version and SLO state.
            lines = body.splitlines()
            assert lines[0] == "ok"
            assert lines[1].startswith("uptime_seconds: ")
            assert lines[2] == f"version: {repro.__version__}"
            assert lines[3].startswith("slo: ")
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/readyz")
            assert err.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/RootPage__.html")
            assert err.value.code == 503
        finally:
            server.request_shutdown()
            server._serve_thread.join(10)
            server.server_close()

    def test_readyz_flips_after_warm(self, plane):
        status, _, body = _get(plane.url + "/readyz")
        assert (status, body) == (200, "ready\n")

    def test_root_page_served_with_request_id(self, plane):
        status, headers, body = _get(plane.url + "/")
        assert status == 200
        assert "Publications" in body
        assert headers["X-Request-Id"].startswith("req-")
        assert headers["Content-Type"].startswith("text/html")

    def test_named_page_served(self, plane):
        status, _, body = _get(plane.url + "/RootPage__.html")
        assert status == 200 and "Publications" in body

    def test_unknown_page_404(self, plane):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(plane.url + "/nope.html")
        assert err.value.code == 404

    def test_unknown_debug_endpoint_404(self, plane):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(plane.url + "/debug/nope")
        assert err.value.code == 404
        # The 404 body points at what does exist.
        body = err.value.read().decode()
        assert "/debug/traces" in body and "/debug/slo" in body

    def test_debug_index_text_and_json(self, plane):
        for path in ("/debug", "/debug/"):
            status, _, body = _get(plane.url + path)
            assert status == 200
            for endpoint in DEBUG_ENDPOINTS:
                assert endpoint in body
        status, _, body = _get(plane.url + "/debug/?format=json")
        document = json.loads(body)
        assert set(document["endpoints"]) == set(DEBUG_ENDPOINTS)

    def test_slo_endpoints_without_evaluator(self, plane):
        for path in ("/debug/slo", "/debug/alerts"):
            status, _, body = _get(plane.url + path)
            assert status == 200
            assert json.loads(body) == {"enabled": False}

    def test_slo_and_alerts_endpoints_with_evaluator(self, plane):
        evaluator = SLOEvaluator(plane.recorder, step=0.05)
        plane.slo_evaluator = evaluator
        canary = CanaryProber(plane.site_server, plane.recorder,
                              interval=60.0, evaluator=evaluator)
        plane.canary = canary
        canary.probe()
        time.sleep(0.06)
        canary.probe()

        status, _, body = _get(plane.url + "/debug/slo")
        document = json.loads(body)
        assert document["enabled"] and document["ticks"] >= 2
        names = {entry["name"] for entry in document["slos"]}
        assert "canary-latency" in names and "server-latency" in names

        status, _, body = _get(plane.url + "/debug/alerts")
        document = json.loads(body)
        assert document["enabled"] and document["firing"] == 0
        assert document["canary"]["probes"] == 2
        states = {alert["state"] for alert in document["alerts"]}
        assert states == {"ok"}

    def test_healthz_reports_worst_burning_slo(self, plane):
        evaluator = SLOEvaluator(plane.recorder, step=0.05)
        plane.slo_evaluator = evaluator
        evaluator.evaluate(now=100.0)
        plane.site_server.request("RootPage__.html")
        evaluator.evaluate(now=100.1)
        _, _, body = _get(plane.url + "/healthz")
        assert "slo: worst burn " in body

    def test_metrics_parseable_and_counting(self, plane):
        _get(plane.url + "/")
        _, headers, text = _get(plane.url + "/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        parsed = obs.parse_prometheus(text)
        requests = next(v for n, _, v in parsed["samples"]
                        if n == "strudel_http_requests_total")
        assert requests >= 1
        names = {n for n, _, _ in parsed["samples"]}
        assert "strudel_server_request_seconds_count" in names

    def test_debug_traces_correlate_request_id(self, plane):
        _, headers, _ = _get(plane.url + "/")
        request_id = headers["X-Request-Id"]
        _, _, text = _get(plane.url + "/debug/traces")
        doc = json.loads(text)
        assert doc["offered"] >= 1
        ids = {root["attributes"].get("request")
               for root in doc["recent"]}
        assert request_id in ids
        # The page request's whole tree hangs under one http.request
        # root (warm-up traces appear as separate roots alongside).
        assert any(root["name"] == "http.request"
                   and root["attributes"].get("request") == request_id
                   for root in doc["recent"])

    def test_debug_traces_depth_param(self, plane):
        _get(plane.url + "/")
        _, _, text = _get(plane.url + "/debug/traces?depth=1")
        doc = json.loads(text)
        page_roots = [r for r in doc["recent"]
                      if r["attributes"].get("path") == "/"]
        assert page_roots and all(r["children"] == []
                                  for r in page_roots)

    def test_debug_events_correlate_request_id(self, plane):
        _, headers, _ = _get(plane.url + "/")
        request_id = headers["X-Request-Id"]
        _, _, text = _get(plane.url + "/debug/events")
        events = json.loads(text)
        access = [e for e in events if e["name"] == "http.access"]
        assert request_id in {e["attributes"].get("request")
                              for e in access}
        # The site layer logged the same id (one request, one story).
        served = [e for e in events if e["name"] == "server.request"]
        assert request_id in {e["attributes"].get("request")
                              for e in served}

    def test_debug_events_level_and_limit(self, plane):
        with pytest.raises(urllib.error.HTTPError):
            _get(plane.url + "/nope.html")  # emits a warning event
        _, _, text = _get(plane.url + "/debug/events?level=warning")
        events = json.loads(text)
        assert events
        assert all(e["level"] in ("warning", "error") for e in events)
        _, _, text = _get(plane.url + "/debug/events?limit=1")
        assert len(json.loads(text)) == 1

    def test_debug_profile(self, plane):
        _get(plane.url + "/")
        _, _, text = _get(plane.url + "/debug/profile")
        entries = json.loads(text)
        names = {e["name"] for e in entries}
        assert "http.request" in names and "server.request" in names
        for entry in entries:
            assert entry["calls"] >= 1
            assert entry["cum_seconds"] >= entry["self_seconds"] >= 0

    def test_internal_route_error_is_500(self, plane):
        plane.mount(None)  # readiness stays set: _page now crashes...
        plane.site_server = _Exploder()
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(plane.url + "/")
        assert err.value.code == 500
        errors = plane.recorder.metrics.counter("http.errors").value
        assert errors == 1
        _, _, text = _get(plane.url + "/debug/traces")
        assert json.loads(text)["errors"], "error trace tail-sampled"


class _Exploder:
    def roots(self):
        raise RuntimeError("boom")


class TestSnapshot:
    def test_write_snapshot_files(self, plane, tmp_path):
        _get(plane.url + "/")
        paths = plane.write_snapshot(str(tmp_path / "snap"))
        assert os.path.isfile(paths["metrics"])
        assert os.path.isfile(paths["events"])
        assert os.path.isfile(paths["snapshot"])
        obs.parse_prometheus(
            open(paths["metrics"], encoding="utf-8").read())
        with open(paths["snapshot"], encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["uptime_seconds"] > 0
        assert doc["server"]["requests"] >= 1
        assert doc["traces"]["offered"] >= 1
        assert any(e["name"] == "http.request" for e in doc["profile"])


class TestConcurrency:
    THREADS = 8
    PER_THREAD = 50

    def test_no_lost_updates_under_load(self, plane):
        """8 threads x 50 requests: every counter lands exactly once."""
        page_fetches = 0
        metrics_bodies = []
        failures = []

        def worker(index):
            for i in range(self.PER_THREAD):
                try:
                    if i % 2:
                        _, _, text = _get(plane.url + "/metrics")
                        if index == 0 and i == self.PER_THREAD // 2:
                            metrics_bodies.append(text)
                    else:
                        _get(plane.url + "/")
                except Exception as exc:  # pragma: no cover - diagnostic
                    failures.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not failures
        total = self.THREADS * self.PER_THREAD
        page_fetches = self.THREADS * (self.PER_THREAD -
                                       self.PER_THREAD // 2)
        metrics = plane.recorder.metrics
        assert metrics.counter("http.requests").value == total
        log = plane.site_server.log
        assert log.requests == page_fetches
        assert log.errors == 0
        assert metrics.counter("server.requests").value == page_fetches
        # A mid-load exposition parsed cleanly.
        assert metrics_bodies
        obs.parse_prometheus(metrics_bodies[0])
        # And the final one accounts every request exactly.
        _, _, text = _get(plane.url + "/metrics")
        parsed = obs.parse_prometheus(text)
        served = next(v for n, _, v in parsed["samples"]
                      if n == "strudel_server_requests_total")
        assert served == page_fetches


class TestServeCLI:
    """End-to-end: repro serve as a real subprocess over real HTTP."""

    def _workspace(self, tmp_path):
        (tmp_path / "pubs.ddl").write_text(FIG2_DDL)
        (tmp_path / "site.struql").write_text(FIG3_QUERY)
        templates_dir = tmp_path / "templates"
        templates_dir.mkdir()
        templates = fig7_templates()
        for name in templates.names():
            suffix = ".tmpl" if templates.is_page_template(name) \
                else ".component.tmpl"
            (templates_dir / f"{name}{suffix}").write_text(
                templates.get(name).source)
        return tmp_path

    def test_serve_integration(self, tmp_path):
        workspace = self._workspace(tmp_path)
        snap = tmp_path / "snap"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--snapshot-dir", str(snap), "build",
             "--data", str(workspace / "pubs.ddl"),
             "--query", str(workspace / "site.struql"),
             "--templates", str(workspace / "templates")],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env, cwd=str(tmp_path))
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving on http://")
            base = banner.split("serving on ", 1)[1]

            deadline = time.time() + 30
            ready = False
            while time.time() < deadline:
                try:
                    status, _, _ = _get(base + "/readyz", timeout=2)
                    if status == 200:
                        ready = True
                        break
                except (urllib.error.HTTPError, urllib.error.URLError,
                        OSError):
                    pass
                time.sleep(0.1)
            assert ready, "server never became ready"

            status, _, _ = _get(base + "/healthz")
            assert status == 200
            status, headers, body = _get(base + "/")
            assert status == 200 and "Publications" in body
            request_id = headers["X-Request-Id"]

            _, _, metrics_text = _get(base + "/metrics")
            parsed = obs.parse_prometheus(metrics_text)
            assert any(n == "strudel_http_requests_total"
                       for n, _, _ in parsed["samples"])

            _, _, traces_text = _get(base + "/debug/traces")
            traces = json.loads(traces_text)
            ids = {root["attributes"].get("request")
                   for root in traces["recent"]}
            assert request_id in ids

            _, _, events_text = _get(base + "/debug/events")
            events = json.loads(events_text)
            assert request_id in {
                e["attributes"].get("request") for e in events
                if e["name"] == "http.access"}
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(10)
            proc.stdout.close()
        assert proc.returncode == 0
        # Graceful shutdown flushed the final snapshot.
        assert (snap / "metrics.prom").is_file()
        assert (snap / "events.jsonl").is_file()
        assert (snap / "snapshot.json").is_file()
        doc = json.loads((snap / "snapshot.json").read_text())
        assert doc["server"]["requests"] >= 1


class TestDebugQueries:
    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        from repro.obs.queries import (
            QueryStatsRegistry,
            get_query_registry,
            set_query_registry,
        )
        previous = get_query_registry()
        set_query_registry(QueryStatsRegistry())
        yield
        set_query_registry(previous)

    def test_debug_queries_snapshot(self, plane):
        from repro.obs.queries import fingerprint

        # Warming the mounted site computed its root pages, and each
        # click-time compute is observed under the site query's
        # fingerprint.
        status, headers, text = _get(plane.url + "/debug/queries")
        assert status == 200
        snapshot = json.loads(text)
        assert {"fingerprints", "observed", "evicted", "max_fingerprints",
                "slow_seconds", "queries"} <= set(snapshot)
        assert snapshot["fingerprints"] >= 1
        fps = {entry["fingerprint"] for entry in snapshot["queries"]}
        assert fingerprint(FIG3_QUERY) in fps
        entry = snapshot["queries"][0]
        assert {"fingerprint", "text", "count", "p50_s", "p95_s",
                "last_plan"} <= set(entry)
        assert entry["p50_s"] > 0

    def test_debug_queries_limit_param(self, plane):
        from repro.obs.queries import get_query_registry
        for i in range(3):
            get_query_registry().observe(f"where C{i}(x)", seconds=0.001)
        _, _, text = _get(plane.url + "/debug/queries?limit=2")
        snapshot = json.loads(text)
        assert len(snapshot["queries"]) == 2
        assert snapshot["fingerprints"] >= 3  # population unaffected

    def test_debug_endpoints_json_content_type(self, plane):
        for path in ("/debug/traces", "/debug/events", "/debug/profile",
                     "/debug/queries"):
            _, headers, _ = _get(plane.url + path)
            assert headers["Content-Type"] == \
                "application/json; charset=utf-8", path

    def test_snapshot_document_includes_queries(self, plane, tmp_path):
        paths = plane.write_snapshot(str(tmp_path / "snap"))
        document = json.loads(
            open(paths["snapshot"], encoding="utf-8").read())
        assert "queries" in document
        assert document["queries"]["fingerprints"] >= 1


@pytest.fixture
def lineage_plane():
    """The telemetry plane with lineage recording on (serve mode)."""
    from repro.obs.lineage import lineage_recording
    with lineage_recording():
        recorder = obs.enable(serving_recorder())
        site = DynamicSiteServer(FIG3_QUERY, fig2_data(),
                                 fig7_templates())
        server = TelemetryHTTPServer(recorder, port=0, access_log=False,
                                     max_age=3600.0)
        server.start_background()
        try:
            server.mount(site)
            site.warm()
            server.set_ready()
            yield server
        finally:
            server.request_shutdown()
            thread = server._serve_thread
            if thread is not None:
                thread.join(10)
            server.server_close()
            obs.disable()


class TestDebugLineage:
    def test_disabled_summary(self, plane):
        status, _, text = _get(plane.url + "/debug/lineage")
        assert status == 200
        assert json.loads(text) == {"enabled": False}

    def test_enabled_summary(self, lineage_plane):
        _get(lineage_plane.url + "/")  # pages join as they are served
        _, _, text = _get(lineage_plane.url + "/debug/lineage")
        doc = json.loads(text)
        assert doc["enabled"] is True
        assert doc["nodes"] > 0 and doc["pages"] > 0
        assert doc["max_age_seconds"] == 3600.0
        assert "source_records" in doc

    def test_served_page_resolves(self, lineage_plane):
        _get(lineage_plane.url + "/")
        _, _, text = _get(lineage_plane.url +
                          "/debug/lineage?page=RootPage__.html")
        doc = json.loads(text)
        assert doc["derivation"]["fn"] == "RootPage"
        assert doc["template"] == "RootPage"
        assert doc["url"] == "RootPage__.html"

    def test_unvisited_page_materialized_on_demand(self, lineage_plane):
        # Click-time pages that no visitor has requested yet are
        # resolved and materialized by the endpoint itself.
        _, _, text = _get(lineage_plane.url +
                          "/debug/lineage?page=YearPage_1997_.html")
        doc = json.loads(text)
        assert doc["derivation"]["fn"] == "YearPage"

    def test_unknown_page_404(self, lineage_plane):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(lineage_plane.url + "/debug/lineage?page=nope.html")
        assert err.value.code == 404

    def test_metrics_carry_freshness_gauges(self, lineage_plane):
        _, _, text = _get(lineage_plane.url + "/metrics")
        names = {n for n, _, _ in obs.parse_prometheus(text)["samples"]}
        assert "strudel_lineage_sources" in names, sorted(
            n for n in names if "lineage" in n)
        assert "strudel_lineage_pages_stale_total" in names

    def test_snapshot_document_includes_lineage(self, lineage_plane,
                                                tmp_path):
        paths = lineage_plane.write_snapshot(str(tmp_path / "snap"))
        document = json.loads(
            open(paths["snapshot"], encoding="utf-8").read())
        assert document["lineage"]["enabled"] is True
        assert "sources" in document


class TestDebugMatviews:
    def test_endpoint_reports_registry_state(self, plane):
        _get(plane.url + "/")  # one served page -> one body view
        _get(plane.url + "/")  # and one hit
        status, headers, text = _get(plane.url + "/debug/matviews")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        doc = json.loads(text)
        assert doc["enabled"] is True
        assert doc["views"] >= 1
        assert doc["hits"] >= 1 and doc["misses"] >= 1
        top = doc["top"][0]
        assert "key" in top and "footprint" in top and "hits" in top

    def test_limit_parameter_caps_top(self, plane):
        for path in ("/", "/YearPage_1997_.html",
                     "/YearPage_1998_.html"):
            _get(plane.url + path)
        _, _, text = _get(plane.url + "/debug/matviews?limit=1")
        doc = json.loads(text)
        assert doc["views"] >= 2
        assert len(doc["top"]) == 1

    def test_unmounted_plane_reports_disabled(self):
        recorder = obs.enable(serving_recorder())
        server = TelemetryHTTPServer(recorder, port=0, access_log=False)
        server.start_background()
        try:
            server.set_ready()
            _, _, text = _get(server.url + "/debug/matviews")
            assert json.loads(text) == {"enabled": False}
        finally:
            server.request_shutdown()
            server._serve_thread.join(10)
            server.server_close()
            obs.disable()

    def test_snapshot_document_includes_matviews(self, plane, tmp_path):
        _get(plane.url + "/")
        paths = plane.write_snapshot(str(tmp_path / "snap"))
        document = json.loads(
            open(paths["snapshot"], encoding="utf-8").read())
        assert document["matviews"]["enabled"] is True
        assert document["matviews"]["views"] >= 1

    def test_counters_reach_metrics_endpoint(self, plane):
        _get(plane.url + "/")
        _get(plane.url + "/")
        _, _, text = _get(plane.url + "/metrics")
        names = {n for n, _, _ in obs.parse_prometheus(text)["samples"]}
        assert "strudel_matview_hits_total" in names, sorted(
            n for n in names if "matview" in n)
        assert "strudel_matview_misses_total" in names
