"""The dynamic page server: click-time rendering, crawling, caching."""

import pytest

from repro.graph import Atom, Oid
from repro.site import DynamicSiteServer
from repro.sites.homepage import FIG3_QUERY, fig7_templates


@pytest.fixture
def server(fig2_graph):
    return DynamicSiteServer(FIG3_QUERY, fig2_graph, fig7_templates())


class TestRequests:
    def test_root_served(self, server):
        root = server.roots()[0]
        response = server.request(root)
        assert response.status == 200
        assert "Publications" in response.body

    def test_request_by_path(self, server):
        response = server.request("RootPage__.html")
        assert response.status == 200

    def test_year_page_contains_presentation(self, server):
        response = server.request(
            Oid.skolem("YearPage", (Atom.int(1997),)))
        assert response.status == 200
        assert "Specifying Representations" in response.body

    def test_unknown_page_404(self, server):
        response = server.request("nope.html")
        assert response.status == 404
        assert server.log.errors == 1

    def test_latencies_recorded(self, server):
        server.request(server.roots()[0])
        server.request(server.roots()[0])
        assert server.log.requests == 2
        assert len(server.log.latencies) == 2
        assert server.log.mean_latency > 0

    def test_percentile_latencies(self, server):
        for _ in range(20):
            server.request(server.roots()[0])
        log = server.log
        assert log.p50_latency > 0
        assert log.p95_latency >= log.p50_latency
        assert log.histogram.count == 20

    def test_latency_samples_are_bounded(self):
        from repro.site.server import ServerLog
        log = ServerLog()
        for i in range(ServerLog.MAX_SAMPLES * 4):
            log.record(0.001 * (i % 10 + 1))
        assert len(log.latencies) == ServerLog.MAX_SAMPLES
        assert isinstance(log.latencies, tuple)
        assert log.requests == 0  # record() only accounts latency
        assert log.histogram.count == ServerLog.MAX_SAMPLES * 4

    def test_rendered_equals_materialized(self, server, fig4_site,
                                          fig2_graph):
        """Click-time HTML equals build-time HTML for every page."""
        from repro.templates import HtmlGenerator
        static = HtmlGenerator(fig4_site, fig7_templates())
        for page in static.pages():
            dynamic_body = server.request(page).body
            assert dynamic_body == static.render(page), str(page)


class TestCrawl:
    def test_crawl_visits_reachable_pages(self, server):
        responses = server.crawl()
        assert all(r.status == 200 for r in responses)
        # 9 pages: root, abstracts, 2 years, 3 categories, 2 abstracts.
        assert len(responses) == 9

    def test_crawl_limit(self, server):
        responses = server.crawl(limit=3)
        assert len(responses) == 3

    def test_crawl_from_specific_page(self, server):
        year = Oid.skolem("YearPage", (Atom.int(1997),))
        responses = server.crawl(start=year)
        urls = {r.oid for r in responses}
        assert year in urls

    def test_empty_roots(self, fig2_graph):
        server = DynamicSiteServer("""
            input BIBTEX
            where Publications(x)
            create P(x)
            link P(x) -> "of" -> x
            output O
        """, fig2_graph, fig7_templates())
        assert server.crawl() == []


class TestRouting:
    def test_resolve_path_matches_url_for(self, server):
        for page in server.crawl():
            url = server.generator.url_for(page.oid)
            assert server.resolve_path(url) == page.oid
            assert server.resolve_path("/" + url) == page.oid

    def test_resolve_unknown_path(self, server):
        assert server.resolve_path("nope.html") is None

    def test_url_map_tracks_lazy_materialization(self, server):
        root = server.roots()[0]
        root_url = server.generator.url_for(root)
        assert server.resolve_path(root_url) == root
        # Materialize more pages; the map must pick them up.
        year = Oid.skolem("YearPage", (Atom.int(1997),))
        server.request(year)
        assert server.resolve_path(server.generator.url_for(year)) == year

    def test_url_map_survives_invalidate(self, server):
        root = server.roots()[0]
        url = server.generator.url_for(root)
        assert server.resolve_path(url) == root
        server.invalidate()
        assert server.resolve_path(url) == root


class TestStaleness:
    def test_invalidate_refreshes(self, server, fig2_graph):
        before = server.request(server.roots()[0]).body
        pub3 = Oid("pub3")
        fig2_graph.add_to_collection("Publications", pub3)
        fig2_graph.add_edge(pub3, "year", Atom.int(2001))
        fig2_graph.add_edge(pub3, "title", Atom.string("Late Addition"))
        stale = server.request(server.roots()[0]).body
        assert stale == before  # cache serves the stale page
        server.invalidate()
        fresh = server.request(server.roots()[0]).body
        assert "2001" in fresh


class TestServerLogSnapshot:
    def test_request_ids_are_stable(self, server):
        first = server.request(server.roots()[0])
        second = server.request(server.roots()[0])
        assert first.request_id == "req-1"
        assert second.request_id == "req-2"

    def test_snapshot_plain_dict(self, server):
        for _ in range(3):
            server.request(server.roots()[0])
        server.request("nope.html")
        snapshot = server.log.snapshot()
        assert isinstance(snapshot, dict)
        assert snapshot["requests"] == 4
        assert snapshot["errors"] == 1
        assert snapshot["p95_latency"] >= snapshot["p50_latency"] > 0
        assert snapshot["histogram"]["count"] == 4
        assert len(snapshot["samples"]) == 4

    def test_slowest_requests_ranked(self, server):
        from repro.site.server import SERVER_SLOWEST_KEPT, ServerLog
        log = ServerLog()
        for i in range(SERVER_SLOWEST_KEPT * 2):
            log.record(0.001 * (i + 1), request_id=f"req-{i + 1}",
                       page=f"p{i + 1}", status=200)
        slowest = log.slowest
        assert len(slowest) == SERVER_SLOWEST_KEPT
        seconds = [entry["seconds"] for entry in slowest]
        assert seconds == sorted(seconds, reverse=True)
        assert slowest[0]["id"] == f"req-{SERVER_SLOWEST_KEPT * 2}"
        assert slowest[0]["page"] == f"p{SERVER_SLOWEST_KEPT * 2}"

    def test_record_without_context_skips_slowest(self):
        from repro.site.server import ServerLog
        log = ServerLog()
        log.record(0.5)
        assert log.slowest == []
        assert log.histogram.count == 1

    def test_constants_documented(self):
        from repro.site import server as server_mod
        assert server_mod.ServerLog.MAX_SAMPLES == \
            server_mod.SERVER_RESERVOIR_SIZE
        assert server_mod.SERVER_SLOWEST_KEPT > 0
        assert server_mod.SERVER_LATENCY_BUCKETS

    def test_request_events_carry_request_id(self, server):
        from repro import obs
        with obs.recording() as rec:
            server.invalidate()  # fresh caches under the recorder
            response = server.request(server.roots()[0])
        events = [e for e in rec.events.records()
                  if e.name == "server.request"]
        assert events
        assert events[-1].attributes["request"] == response.request_id
        assert events[-1].trace_id
        obs.disable()


class TestRequestIdPassThrough:
    def test_front_end_id_wins(self, server):
        response = server.request(server.roots()[0], request_id="req-77")
        assert response.request_id == "req-77"
        assert server.log.slowest[0]["id"] == "req-77"

    def test_passed_id_reaches_span_and_events(self, server):
        from repro import obs
        with obs.recording() as rec:
            server.invalidate()
            response = server.request(server.roots()[0],
                                      request_id="req-ext")
        assert response.span.attributes["request"] == "req-ext"
        served = [e for e in rec.events.records()
                  if e.name == "server.request"]
        assert served[-1].attributes["request"] == "req-ext"


class TestErrorClassification:
    def test_classify_error(self):
        from repro.errors import PageNotFoundError, SiteError
        from repro.site.server import classify_error
        assert classify_error(PageNotFoundError("x")) == \
            (404, "not_found")
        assert classify_error(SiteError("x")) == (500, "SiteError")
        assert classify_error(ValueError("x")) == (500, "internal")

    def test_render_failure_is_500(self, server, monkeypatch):
        from repro import obs

        def explode(oid):
            raise ValueError("render blew up")

        with obs.recording() as rec:
            server.invalidate()
            monkeypatch.setattr(server.generator, "render", explode)
            response = server.request(server.roots()[0])
        assert response.status == 500
        assert "500 Internal Server Error" in response.body
        assert "internal" in response.body
        assert response.span.attributes["error"] == "internal"
        assert server.log.errors == 1
        assert rec.metrics.counter("server.errors").value == 1
        assert rec.metrics.counter("server.errors.internal").value == 1
        errors = [e for e in rec.events.records()
                  if e.name == "server.error"]
        assert errors and errors[-1].attributes["kind"] == "internal"

    def test_404_keeps_not_found_classification(self, server):
        from repro import obs
        with obs.recording() as rec:
            server.invalidate()
            response = server.request("nope.html")
        assert response.status == 404
        assert "error" not in response.span.attributes
        assert rec.metrics.counter(
            "server.errors.not_found").value == 1


class TestSlowRequestWarning:
    def test_slowest_heap_entry_warns(self):
        from repro import obs
        from repro.site.server import ServerLog
        with obs.recording() as rec:
            log = ServerLog()
            log.record(0.25, request_id="req-1", page="p", status=200)
        warns = [e for e in rec.events.records()
                 if e.name == "server.slow_request"]
        assert len(warns) == 1
        assert warns[0].level == "warning"
        assert warns[0].attributes["request"] == "req-1"
        assert rec.metrics.counter("server.slow_requests").value == 1

    def test_threshold_suppresses_fast_requests(self):
        from repro import obs
        from repro.site.server import ServerLog
        with obs.recording() as rec:
            log = ServerLog(slow_warn_seconds=0.1)
            log.record(0.001, request_id="req-1", page="p", status=200)
            log.record(0.5, request_id="req-2", page="p", status=200)
        warns = [e for e in rec.events.records()
                 if e.name == "server.slow_request"]
        assert [e.attributes["request"] for e in warns] == ["req-2"]

    def test_no_warning_without_heap_entry(self):
        from repro import obs
        from repro.site.server import ServerLog
        with obs.recording() as rec:
            log = ServerLog()
            log.record(0.5)  # no id/page: never enters the heap
        assert not [e for e in rec.events.records()
                    if e.name == "server.slow_request"]

    def test_counts_are_lock_guarded(self):
        import threading
        from repro.site.server import ServerLog
        log = ServerLog()

        def worker():
            for _ in range(500):
                log.count_request()
                log.count_error()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.requests == 8 * 500
        assert log.errors == 8 * 500
