"""The programmatic query builder (QBE direction, section 6)."""

import pytest

from repro.errors import StruQLSemanticError
from repro.graph import Atom, Oid
from repro.sites.homepage import FIG3_QUERY, fig2_data
from repro.struql import QueryEngine, parse_query
from repro.struql.builder import (
    QueryBuilder,
    alt,
    anylabel,
    anypath,
    concat,
    const,
    edge,
    eq,
    ge,
    isin,
    label,
    labelpred,
    lt,
    member,
    ne,
    notc,
    path,
    skolem,
    star,
    var,
)


def build_fig3():
    """The Fig 3 query, constructed programmatically."""
    x, l, v = var("x"), var("l"), var("v")
    b = QueryBuilder("BIBTEX", output="HomePage")
    b.create(skolem("RootPage"), skolem("AbstractsPage"))
    b.link(skolem("RootPage"), "AbstractsPage", skolem("AbstractsPage"))
    with b.where(member("Publications", x), edge(x, l, v)):
        b.create(skolem("PaperPresentation", x), skolem("AbstractPage", x))
        b.link(skolem("AbstractPage", x), l, v)
        b.link(skolem("PaperPresentation", x), l, v)
        b.link(skolem("PaperPresentation", x), "Abstract",
               skolem("AbstractPage", x))
        b.link(skolem("AbstractsPage"), "Abstract",
               skolem("AbstractPage", x))
        with b.where(eq(l, "year")):
            b.create(skolem("YearPage", v))
            b.link(skolem("YearPage", v), "Year", v)
            b.link(skolem("YearPage", v), "Paper",
                   skolem("PaperPresentation", x))
            b.link(skolem("RootPage"), "YearPage", skolem("YearPage", v))
        with b.where(eq(l, "category")):
            b.create(skolem("CategoryPage", v))
            b.link(skolem("CategoryPage", v), "Name", v)
            b.link(skolem("CategoryPage", v), "Paper",
                   skolem("PaperPresentation", x))
            b.link(skolem("RootPage"), "CategoryPage",
                   skolem("CategoryPage", v))
    return b


class TestBuilder:
    def test_builds_fig3_equivalent(self):
        built = build_fig3().build()
        data = fig2_data()
        engine = QueryEngine()
        from_text = engine.evaluate(parse_query(FIG3_QUERY), data).output
        from_builder = engine.evaluate(built, data).output
        assert set(from_text.edges()) == set(from_builder.edges())
        assert from_text.node_count == from_builder.node_count

    def test_to_text_parses_back(self):
        text = build_fig3().to_text()
        reparsed = parse_query(text)
        assert reparsed.link_count() == 11
        assert set(reparsed.skolem_functions()) == {
            "RootPage", "AbstractsPage", "PaperPresentation",
            "AbstractPage", "YearPage", "CategoryPage"}

    def test_semantic_checks_apply(self):
        b = QueryBuilder("G")
        with b.where(member("C", var("x"))):
            b.create(skolem("F", var("x")))
            b.link(skolem("F", var("x")), "to", skolem("Ghost", var("x")))
        with pytest.raises(StruQLSemanticError):
            b.build()

    def test_unbalanced_scopes_rejected(self):
        b = QueryBuilder("G")
        scope = b.where(member("C", var("x")))
        scope.__enter__()
        with pytest.raises(RuntimeError):
            b.build()

    def test_collect_and_constants(self):
        from repro.graph import Graph
        graph = Graph("G")
        a = Oid("a")
        graph.add_to_collection("C", a)
        graph.add_edge(a, "age", Atom.int(41))
        b = QueryBuilder("G", output="O")
        x, n = var("x"), var("n")
        with b.where(member("C", x), edge(x, "age", n), ge(n, 40)):
            b.create(skolem("Old", x))
            b.collect("Olds", skolem("Old", x))
        out = QueryEngine().evaluate(b.build(), graph).output
        assert out.collection("Olds") == [Oid.skolem("Old", (a,))]

    def test_path_combinators(self):
        from repro.graph import Graph
        graph = Graph("G")
        graph.add_edge(Oid("a"), "x", Oid("b"))
        graph.add_edge(Oid("b"), "y", Oid("c"))
        graph.add_to_collection("Roots", Oid("a"))
        b = QueryBuilder("G", output="O")
        s, t = var("s"), var("t")
        expr = concat(label("x"), star(alt(label("y"), label("z"))))
        with b.where(member("Roots", s), path(s, expr, t)):
            b.create(skolem("Hit", t))
            b.collect("Hits", skolem("Hit", t))
        out = QueryEngine().evaluate(b.build(), graph).output
        hits = {m.skolem_args[0] for m in out.collection("Hits")}
        assert hits == {Oid("b"), Oid("c")}

    def test_all_comparison_helpers(self):
        for fn, op in ((eq, "="), (ne, "!="), (lt, "<"), (ge, ">=")):
            cond = fn(var("a"), 3)
            assert cond.op == op
            assert cond.right == const(3)

    def test_misc_combinators(self):
        assert str(anylabel()) == "true"
        assert str(anypath()) == "true*"
        assert str(labelpred("isName")) == "isName"
        assert str(notc(member("C", var("x")))) == "not(C(x))"
        assert isin(var("l"), "a", "b").values[1] == const("b")

    def test_strings_and_scalars_autowrap(self):
        cond = edge(var("x"), "label", "value")
        assert cond.target == const("value")
        term = skolem("F", 3, "s")
        assert term.args[0] == const(3)
