"""JSON (de)serialization of graphs and databases."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Atom,
    AtomType,
    Database,
    Graph,
    Oid,
    database_from_dict,
    database_from_json,
    database_to_dict,
    database_to_json,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)
from repro.graph.serialization import object_from_dict, object_to_dict


class TestObjects:
    def test_plain_oid_roundtrip(self):
        assert object_from_dict(object_to_dict(Oid("a"))) == Oid("a")

    def test_skolem_oid_roundtrip(self):
        oid = Oid.skolem("YearPage", (Atom.int(1997),))
        back = object_from_dict(object_to_dict(oid))
        assert back == oid and back.skolem_fn == "YearPage"

    def test_atom_roundtrip_all_types(self):
        for atom in (Atom.int(1), Atom.float(2.5), Atom.bool(False),
                     Atom.string("s"), Atom.url("http://x"),
                     Atom.file("a.ps"), Atom.file("a.gif"),
                     Atom.file("a.html"), Atom.file("a.txt")):
            back = object_from_dict(object_to_dict(atom))
            assert back == atom and back.type is atom.type

    def test_bad_payload_rejected(self):
        with pytest.raises(GraphError):
            object_from_dict({"nonsense": 1})
        with pytest.raises(GraphError):
            object_to_dict(42)


class TestGraphRoundtrip:
    def test_structure_preserved(self, tiny_graph):
        back = graph_from_json(graph_to_json(tiny_graph))
        assert back.name == tiny_graph.name
        assert back.node_count == tiny_graph.node_count
        assert back.edge_count == tiny_graph.edge_count
        assert set(back.edges()) == set(tiny_graph.edges())

    def test_collections_preserved(self, tiny_graph):
        back = graph_from_json(graph_to_json(tiny_graph))
        assert back.collection("Root") == [Oid("root")]

    def test_edge_order_preserved(self):
        graph = Graph("g")
        graph.add_edge(Oid("p"), "author", Atom.string("B"))
        graph.add_edge(Oid("p"), "author", Atom.string("A"))
        back = graph_from_dict(graph_to_dict(graph))
        assert [str(v) for v in back.get(Oid("p"), "author")] == ["B", "A"]

    def test_fig4_roundtrip(self, fig4_site):
        back = graph_from_json(graph_to_json(fig4_site))
        assert back.node_count == fig4_site.node_count
        assert set(back.edges()) == set(fig4_site.edges())
        # Skolem provenance survives: the page is still recognizable.
        year = next(n for n in back.nodes() if n.skolem_fn == "YearPage")
        assert year.skolem_args

    def test_malformed_node_entry(self):
        with pytest.raises(GraphError):
            graph_from_dict({"name": "g", "nodes": [{"type": "int",
                                                     "value": 3}]})

    def test_malformed_edge_source(self):
        with pytest.raises(GraphError):
            graph_from_dict({
                "name": "g", "nodes": [],
                "edges": [{"source": {"type": "int", "value": 1},
                           "label": "l", "target": {"oid": "a"}}],
            })


class TestDatabaseRoundtrip:
    def test_multiple_graphs(self, tiny_graph, fig2_graph):
        db = Database("db")
        db.add_graph(tiny_graph)
        db.add_graph(fig2_graph)
        back = database_from_json(database_to_json(db))
        assert back.graph_names() == sorted([tiny_graph.name,
                                             fig2_graph.name])
        assert back.graph("tiny").edge_count == tiny_graph.edge_count

    def test_dict_roundtrip(self, tiny_graph):
        db = Database("db")
        db.add_graph(tiny_graph)
        back = database_from_dict(database_to_dict(db))
        assert back.name == "db"
