"""The grouping/aggregation extension (section 5.2: "the query stage is
independently extensible; for example, we could extend it to include
grouping and aggregation")."""

import pytest

from repro.errors import StruQLError, StruQLSyntaxError
from repro.graph import Atom, Graph, Oid
from repro.struql import QueryEngine, parse_query
from repro.struql.ast import AggregateCond, Var


@pytest.fixture
def pubs() -> Graph:
    graph = Graph("G")
    data = (("p1", ["ann", "bob", "cy"], 1997),
            ("p2", ["ann"], 1997),
            ("p3", ["dee", "eli"], 1998))
    for name, authors, year in data:
        oid = Oid(name)
        graph.add_to_collection("Pubs", oid)
        graph.add_edge(oid, "year", Atom.int(year))
        for author in authors:
            graph.add_edge(oid, "author", Atom.string(author))
    return graph


def run(text, graph, optimizer="cost"):
    return QueryEngine(optimizer=optimizer).evaluate(text, graph).output


class TestParsing:
    def test_count_per_as(self):
        query = parse_query("""
            input G
            where Pubs(x), x -> "author" -> a, count(a) per x as n
            create F(x)
            link F(x) -> "n" -> n
            output O
        """)
        agg = next(c for b in query.blocks() for c in b.conditions
                   if isinstance(c, AggregateCond))
        assert agg.fn == "count"
        assert agg.var == Var("a")
        assert agg.group == (Var("x"),)
        assert agg.out == Var("n")
        assert str(agg) == "count(a) per x as n"

    def test_global_aggregate_no_per(self):
        query = parse_query("""
            input G
            where Pubs(x), count(x) as total
            create S()
            link S() -> "t" -> total
            output O
        """)
        agg = next(c for b in query.blocks() for c in b.conditions
                   if isinstance(c, AggregateCond))
        assert agg.group == ()

    def test_multi_group(self):
        query = parse_query("""
            input G
            where Pubs(x), x -> "year" -> y, x -> "author" -> a,
                  count(a) per x, y as n
            create F(x)
            link F(x) -> "n" -> n
            output O
        """)
        agg = next(c for b in query.blocks() for c in b.conditions
                   if isinstance(c, AggregateCond))
        assert agg.group == (Var("x"), Var("y"))

    def test_unknown_aggregate_function(self):
        with pytest.raises(StruQLSyntaxError):
            parse_query("""
                input G
                where Pubs(x), median(x) as m
                create F(m)
                output O
            """)

    def test_predicate_named_count_still_works(self):
        # Without `as`/`per`, count(...) is an ordinary predicate call.
        query = parse_query("""
            input G
            where Pubs(x), count(x)
            create F(x)
            output O
        """)
        assert not any(isinstance(c, AggregateCond)
                       for b in query.blocks() for c in b.conditions)


class TestSemantics:
    @pytest.mark.parametrize("optimizer", ["naive", "heuristic", "cost"])
    def test_count_distinct_per_group(self, pubs, optimizer):
        out = run("""
            input G
            where Pubs(x), x -> "author" -> a, count(a) per x as n
            create F(x)
            link F(x) -> "n" -> n
            collect All(F(x))
            output O
        """, pubs, optimizer)
        counts = {str(f.skolem_args[0]): out.get_one(f, "n").value
                  for f in out.collection("All")}
        assert counts == {"p1": 3, "p2": 1, "p3": 2}

    def test_filter_on_aggregate(self, pubs):
        out = run("""
            input G
            where Pubs(x), x -> "author" -> a, count(a) per x as n,
                  n >= 2
            create Multi(x)
            collect Multis(Multi(x))
            output O
        """, pubs)
        names = {str(m.skolem_args[0]) for m in out.collection("Multis")}
        assert names == {"p1", "p3"}

    def test_aggregate_runs_after_filters(self, pubs):
        """A filter on the aggregated variable applies first, whatever
        the textual order: the count is over the filtered rows."""
        out = run("""
            input G
            where Pubs(x), x -> "author" -> a, count(a) per x as n,
                  a != "ann"
            create F(x)
            link F(x) -> "n" -> n
            collect All(F(x))
            output O
        """, pubs)
        counts = {str(f.skolem_args[0]): out.get_one(f, "n").value
                  for f in out.collection("All")}
        # p2's only author is ann: no rows survive, so no F(p2) at all.
        assert counts == {"p1": 2, "p3": 2}

    def test_count_distinct_not_rows(self):
        """Join multiplicity must not inflate counts."""
        graph = Graph("G")
        p = Oid("p")
        graph.add_to_collection("Pubs", p)
        graph.add_edge(p, "author", Atom.string("ann"))
        graph.add_edge(p, "tag", Atom.string("t1"))
        graph.add_edge(p, "tag", Atom.string("t2"))
        out = run("""
            input G
            where Pubs(x), x -> "author" -> a, x -> "tag" -> t,
                  count(a) per x as n
            create F(x)
            link F(x) -> "n" -> n
            output O
        """, graph)
        f = Oid.skolem("F", (p,))
        assert out.get_one(f, "n") == Atom.int(1)  # not 2 (t multiplies)

    def test_min_max_sum_avg(self, pubs):
        out = run("""
            input G
            where Pubs(x), x -> "year" -> y,
                  min(y) as lo, max(y) as hi, count(x) as n
            create Stats()
            link Stats() -> "lo" -> lo, Stats() -> "hi" -> hi,
                 Stats() -> "n" -> n
            output O
        """, pubs)
        stats = Oid.skolem("Stats", ())
        assert out.get_one(stats, "lo") == Atom.int(1997)
        assert out.get_one(stats, "hi") == Atom.int(1998)
        assert out.get_one(stats, "n") == Atom.int(3)

    def test_sum_and_avg_numeric(self):
        graph = Graph("G")
        for name, value in (("a", 10), ("b", 20), ("c", 30)):
            oid = Oid(name)
            graph.add_to_collection("C", oid)
            graph.add_edge(oid, "v", Atom.int(value))
        out = run("""
            input G
            where C(x), x -> "v" -> v, sum(v) as s, avg(v) as m
            create R()
            link R() -> "sum" -> s, R() -> "avg" -> m
            output O
        """, graph)
        r = Oid.skolem("R", ())
        assert out.get_one(r, "sum") == Atom.int(60)
        assert out.get_one(r, "avg") == Atom.float(20.0)

    def test_sum_over_non_numeric_fails(self, pubs):
        with pytest.raises(StruQLError):
            run("""
                input G
                where Pubs(x), x -> "author" -> a, sum(a) as s
                create R()
                link R() -> "s" -> s
                output O
            """, pubs)

    def test_count_of_nodes(self, pubs):
        out = run("""
            input G
            where Pubs(x), count(x) as total
            create R()
            link R() -> "total" -> total
            output O
        """, pubs)
        assert out.get_one(Oid.skolem("R", ()), "total") == Atom.int(3)

    def test_aggregate_output_usable_in_skolem(self, pubs):
        out = run("""
            input G
            where Pubs(x), x -> "author" -> a, count(a) per x as n
            create Bucket(n)
            link Bucket(n) -> "pub" -> x
            collect Buckets(Bucket(n))
            output O
        """, pubs)
        buckets = {str(b) for b in out.collection("Buckets")}
        assert buckets == {"Bucket(1)", "Bucket(2)", "Bucket(3)"}


class TestAnalysisIntegration:
    def test_aggregate_output_is_positively_bound(self):
        from repro.struql import is_range_restricted
        assert is_range_restricted("""
            input G
            where Pubs(x), x -> "author" -> a, count(a) per x as n
            create Bucket(n)
            output O
        """)
