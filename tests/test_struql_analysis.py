"""Range-restriction analysis (the paper's open domain-independence
problem, section 3)."""

from repro.struql import analyze, is_range_restricted
from repro.sites import CNN_QUERY, FIG3_QUERY, MFF_QUERY, ORG_QUERY, RODIN_QUERY


class TestRestricted:
    def test_fig3_is_range_restricted(self):
        assert is_range_restricted(FIG3_QUERY)

    def test_all_reference_sites_are_restricted(self):
        for query in (CNN_QUERY, MFF_QUERY, ORG_QUERY, RODIN_QUERY):
            assert is_range_restricted(query), analyze(query)

    def test_collection_anchored_query(self):
        assert is_range_restricted("""
            input G
            where C(x), x -> "a" -> y, y != 3
            create F(x)
            output O
        """)

    def test_binding_order_does_not_matter(self):
        # The comparison comes first textually; the path binds w later.
        assert is_range_restricted("""
            input G
            where w = 3, C(x), x -> "a" -> w
            create F(x)
            output O
        """)

    def test_in_condition_binds(self):
        assert is_range_restricted("""
            input G
            where l in {"a", "b"}, x -> l -> v
            create F(x)
            output O
        """)

    def test_bound_negation_is_fine(self):
        assert is_range_restricted("""
            input G
            where C(x), not(isPostScript(x))
            create F(x)
            output O
        """)

    def test_negated_path_with_bound_vars(self):
        assert is_range_restricted("""
            input G
            where C(x), C(y), not(x -> "a" -> y)
            create F(x, y)
            output O
        """)


class TestUnrestricted:
    def test_complement_query_flagged(self):
        """The paper's own example of domain dependence."""
        warnings = analyze("""
            input G
            where not(p -> l -> q)
            create f(p), f(q)
            link f(p) -> l -> f(q)
            output C
        """)
        assert warnings
        assert any("active domain" in w.reason for w in warnings)
        assert not is_range_restricted("""
            input G
            where not(p -> l -> q)
            create f(p), f(q)
            link f(p) -> l -> f(q)
            output C
        """)

    def test_negation_with_one_free_var(self):
        warnings = analyze("""
            input G
            where C(x), not(x -> "a" -> y)
            create F(x)
            output O
        """)
        assert len(warnings) == 1
        assert warnings[0].variables == ("y",)

    def test_warning_rendering(self):
        (warning,) = analyze("""
            input G
            where C(x), not(x -> "a" -> y)
            create F(x)
            output O
        """)
        text = str(warning)
        assert "Q1" in text and "y" in text

    def test_nested_blocks_inherit_bindings(self):
        # y is bound by the parent block: the child negation is safe.
        assert is_range_restricted("""
            input G
            where C(x), x -> "a" -> y
            create F(x)
            { where not(y -> "b" -> x)
              link F(x) -> "odd" -> y }
            output O
        """)
        # ...but a genuinely free variable in the child is flagged.
        warnings = analyze("""
            input G
            where C(x)
            create F(x)
            { where not(x -> "b" -> z)
              collect Odd(x) }
            output O
        """)
        assert warnings and warnings[0].variables == ("z",)

    def test_parse_accepts_unrestricted(self):
        """Analysis warns; evaluation still works (active domain)."""
        from repro.graph import Graph, Oid
        from repro.struql import QueryEngine
        graph = Graph("G")
        graph.add_edge(Oid("a"), "e", Oid("b"))
        out = QueryEngine().evaluate("""
            input G
            where not(p -> l -> q)
            create f(p), f(q)
            link f(p) -> l -> f(q)
            output C
        """, graph).output
        assert out.edge_count == 3  # complement of 1 edge over 2 nodes
