"""Runtime value coercions and the binding relation."""

import pytest

from repro.graph import Atom, Oid
from repro.struql.bindings import (
    as_atom,
    as_label,
    extend_binding,
    runtime_compare,
    runtime_eq,
)


class TestViews:
    def test_as_label(self):
        assert as_label("year") == "year"
        assert as_label(Atom.string("year")) == "year"
        assert as_label(Atom.int(3)) == "3"
        assert as_label(Oid("x")) is None

    def test_as_atom(self):
        assert as_atom("s") == Atom.string("s")
        atom = Atom.int(1)
        assert as_atom(atom) is atom
        assert as_atom(Oid("x")) is None


class TestEquality:
    def test_oids_structural(self):
        assert runtime_eq(Oid("a"), Oid("a"))
        assert not runtime_eq(Oid("a"), Oid("b"))

    def test_oid_never_equals_atom(self):
        assert not runtime_eq(Oid("3"), Atom.int(3))
        assert not runtime_eq(Atom.int(3), Oid("3"))

    def test_label_vs_atom_coerces(self):
        assert runtime_eq("1997", Atom.int(1997))
        assert runtime_eq(Atom.string("x"), "x")

    def test_cross_numeric(self):
        assert runtime_eq(Atom.int(1), Atom.float(1.0))


class TestCompare:
    @pytest.mark.parametrize("op,expected", [
        ("=", False), ("!=", True), ("<", True), ("<=", True),
        (">", False), (">=", False),
    ])
    def test_numeric_ordering(self, op, expected):
        assert runtime_compare(Atom.int(1), op, Atom.int(2)) is expected

    def test_label_against_atom(self):
        assert runtime_compare("10", "<", Atom.int(11))

    def test_oid_ordering_always_false(self):
        assert not runtime_compare(Oid("a"), "<", Oid("b"))
        assert runtime_compare(Oid("a"), "=", Oid("a"))

    def test_incoercible_ordering_fails_quietly(self):
        assert not runtime_compare(Atom.string("abc"), "<", Atom.int(3))

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            runtime_compare(Atom.int(1), "~", Atom.int(2))


class TestExtendBinding:
    def test_binds_fresh_variable(self):
        row = {"x": Oid("a")}
        out = extend_binding(row, "y", Atom.int(1))
        assert out == {"x": Oid("a"), "y": Atom.int(1)}
        assert row == {"x": Oid("a")}  # input untouched

    def test_consistent_rebind_keeps_row(self):
        row = {"x": Atom.int(3)}
        assert extend_binding(row, "x", Atom.string("3")) is row

    def test_conflicting_rebind_fails(self):
        row = {"x": Atom.int(3)}
        assert extend_binding(row, "x", Atom.int(4)) is None
