"""The STRUDEL data-definition language (Fig 2)."""

import pytest

from repro.ddl import parse_ddl, write_ddl
from repro.errors import DDLError
from repro.graph import Atom, AtomType, Graph, Oid
from repro.sites.homepage import FIG2_DDL


class TestFig2:
    """The paper's Fig 2 fragment parses into the described graph."""

    def test_objects_and_collection(self, fig2_graph):
        assert fig2_graph.node_count == 2
        members = fig2_graph.collection("Publications")
        assert members == [Oid("pub1"), Oid("pub2")]

    def test_irregular_attributes(self, fig2_graph):
        # pub1 has month/journal; pub2 has booktitle instead.
        assert fig2_graph.get_one(Oid("pub1"), "month") is not None
        assert fig2_graph.get_one(Oid("pub2"), "month") is None
        assert fig2_graph.get_one(Oid("pub1"), "journal") is not None
        assert fig2_graph.get_one(Oid("pub2"), "booktitle") is not None

    def test_type_directives_apply(self, fig2_graph):
        ps = fig2_graph.get_one(Oid("pub1"), "postscript")
        assert ps.type is AtomType.POSTSCRIPT_FILE
        abstract = fig2_graph.get_one(Oid("pub1"), "abstract")
        assert abstract.type is AtomType.TEXT_FILE

    def test_int_values_keep_their_type(self, fig2_graph):
        year = fig2_graph.get_one(Oid("pub1"), "year")
        assert year.type is AtomType.INT and year.value == 1997

    def test_multivalued_category(self, fig2_graph):
        categories = fig2_graph.get(Oid("pub1"), "category")
        assert len(categories) == 2

    def test_hyphenated_attribute_name(self, fig2_graph):
        assert str(fig2_graph.get_one(Oid("pub1"), "pub-type")) == "article"


class TestParser:
    def test_multiple_collections(self):
        graph = parse_ddl("""
        object x in A, B { v 1 }
        """)
        assert graph.in_collection("A", Oid("x"))
        assert graph.in_collection("B", Oid("x"))

    def test_reference_values(self):
        graph = parse_ddl("""
        object a { friend &b }
        object b { name "B" }
        """)
        assert graph.get_one(Oid("a"), "friend") == Oid("b")

    def test_forward_reference(self):
        graph = parse_ddl("""
        object a { next &z }
        object z { }
        """)
        assert graph.get_one(Oid("a"), "next") == Oid("z")

    def test_dangling_reference_rejected(self):
        with pytest.raises(DDLError):
            parse_ddl("object a { next &nowhere }")

    def test_nested_object(self):
        graph = parse_ddl("""
        object a { address { city "Paris" zip 75000 } }
        """)
        nested = graph.get_one(Oid("a"), "address")
        assert isinstance(nested, Oid)
        assert str(graph.get_one(nested, "city")) == "Paris"

    def test_scalar_literals(self):
        graph = parse_ddl("""
        object a { i 3 f 2.5 t true f2 false n null neg -7 }
        """)
        assert graph.get_one(Oid("a"), "i") == Atom.int(3)
        assert graph.get_one(Oid("a"), "f") == Atom.float(2.5)
        assert graph.get_one(Oid("a"), "t") == Atom.bool(True)
        assert graph.get_one(Oid("a"), "f2") == Atom.bool(False)
        assert graph.get_one(Oid("a"), "neg") == Atom.int(-7)

    def test_string_escapes(self):
        graph = parse_ddl(r'object a { s "line\nbreak \"quoted\"" }')
        assert graph.get_one(Oid("a"), "s").value == 'line\nbreak "quoted"'

    def test_comments_ignored(self):
        graph = parse_ddl("""
        // a line comment
        # another
        /* a block
           comment */
        object a { v 1 }
        """)
        assert graph.node_count == 1

    def test_directive_overridable(self):
        # "These directives are not constraints": an int stays an int
        # even when the collection declares the attribute as a file.
        graph = parse_ddl("""
        collection C { x ps }
        object a in C { x 3 }
        object b in C { x "papers/y.ps" }
        """)
        assert graph.get_one(Oid("a"), "x").type is AtomType.INT
        assert graph.get_one(Oid("b"), "x").type is \
            AtomType.POSTSCRIPT_FILE

    def test_url_directive(self):
        graph = parse_ddl("""
        collection C { home url }
        object a in C { home "http://x/y" }
        """)
        assert graph.get_one(Oid("a"), "home").type is AtomType.URL

    def test_unknown_type_directive(self):
        with pytest.raises(DDLError):
            parse_ddl("collection C { x blob }")

    def test_syntax_errors_carry_line(self):
        with pytest.raises(DDLError) as err:
            parse_ddl("object a {\n  x\n}")
        assert err.value.line is not None

    def test_unterminated_string(self):
        with pytest.raises(DDLError):
            parse_ddl('object a { s "oops }')

    def test_garbage_toplevel(self):
        with pytest.raises(DDLError):
            parse_ddl("graph a { }")


class TestWriter:
    def roundtrip(self, graph: Graph) -> Graph:
        return parse_ddl(write_ddl(graph))

    def test_fig2_roundtrip(self, fig2_graph):
        back = self.roundtrip(fig2_graph)
        assert back.node_count == fig2_graph.node_count
        assert back.edge_count == fig2_graph.edge_count
        assert back.collection_names() == fig2_graph.collection_names()
        ps = back.get_one(Oid("pub1"), "postscript")
        assert ps.type is AtomType.POSTSCRIPT_FILE

    def test_references_roundtrip(self):
        graph = parse_ddl("""
        object a { friend &b friend &c }
        object b in People { }
        object c in People { }
        """)
        back = self.roundtrip(graph)
        assert set(back.get(Oid("a"), "friend")) == {Oid("b"), Oid("c")}

    def test_nested_inlined(self):
        graph = parse_ddl('object a { address { city "X" } }')
        text = write_ddl(graph)
        assert text.count("object") == 1  # nested emitted inline
        back = self.roundtrip(graph)
        nested = back.get_one(Oid("a"), "address")
        assert str(back.get_one(nested, "city")) == "X"

    def test_unsafe_names_sanitized(self):
        graph = Graph("g")
        graph.add_edge(Oid("weird name!"), "l", Atom.int(1))
        back = self.roundtrip(graph)
        assert back.node_count == 1
