"""Integrity-constraint verification [FER 98b]."""

import pytest

from repro.errors import ConstraintViolation
from repro.graph import Atom, Graph, Oid
from repro.site import (
    Connected,
    ForbiddenContent,
    ForbiddenLink,
    ReachableFromRoot,
    RequiredLink,
    Verifier,
    build_site_schema,
)
from repro.struql import QueryEngine


GOOD_QUERY = """
input G
create Root()
{ where Items(x)
  create Page(x)
  link Root() -> "item" -> Page(x),
       Page(x) -> "home" -> Root()
}
output Site
"""

ORPHAN_QUERY = """
input G
create Root()
{ where Items(x)
  create Page(x), Orphan(x)
  link Root() -> "item" -> Page(x),
       Orphan(x) -> "data" -> x
}
output Site
"""


@pytest.fixture
def items_graph() -> Graph:
    graph = Graph("G")
    for name in ("a", "b"):
        oid = Oid(name)
        graph.add_to_collection("Items", oid)
        graph.add_edge(oid, "secret", Atom.string(f"classified-{name}"))
    return graph


def build(query: str, graph: Graph) -> Graph:
    return QueryEngine().evaluate(query, graph).output


class TestReachable:
    def test_good_site_passes_both_levels(self, items_graph):
        site = build(GOOD_QUERY, items_graph)
        schema = build_site_schema(GOOD_QUERY)
        report = Verifier([ReachableFromRoot("Root")]).verify(
            graph=site, schema=schema)
        assert report.ok
        assert len(report.findings) == 2  # schema + graph

    def test_orphan_caught_at_both_levels(self, items_graph):
        site = build(ORPHAN_QUERY, items_graph)
        schema = build_site_schema(ORPHAN_QUERY)
        report = Verifier([ReachableFromRoot("Root")]).verify(
            graph=site, schema=schema)
        assert not report.ok
        levels = {f.level for f in report.violations()}
        assert levels == {"schema", "graph"}
        assert any("Orphan" in w for f in report.violations()
                   for w in f.witnesses)

    def test_static_check_needs_no_data(self):
        """The schema-level check works before any site is built."""
        schema = build_site_schema(ORPHAN_QUERY)
        report = Verifier([ReachableFromRoot("Root")]).verify(
            schema=schema)
        assert not report.ok

    def test_missing_root_fn(self, items_graph):
        site = build(GOOD_QUERY, items_graph)
        report = Verifier([ReachableFromRoot("Nonexistent")]).verify(
            graph=site)
        assert not report.ok

    def test_verify_or_raise(self, items_graph):
        site = build(ORPHAN_QUERY, items_graph)
        with pytest.raises(ConstraintViolation):
            Verifier([ReachableFromRoot("Root")]).verify_or_raise(
                graph=site)


class TestRequiredLink:
    def test_present(self, items_graph):
        site = build(GOOD_QUERY, items_graph)
        schema = build_site_schema(GOOD_QUERY)
        report = Verifier([
            RequiredLink("Page", "home", "Root")]).verify(
            graph=site, schema=schema)
        assert report.ok

    def test_absent_schema_level(self):
        schema = build_site_schema(ORPHAN_QUERY)
        report = Verifier([RequiredLink("Page", "home", "Root")]).verify(
            schema=schema)
        assert not report.ok

    def test_graph_level_witnesses(self, items_graph):
        site = build(ORPHAN_QUERY, items_graph)
        report = Verifier([RequiredLink("Page", "home")]).verify(
            graph=site)
        assert not report.ok
        assert len(report.violations()[0].witnesses) == 2

    def test_arc_variable_defers_to_graph(self, items_graph):
        query = """
        input G
        where Items(x), x -> l -> v
        create Page(x)
        link Page(x) -> l -> v
        output Site
        """
        schema = build_site_schema(query)
        report = Verifier([RequiredLink("Page", "secret")]).verify(
            schema=schema)
        assert report.ok  # possible via arc variable
        assert "arc-variable" in report.findings[0].witnesses[0]


class TestForbidden:
    def test_forbidden_link_schema(self, items_graph):
        schema = build_site_schema(GOOD_QUERY)
        report = Verifier([ForbiddenLink("Page", "home")]).verify(
            schema=schema)
        assert not report.ok

    def test_forbidden_link_ok(self):
        schema = build_site_schema(GOOD_QUERY)
        report = Verifier([ForbiddenLink("Page", "secret")]).verify(
            schema=schema)
        assert report.ok

    def test_forbidden_content(self, items_graph):
        """The external-site constraint: no proprietary atoms served."""
        leaky = """
        input G
        where Items(x), x -> l -> v
        create Page(x)
        link Page(x) -> l -> v
        output Site
        """
        site = build(leaky, items_graph)
        constraint = ForbiddenContent(
            "classified", lambda atom: str(atom).startswith("classified"))
        report = Verifier([constraint]).verify(graph=site)
        assert not report.ok
        assert len(report.violations()[0].witnesses) == 2

    def test_forbidden_content_clean_site(self, items_graph):
        site = build(GOOD_QUERY, items_graph)
        constraint = ForbiddenContent(
            "classified", lambda atom: str(atom).startswith("classified"))
        assert Verifier([constraint]).verify(graph=site).ok


class TestConnected:
    def test_connected_site(self, items_graph):
        site = build(GOOD_QUERY, items_graph)
        assert Verifier([Connected()]).verify(graph=site).ok

    def test_disconnected_site(self, items_graph):
        site = build(ORPHAN_QUERY, items_graph)
        report = Verifier([Connected()]).verify(graph=site)
        # Orphan(x) -> data -> x forms components separate from Root.
        assert not report.ok

    def test_report_rendering(self, items_graph):
        site = build(ORPHAN_QUERY, items_graph)
        report = Verifier([Connected(),
                           ReachableFromRoot("Root")]).verify(graph=site)
        text = str(report)
        assert "VIOLATED" in text and "ok" not in text.split("\n")[0][:3]


class TestPathReachability:
    """Regular-path constraints: 'every department member is reachable
    from a department page'."""

    def test_satisfied(self, items_graph):
        from repro.site import PathReachability
        site = build(GOOD_QUERY, items_graph)
        constraint = PathReachability("Root", '"item"', "Page")
        report = Verifier([constraint]).verify(graph=site)
        assert report.ok

    def test_closure_expression(self, items_graph):
        from repro.site import PathReachability
        site = build(GOOD_QUERY, items_graph)
        constraint = PathReachability("Root", "*", "Page")
        assert Verifier([constraint]).verify(graph=site).ok

    def test_violation_with_witnesses(self, items_graph):
        from repro.site import PathReachability
        site = build(ORPHAN_QUERY, items_graph)
        constraint = PathReachability("Root", "*", "Orphan")
        report = Verifier([constraint]).verify(graph=site)
        assert not report.ok
        assert "Orphan" in report.violations()[0].witnesses[0]

    def test_wrong_label_detected(self, items_graph):
        from repro.site import PathReachability
        site = build(GOOD_QUERY, items_graph)
        constraint = PathReachability("Root", '"wrong"', "Page")
        assert not Verifier([constraint]).verify(graph=site).ok

    def test_missing_source_pages_flagged(self, items_graph):
        from repro.site import PathReachability
        site = build(GOOD_QUERY, items_graph)
        constraint = PathReachability("Nonexistent", "*", "Page")
        report = Verifier([constraint]).verify(graph=site)
        assert not report.ok
        assert "no Nonexistent pages" in \
            report.violations()[0].witnesses[0]

    def test_arc_variable_rejected(self):
        from repro.site import PathReachability
        with pytest.raises(ValueError):
            PathReachability("Root", "item", "Page")  # unquoted label

    def test_alternation_path(self, items_graph):
        from repro.site import PathReachability
        site = build(GOOD_QUERY, items_graph)
        constraint = PathReachability(
            "Root", '"item" | "other"."item"', "Page")
        assert Verifier([constraint]).verify(graph=site).ok
