"""The four reference sites reproduce the paper's section 5.1 claims."""

import pytest

from repro.graph import Oid
from repro.site import ReachableFromRoot, RequiredLink, Verifier
from repro.sites import (
    CNN_QUERY,
    SPORTS_QUERY,
    build_cnn_site,
    build_homepage_site,
    build_org_site,
    build_rodin_site,
    org_templates,
)
from repro.datagen import build_org_mediator, generate_news_graph


class TestHomepage:
    def test_internal_external_share_everything_but_templates(self):
        internal = build_homepage_site(entries=10)
        external = build_homepage_site(data=internal.data, external=True)
        # Same data, same query -> identical site graphs.
        assert internal.site_graph.edge_count == \
            external.site_graph.edge_count
        # External presentation drops the PostScript download link.
        internal_html = internal.generator().render(
            next(n for n in internal.site_graph.nodes()
                 if n.skolem_fn == "PaperPresentation"))
        external_html = external.generator().render(
            next(n for n in external.site_graph.nodes()
                 if n.skolem_fn == "PaperPresentation"))
        assert ".ps" in internal_html
        assert ".ps" not in external_html

    def test_generates_browsable_site(self, tmp_path):
        site = build_homepage_site(entries=10)
        written = site.generate(str(tmp_path))
        assert len(written) == len(site.generator().pages())

    def test_verifies_reachability(self):
        site = build_homepage_site(entries=10)
        report = site.verify([ReachableFromRoot("RootPage")],
                             schema_level=False)
        assert report.ok


class TestCnn:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_news_graph(80, graph_name="CNN")

    def test_general_site_covers_all_articles(self, data):
        site = build_cnn_site(data=data.copy("CNN"))
        pages = [n for n in site.site_graph.nodes()
                 if n.skolem_fn == "ArticlePage"]
        assert len(pages) == 80

    def test_sports_only_is_a_subset(self, data):
        general = build_cnn_site(data=data.copy("CNN"))
        sports = build_cnn_site(data=data.copy("CNN"), sports_only=True)
        general_articles = {n for n in general.site_graph.nodes()
                            if n.skolem_fn == "ArticlePage"}
        sports_articles = {n for n in sports.site_graph.nodes()
                           if n.skolem_fn == "ArticlePage"}
        assert sports_articles < general_articles
        assert sports_articles  # the seed produces some sports articles
        # Same structure: identical Skolem vocabulary.
        assert set(f for f in sports.queries[0].skolem_functions()) == \
            set(f for f in general.queries[0].skolem_functions())

    def test_sports_query_differs_only_in_predicates(self):
        """The paper: 'only differs in two extra predicates in one
        where clause' (we add the pair to the Related clause too)."""
        assert SPORTS_QUERY != CNN_QUERY
        assert SPORTS_QUERY.count('sec = "sports"') == 1
        general_lines = [l.strip() for l in CNN_QUERY.splitlines()]
        sports_lines = [l.strip() for l in SPORTS_QUERY.splitlines()]
        differing = [
            (g, s) for g, s in zip(general_lines, sports_lines) if g != s]
        # Exactly two where clauses touched, plus the output rename.
        assert len(differing) == 3
        where_changes = [d for d in differing if d[0].startswith("{ WHERE")]
        assert len(where_changes) == 2
        assert differing[-1] == ("OUTPUT CNNSite", "OUTPUT SportsSite")

    def test_same_templates_for_both(self, data):
        general = build_cnn_site(data=data.copy("CNN"))
        sports = build_cnn_site(data=data.copy("CNN"), sports_only=True)
        assert general.templates.names() == sports.templates.names()

    def test_sections_pages_linked_from_front(self, data):
        site = build_cnn_site(data=data.copy("CNN"))
        front = Oid.skolem("FrontPage", ())
        sections = site.site_graph.get(front, "Section")
        assert sections
        report = site.verify(
            [RequiredLink("SectionPage", "Story", "Summary")],
            schema_level=False)
        assert report.ok


class TestOrg:
    @pytest.fixture(scope="class")
    def mediated(self):
        return build_org_mediator(people=50, projects=8,
                                  publications=12).warehouse()

    def test_person_pages_scale_with_people(self, mediated):
        site = build_org_site(data=mediated.copy("ORGDATA"))
        people = [n for n in site.site_graph.nodes()
                  if n.skolem_fn == "PersonPage"]
        assert len(people) == 50

    def test_internal_has_17_templates(self, mediated):
        site = build_org_site(data=mediated.copy("ORGDATA"))
        assert len(site.templates.names()) == 17

    def test_external_differs_in_exactly_five_templates(self):
        internal = org_templates()
        external = org_templates(external=True)
        assert internal.names() == external.names()
        differing = [
            name for name in internal.names()
            if internal.get(name).source != external.get(name).source]
        assert len(differing) == 5

    def test_external_needs_no_new_queries(self, mediated):
        internal = build_org_site(data=mediated.copy("ORGDATA"))
        external = build_org_site(data=mediated.copy("ORGDATA"),
                                  external=True)
        assert [q.text for q in internal.queries] == \
            [q.text for q in external.queries]

    def test_external_hides_salaries(self, mediated):
        internal = build_org_site(data=mediated.copy("ORGDATA"))
        external = build_org_site(data=mediated.copy("ORGDATA"),
                                  external=True)
        person = next(n for n in internal.site_graph.nodes()
                      if n.skolem_fn == "PersonPage")
        assert "Salary" in internal.generator().render(person)
        assert "Salary" not in external.generator().render(person)

    def test_org_hierarchy_linked(self, mediated):
        site = build_org_site(data=mediated.copy("ORGDATA"))
        suborg_edges = [e for e in site.site_graph.edges()
                        if e.label == "SubOrg"]
        assert suborg_edges  # parent orgs point at suborganizations

    def test_projects_respect_missing_synopsis(self, mediated):
        site = build_org_site(data=mediated.copy("ORGDATA"))
        projects = [n for n in site.site_graph.nodes()
                    if n.skolem_fn == "ProjectPage"]
        rendered = [site.generator().render(p) for p in projects]
        assert any("(no synopsis)" in html for html in rendered)
        assert any("(no synopsis)" not in html for html in rendered)


class TestRodin:
    def test_both_views_generated(self):
        site = build_rodin_site(projects=5)
        e_pages = [n for n in site.site_graph.nodes()
                   if n.skolem_fn == "EPage"]
        f_pages = [n for n in site.site_graph.nodes()
                   if n.skolem_fn == "FPage"]
        assert len(e_pages) == len(f_pages) == 5

    def test_cross_links_both_ways(self):
        site = build_rodin_site(projects=4)
        graph = site.site_graph
        for e_page in (n for n in graph.nodes() if n.skolem_fn == "EPage"):
            f_page = graph.get_one(e_page, "French")
            assert f_page is not None and f_page.skolem_fn == "FPage"
            assert graph.get_one(f_page, "English") == e_page

    def test_one_query_defines_both(self):
        site = build_rodin_site()
        assert len(site.queries) == 1

    def test_language_content_differs(self, tmp_path):
        site = build_rodin_site(projects=3)
        graph = site.site_graph
        e_page = next(n for n in graph.nodes() if n.skolem_fn == "EPage")
        f_page = graph.get_one(e_page, "French")
        english = site.generator().render(e_page)
        french = site.generator().render(f_page)
        assert "Recherche" in french and "Research" in english


class TestMffHomepage:
    """The full two-source mff homepage of section 5.1."""

    def test_two_sources_integrated(self):
        from repro.sites import build_mff_site
        site = build_mff_site(entries=12)
        assert site.data.has_collection("Publications")
        assert site.data.has_collection("People")

    def test_metrics_near_paper(self):
        from repro.sites import build_mff_site
        site = build_mff_site(entries=12)
        metrics = site.metrics()
        assert metrics.template_count == 13          # paper: 13
        assert 40 <= metrics.query_lines <= 55       # paper: 48

    def test_external_excludes_patents_and_proprietary(self):
        from repro.graph import Oid
        from repro.sites import build_mff_site
        internal = build_mff_site(entries=12)
        external = build_mff_site(data=internal.data, external=True)
        patents_page = next(n for n in internal.site_graph.nodes()
                            if n.skolem_fn == "PatentsPage")
        internal_patents = internal.generator().render(patents_page)
        external_patents = external.generator().render(patents_page)
        assert "US-5999999" in internal_patents
        assert "US-5999999" not in external_patents
        projects_page = next(n for n in internal.site_graph.nodes()
                             if n.skolem_fn == "ProjectsPage")
        internal_projects = internal.generator().render(projects_page)
        external_projects = external.generator().render(projects_page)
        assert "SECRETDB" in internal_projects
        assert "SECRETDB" not in external_projects
        assert "STRUDEL" in external_projects

    def test_address_block_embedded(self):
        from repro.sites import build_mff_site
        site = build_mff_site(entries=12)
        root = next(n for n in site.site_graph.nodes()
                    if n.skolem_fn == "HomeRoot")
        html = site.generator().render(root)
        assert "180 Park Ave, Florham Park 07932" in html

    def test_site_graph_shared_between_versions(self):
        from repro.sites import build_mff_site
        internal = build_mff_site(entries=12)
        external = build_mff_site(data=internal.data, external=True)
        assert internal.site_graph.edge_count == \
            external.site_graph.edge_count


class TestOrgExternalQueryView:
    """The alternative multi-view mechanism: a derived external site
    graph (the suciu-example pattern), not just different templates."""

    def test_external_view_drops_salary_and_proprietary(self):
        from repro.datagen import build_org_mediator
        from repro.sites import ORG_EXTERNAL_QUERY, ORG_QUERY
        from repro.struql.rewriter import compose
        data = build_org_mediator(people=25, projects=10,
                                  publications=5).warehouse()
        data.name = "ORGDATA"
        result = compose([ORG_QUERY, ORG_EXTERNAL_QUERY], data)
        internal = None
        external = result.output
        labels = {e.label for e in external.edges()}
        assert "salary" not in labels
        assert "proprietary" not in labels
        # Non-proprietary structure survives.
        assert any(e.label == "Member" for e in external.edges())

    def test_builder_supports_params(self):
        from repro.struql.builder import (QueryBuilder, var, skolem,
                                          member, edge)
        from repro.struql import QueryEngine
        from repro.graph import Atom, Graph
        graph = Graph("G")
        a = Oid("a")
        graph.add_to_collection("C", a)
        graph.add_edge(a, "year", Atom.int(1997))
        x, y, wanted = var("x"), var("y"), var("wanted")
        b = QueryBuilder("G", output="O", params=("wanted",))
        with b.where(member("C", x), edge(x, "year", y)):
            b.create(skolem("Hit", x, wanted))
            b.collect("Hits", skolem("Hit", x, wanted))
        query = b.build()
        out = QueryEngine().evaluate(
            query, graph, initial={"wanted": Atom.string("q")}).output
        assert len(out.collection("Hits")) == 1
