"""The documentation's code paths stay runnable (guards doc rot).

Exercises the tutorial's six steps end to end with in-repo data, using
only names importable exactly as the docs import them.
"""

import pytest

from repro import (
    BibTexWrapper,
    DataSource,
    DynamicSiteServer,
    Mediator,
    ReachableFromRoot,
    RequiredLink,
    TemplateSet,
    Verifier,
    Website,
    build_site_schema,
    parse_ddl,
)
from repro.site import PathReachability, refresh_site

SITE = """
INPUT data
CREATE Root()
{ WHERE Publications(x), x -> l -> v
  CREATE Page(x)
  LINK Page(x) -> l -> v,
       Root() -> "paper" -> Page(x)
  { WHERE l = "year"
    CREATE YearIndex(v)
    LINK YearIndex(v) -> "Year" -> v,
         YearIndex(v) -> "Paper" -> Page(x),
         Root() -> "byYear" -> YearIndex(v) }
}
OUTPUT Site
"""

BIB = """
@article{one, title={First}, author={A}, year=1997,
         postscript={papers/one.ps}}
@article{two, title={Second}, author={B}, year=1998,
         postscript={papers/two.ps}}
"""


@pytest.fixture
def tutorial_templates() -> TemplateSet:
    templates = TemplateSet()
    templates.add("Root", """<h1>Papers</h1>
<SFMTLIST @byYear ORDER=descend KEY=Year WRAP=UL>""")
    templates.add("YearIndex",
                  "<h1><SFMT @Year></h1><SFMTLIST @Paper FORMAT=EMBED>")
    templates.add("Page", "<SFMT @postscript TAG=@title> (<SFMT @year>)",
                  as_page=False)
    return templates


@pytest.fixture
def mediated_data():
    pubs = BibTexWrapper().wrap(BIB, "pubs")
    mediator = Mediator("data")
    mediator.add_source(DataSource("pubs", lambda: pubs))
    mediator.add_mapping("""
        input pubs
        where Publications(x), x -> l -> v
        create Pub(x)
        link Pub(x) -> l -> v
        collect Publications(Pub(x))
        output data
    """)
    return mediator.warehouse()


class TestTutorialFlow:
    def test_step3_schema_inspection(self):
        schema = build_site_schema(SITE)
        rendered = schema.render()
        assert 'Root -(Q1, "paper", [], [x])-> Page' in rendered
        assert 'YearIndex -(Q1 ^ Q2, "Paper", [v], [x])-> Page' \
            in rendered

    def test_step4_static_verification(self):
        report = Verifier([
            ReachableFromRoot("Root"),
            RequiredLink("YearIndex", "Paper", "Page"),
        ]).verify(schema=build_site_schema(SITE))
        assert report.ok

    def test_step5_website_and_metrics(self, mediated_data,
                                       tutorial_templates, tmp_path):
        site = Website(mediated_data, SITE, tutorial_templates)
        written = site.generate(str(tmp_path))
        assert len(written) == 3  # root + 2 year indexes
        metrics = site.metrics().as_row()
        assert metrics["pages"] == 3
        report = site.verify([
            ReachableFromRoot("Root"),
            PathReachability("Root", "*", "Page"),
        ])
        assert report.ok

    def test_step6_refresh(self, mediated_data, tutorial_templates,
                           tmp_path):
        site = Website(mediated_data, SITE, tutorial_templates)
        site.generate(str(tmp_path))
        old_site = site.site_graph
        richer = BibTexWrapper().wrap(BIB + """
@article{three, title={Third}, author={C}, year=1999,
         postscript={papers/three.ps}}
""", "pubs")
        mediator = Mediator("data")
        mediator.add_source(DataSource("pubs", lambda: richer))
        mediator.add_mapping("""
            input pubs
            where Publications(x), x -> l -> v
            create Pub(x)
            link Pub(x) -> l -> v
            collect Publications(Pub(x))
            output data
        """)
        result = refresh_site(SITE, mediator.warehouse(), old_site,
                              tutorial_templates, str(tmp_path))
        assert result.pages_rewritten >= 2  # root + the 1999 index
        assert not result.diff.empty

    def test_step6_dynamic_serving(self, mediated_data,
                                   tutorial_templates):
        server = DynamicSiteServer(SITE, mediated_data,
                                   tutorial_templates)
        response = server.request(server.roots()[0])
        assert response.status == 200
        assert "Papers" in response.body


class TestReadmeQuickstart:
    def test_readme_snippet_runs(self, tmp_path):
        from repro import QueryEngine
        from repro.templates import HtmlGenerator

        data = parse_ddl("""
        collection Publications { abstract text postscript ps }
        object pub1 in Publications {
          title "Optimizing Regular Path Expressions"
          author "Mary Fernandez"  author "Dan Suciu"
          year 1998  postscript "papers/icde98.ps.gz"
        }
        """, "BIBTEX")
        site = QueryEngine().evaluate("""
        INPUT BIBTEX
        CREATE RootPage()
        WHERE Publications(x), x -> l -> v
        CREATE PaperPage(x)
        LINK PaperPage(x) -> l -> v,
             RootPage() -> "Paper" -> PaperPage(x)
        OUTPUT HomePage
        """, data).output
        templates = TemplateSet()
        templates.add("RootPage",
                      "<h1>Papers</h1>"
                      "<SFMTLIST @Paper ORDER=ascend WRAP=UL>")
        templates.add(
            "PaperPage",
            "<h2><SFMT @title></h2><SFMT @postscript TAG=@title>")
        from repro.templates import HtmlGenerator
        written = HtmlGenerator(site, templates).generate_site(
            str(tmp_path))
        assert written
