"""The command-line interface (python -m repro)."""

import json
import os

import pytest

from repro.cli import load_data, load_data_file, load_templates, main
from repro.graph import Oid
from repro.graph.serialization import graph_to_json
from repro.sites.homepage import FIG2_DDL, FIG3_QUERY


@pytest.fixture
def workspace(tmp_path):
    """Data + query + template files on disk."""
    (tmp_path / "pubs.ddl").write_text(FIG2_DDL)
    (tmp_path / "site.struql").write_text(FIG3_QUERY)
    templates = tmp_path / "templates"
    templates.mkdir()
    (templates / "RootPage.tmpl").write_text(
        "<h1>Pubs</h1><SFMTLIST @YearPage WRAP=UL>")
    (templates / "YearPage.tmpl").write_text(
        "<h1><SFMT @Year></h1><SFMTLIST @Paper FORMAT=EMBED>")
    (templates / "PaperPresentation.component.tmpl").write_text(
        "<SFMT @title>")
    (templates / "ignored.txt").write_text("not a template")
    return tmp_path


class TestLoaders:
    def test_ddl_file(self, workspace):
        graph = load_data_file(str(workspace / "pubs.ddl"))
        assert graph.has_node(Oid("pub1"))

    def test_bib_file(self, tmp_path):
        (tmp_path / "b.bib").write_text(
            "@article{k, title={T}, year=1999}")
        graph = load_data_file(str(tmp_path / "b.bib"))
        assert graph.has_node(Oid("k"))

    def test_csv_file_with_key_detection(self, tmp_path):
        (tmp_path / "people.csv").write_text("login,name\nmff,Mary\n")
        graph = load_data_file(str(tmp_path / "people.csv"))
        assert graph.has_node(Oid("People_mff"))

    def test_rec_file(self, tmp_path):
        (tmp_path / "projects.rec").write_text("id: p1\nname: X\n")
        graph = load_data_file(str(tmp_path / "projects.rec"))
        assert graph.in_collection("Projects", Oid("Projects_p1"))

    def test_xml_file(self, tmp_path):
        (tmp_path / "d.xml").write_text('<root id="r"><a id="x"/></root>')
        graph = load_data_file(str(tmp_path / "d.xml"))
        assert graph.has_node(Oid("x"))

    def test_json_file(self, tmp_path, tiny_graph):
        (tmp_path / "g.json").write_text(graph_to_json(tiny_graph))
        graph = load_data_file(str(tmp_path / "g.json"))
        assert graph.has_node(Oid("root"))

    def test_unknown_suffix(self, tmp_path):
        (tmp_path / "x.dat").write_text("?")
        from repro.errors import StrudelError
        with pytest.raises(StrudelError):
            load_data_file(str(tmp_path / "x.dat"))

    def test_html_files_share_one_graph(self, tmp_path):
        (tmp_path / "a.html").write_text(
            '<html><a href="b.html">b</a></html>')
        (tmp_path / "b.html").write_text("<html><title>B</title></html>")
        graph = load_data(
            [str(tmp_path / "a.html"), str(tmp_path / "b.html")], "G")
        assert graph.get(Oid("a.html"), "link") == [Oid("b.html")]

    def test_merge_multiple_sources(self, workspace, tmp_path):
        (tmp_path / "extra.bib").write_text(
            "@article{extra, title={E}, year=2000}")
        graph = load_data([str(workspace / "pubs.ddl"),
                           str(tmp_path / "extra.bib")], "BIBTEX")
        assert graph.has_node(Oid("pub1")) and graph.has_node(Oid("extra"))

    def test_template_dir(self, workspace):
        templates = load_templates(str(workspace / "templates"))
        assert templates.names() == ["PaperPresentation", "RootPage",
                                     "YearPage"]
        # .component.tmpl registers as a non-page template.
        from repro.graph import Graph
        graph = Graph("g")
        page = Oid("p")
        graph.add_node(page)


class TestCommands:
    def test_build_end_to_end(self, workspace, capsys):
        out_dir = workspace / "www"
        code = main(["build",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql"),
                     "--templates", str(workspace / "templates"),
                     "--out", str(out_dir),
                     "--verify-root", "RootPage",
                     "--site-json", str(workspace / "site.json")])
        assert code == 0
        printed = capsys.readouterr().out
        assert "site graph:" in printed and "wrote" in printed
        assert (out_dir / "RootPage__.html").exists()
        assert (workspace / "site.json").exists()

    def test_build_incremental_cache(self, workspace, capsys):
        out_dir = workspace / "www"
        argv = ["build",
                "--data", str(workspace / "pubs.ddl"),
                "--query", str(workspace / "site.struql"),
                "--templates", str(workspace / "templates"),
                "--out", str(out_dir),
                "--cache-dir", str(workspace / "cache"),
                "--jobs", "1"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cold" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "wrote 0 pages" in second
        # A template edit invalidates the whole cache.
        (workspace / "templates" / "RootPage.tmpl").write_text(
            "<h1>Pubs v2</h1><SFMTLIST @YearPage WRAP=UL>")
        assert main(argv) == 0
        third = capsys.readouterr().out
        assert "templates-changed" in third
        assert "v2" in (out_dir / "RootPage__.html").read_text()

    def test_build_incremental_flag_defaults_cache_dir(self, workspace,
                                                       capsys):
        out_dir = workspace / "www"
        argv = ["build",
                "--data", str(workspace / "pubs.ddl"),
                "--query", str(workspace / "site.struql"),
                "--templates", str(workspace / "templates"),
                "--out", str(out_dir),
                "--incremental"]
        assert main(argv) == 0
        capsys.readouterr()
        assert (out_dir / ".buildcache" / "manifest.json").exists()
        assert main(argv) == 0
        assert "wrote 0 pages" in capsys.readouterr().out

    def test_build_verify_failure_exit_code(self, workspace, capsys):
        code = main(["build",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql"),
                     "--verify-root", "NoSuchRoot"])
        assert code == 1

    def test_schema_command(self, workspace, capsys):
        code = main(["schema", "--query", str(workspace / "site.struql")])
        assert code == 0
        printed = capsys.readouterr().out
        assert '(Q1 ^ Q2, "Paper", [v], [x])' in printed

    def test_schema_dot(self, workspace, capsys):
        main(["schema", "--query", str(workspace / "site.struql"),
              "--dot"])
        assert capsys.readouterr().out.startswith("digraph")

    def test_check_restricted(self, workspace, capsys):
        code = main(["check", "--query", str(workspace / "site.struql")])
        assert code == 0
        assert "range restricted" in capsys.readouterr().out

    def test_check_unrestricted(self, tmp_path, capsys):
        (tmp_path / "bad.struql").write_text("""
            input G
            where not(p -> l -> q)
            create f(p), f(q)
            link f(p) -> l -> f(q)
            output C
        """)
        code = main(["check", "--query", str(tmp_path / "bad.struql")])
        assert code == 2
        assert "warning" in capsys.readouterr().out

    def test_diff_command(self, workspace, capsys):
        # Build + save, then diff with modified data.
        main(["build",
              "--data", str(workspace / "pubs.ddl"),
              "--query", str(workspace / "site.struql"),
              "--site-json", str(workspace / "old.json")])
        capsys.readouterr()
        modified = FIG2_DDL + """
object pub3 in Publications { title "New" year 2002 }
"""
        (workspace / "pubs2.ddl").write_text(modified)
        code = main(["diff",
                     "--data", str(workspace / "pubs2.ddl"),
                     "--query", str(workspace / "site.struql"),
                     "--old-site", str(workspace / "old.json")])
        assert code == 3
        printed = capsys.readouterr().out
        assert "+ YearPage(2002)" in printed

    def test_diff_no_change(self, workspace, capsys):
        main(["build",
              "--data", str(workspace / "pubs.ddl"),
              "--query", str(workspace / "site.struql"),
              "--site-json", str(workspace / "old.json")])
        code = main(["diff",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql"),
                     "--old-site", str(workspace / "old.json")])
        assert code == 0

    def test_error_reporting(self, tmp_path, capsys):
        (tmp_path / "broken.struql").write_text("this is not struql")
        code = main(["check", "--query", str(tmp_path / "broken.struql")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_build_prints_span_tree(self, workspace, capsys):
        out_dir = workspace / "www"
        code = main(["trace",
                     "--metrics-out", str(workspace / "obs.json"),
                     "build",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql"),
                     "--templates", str(workspace / "templates"),
                     "--out", str(out_dir)])
        assert code == 0
        printed = capsys.readouterr().out
        # Span tree covers mediator -> query -> construction -> render.
        for name in ("mediator.load", "struql.query", "struql.block",
                     "struql.construct", "site.generate", "render.page"):
            assert name in printed, name
        assert "repository.index" in printed
        document = json.loads((workspace / "obs.json").read_text())
        counters = document["metrics"]["counters"]
        assert "repository.index.hits" in counters
        assert "repository.index.misses" in counters
        assert counters["struql.rows_produced"] > 0
        histograms = document["metrics"]["histograms"]
        assert histograms["templates.render_seconds"]["count"] > 0
        assert "p50" in histograms["templates.render_seconds"]
        assert document["spans"], "expected recorded spans"

    def test_trace_leaves_recorder_disabled(self, workspace, capsys):
        from repro.obs import NULL_RECORDER, get_recorder
        main(["trace", "check",
              "--query", str(workspace / "site.struql")])
        assert get_recorder() is NULL_RECORDER

    def test_trace_without_command_errors(self, capsys):
        assert main(["trace"]) == 2
        assert "trace needs a command" in capsys.readouterr().err

    def test_trace_of_trace_rejected(self, capsys):
        assert main(["trace", "trace", "check"]) == 2


class TestSiteDot:
    def test_build_emits_dot(self, workspace, capsys):
        code = main(["build",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql"),
                     "--site-dot", str(workspace / "site.dot")])
        assert code == 0
        dot = (workspace / "site.dot").read_text()
        assert dot.startswith("digraph")
        assert "YearPage(1997)" in dot


class TestTraceFlags:
    def test_trace_propagates_exit_code(self, tmp_path, capsys):
        """The wrapped command's non-zero exit code must survive."""
        (tmp_path / "bad.struql").write_text("""
            input G
            where not(p -> l -> q)
            create f(p), f(q)
            link f(p) -> l -> f(q)
            output C
        """)
        code = main(["trace", "--quiet", "check",
                     "--query", str(tmp_path / "bad.struql")])
        assert code == 2

    def test_trace_quiet_suppresses_tree(self, workspace, capsys):
        code = main(["trace", "--quiet", "check",
                     "--query", str(workspace / "site.struql")])
        assert code == 0
        printed = capsys.readouterr().out
        assert "== metrics" in printed
        assert "== trace" not in printed
        assert "== hotspots" not in printed

    def test_trace_prints_hotspots(self, workspace, capsys):
        main(["trace", "build",
              "--data", str(workspace / "pubs.ddl"),
              "--query", str(workspace / "site.struql")])
        printed = capsys.readouterr().out
        assert "== hotspots" in printed
        assert "self ms" in printed

    def test_trace_prom_and_events_out(self, workspace, capsys):
        from repro import obs
        code = main(["trace", "--quiet",
                     "--prom-out", str(workspace / "m.prom"),
                     "--events-out", str(workspace / "e.jsonl"),
                     "build",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql")])
        assert code == 0
        parsed = obs.parse_prometheus((workspace / "m.prom").read_text())
        names = {n for n, _, _ in parsed["samples"]}
        assert any(n.startswith("strudel_struql") for n in names)
        events = obs.read_jsonl((workspace / "e.jsonl").read_text())
        assert any(e.name == "mediator.fetch" for e in events)


class TestMonitorCommand:
    def test_monitor_build_generates_dashboard(self, workspace, capsys,
                                               monkeypatch, tmp_path):
        # monitor claims the last --out for the dashboard, so the
        # wrapped build falls back to its default ./www — keep that
        # out of the repo tree.
        monkeypatch.chdir(tmp_path)
        out = workspace / "dash"
        code = main(["monitor", "build",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql"),
                     "--templates", str(workspace / "templates"),
                     "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "monitoring dashboard" in printed
        assert (out / "Dashboard__.html").exists()
        assert (out / "StageIndex__.html").exists()
        assert (out / "metrics.prom").exists()
        assert (out / "events.jsonl").exists()
        dashboard = (out / "Dashboard__.html").read_text()
        assert "STRUDEL Monitor" in dashboard

    def test_monitor_out_before_command(self, workspace, capsys):
        out = workspace / "dash2"
        www = workspace / "www2"
        code = main(["monitor", "--out", str(out), "build",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql"),
                     "--templates", str(workspace / "templates"),
                     "--out", str(www)])
        assert code == 0
        # Both the built site and the dashboard land where asked.
        assert (www / "RootPage__.html").exists()
        assert (out / "Dashboard__.html").exists()

    def test_monitor_propagates_exit_code(self, tmp_path, capsys):
        (tmp_path / "bad.struql").write_text("not a query")
        code = main(["monitor", "--out", str(tmp_path / "d"),
                     "check", "--query", str(tmp_path / "bad.struql")])
        assert code == 1

    def test_monitor_without_command_errors(self, capsys):
        assert main(["monitor"]) == 2
        assert "monitor needs a command" in capsys.readouterr().err

    def test_monitor_cannot_wrap_itself(self, tmp_path, capsys):
        assert main(["monitor", "--out", str(tmp_path / "d"),
                     "monitor", "check"]) == 2
        assert main(["monitor", "--out", str(tmp_path / "d"),
                     "trace", "check"]) == 2


class TestServeCommandErrors:
    def test_serve_needs_a_command(self, capsys):
        assert main(["serve"]) == 2
        assert "serve needs a command" in capsys.readouterr().err

    def test_serve_cannot_wrap_itself(self, capsys):
        assert main(["serve", "serve", "build"]) == 2
        assert "cannot wrap" in capsys.readouterr().err

    def test_serve_only_wraps_build(self, workspace, capsys):
        code = main(["serve", "schema",
                     "--query", str(workspace / "site.struql")])
        assert code == 2
        assert "wraps 'build'" in capsys.readouterr().err

    def test_serve_requires_templates(self, workspace, capsys):
        code = main(["serve", "build",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql")])
        assert code == 2
        assert "--templates" in capsys.readouterr().err


class TestExplainCommand:
    def test_plan_only_text(self, workspace, capsys):
        code = main(["explain",
                     "--query", str(workspace / "site.struql"),
                     "--data", str(workspace / "pubs.ddl")])
        assert code == 0
        printed = capsys.readouterr().out
        assert "fingerprint=" in printed
        assert "optimizer=cost" in printed
        assert "est~" in printed
        assert "via " in printed
        assert "decisions:" in printed
        # Plan-only must not execute: no actual row counts reported.
        assert "actual=" not in printed

    def test_analyze_text(self, workspace, capsys):
        code = main(["explain", "--analyze",
                     "--query", str(workspace / "site.struql"),
                     "--data", str(workspace / "pubs.ddl")])
        assert code == 0
        printed = capsys.readouterr().out
        assert "actual=" in printed and "ms" in printed

    def test_analyze_json_document(self, workspace, capsys):
        code = main(["explain", "--analyze", "--json",
                     "--query", str(workspace / "site.struql"),
                     "--data", str(workspace / "pubs.ddl")])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["analyze"] is True
        assert document["fingerprint"]
        assert document["optimizer"] == "cost"
        assert document["blocks"]
        block = document["blocks"][0]
        assert {"label", "plan", "estimated_rows", "decisions"} <= set(block)
        assert "ops" in block and "actual_rows" in block
        assert "summary" in document and "misestimates" in document

    def test_plan_only_json(self, workspace, capsys):
        code = main(["explain", "--json",
                     "--query", str(workspace / "site.struql"),
                     "--data", str(workspace / "pubs.ddl")])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["analyze"] is False
        assert all("ops" not in b for b in document["blocks"])

    def test_optimizer_choice(self, workspace, capsys):
        code = main(["explain", "--optimizer", "heuristic",
                     "--query", str(workspace / "site.struql"),
                     "--data", str(workspace / "pubs.ddl")])
        assert code == 0
        assert "optimizer=heuristic" in capsys.readouterr().out

    def test_analyze_rejects_params(self, tmp_path, capsys, monkeypatch):
        # Parametrized queries only arise programmatically (form
        # inputs), so stub the reader to return one.
        import repro.cli as cli
        from repro.struql import parse_query

        query = parse_query("""
            input G
            where Root(x), x = root
            collect Out(x)
            output O
        """, params=("root",))
        monkeypatch.setattr(cli, "_read_query", lambda path: query)
        code = main(["explain", "--analyze", "--query", "ignored"])
        assert code == 2
        assert "--analyze" in capsys.readouterr().err


def _trailing_json(text: str) -> dict:
    """Parse the JSON document printed after wrapped-command output."""
    start = text.index("\n{\n")
    return json.loads(text[start:])


class TestTraceJsonAndProfile:
    def test_trace_profile_prints_hotspots_only(self, workspace, capsys):
        code = main(["trace", "--profile", "check",
                     "--query", str(workspace / "site.struql")])
        assert code == 0
        printed = capsys.readouterr().out
        assert "hotspots" in printed
        assert "== trace" not in printed
        assert "== metrics" not in printed

    def test_trace_json_document(self, workspace, capsys):
        code = main(["trace", "--json", "build",
                     "--data", str(workspace / "pubs.ddl"),
                     "--query", str(workspace / "site.struql")])
        assert code == 0
        document = _trailing_json(capsys.readouterr().out)
        assert {"profile", "metrics", "events"} <= set(document)
        assert any(entry["name"] == "struql.query"
                   for entry in document["profile"])
        entry = document["profile"][0]
        assert {"name", "calls", "self_seconds", "cum_seconds",
                "mean_seconds"} <= set(entry)

    def test_trace_json_profile_narrows(self, workspace, capsys):
        code = main(["trace", "--json", "--profile", "check",
                     "--query", str(workspace / "site.struql")])
        assert code == 0
        document = _trailing_json(capsys.readouterr().out)
        assert set(document) == {"profile"}


class TestWhyCommand:
    def _argv(self, workspace, *extra):
        return ["why",
                "--data", str(workspace / "pubs.ddl"),
                "--query", str(workspace / "site.struql"),
                "--templates", str(workspace / "templates"),
                *extra]

    def test_list_prints_every_page(self, workspace, capsys):
        code = main(self._argv(workspace, "--list"))
        assert code == 0
        printed = capsys.readouterr().out
        assert "RootPage__.html" in printed
        # url <tab> oid <tab> template rows.
        row = next(line for line in printed.splitlines()
                   if line.startswith("RootPage__.html"))
        assert row.split("\t") == ["RootPage__.html", "RootPage()",
                                   "RootPage"]

    def test_why_page_renders_full_chain(self, workspace, capsys):
        code = main(self._argv(workspace, "RootPage__.html"))
        assert code == 0
        printed = capsys.readouterr().out
        assert "template RootPage" in printed
        assert "Skolem RootPage" in printed
        assert "sources:" in printed
        assert "pubs.ddl" in printed

    def test_why_json_document(self, workspace, capsys):
        code = main(self._argv(workspace, "RootPage__.html", "--json"))
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["derivation"]["fn"] == "RootPage"
        assert any(entry["source"] == "pubs.ddl"
                   for entry in document["sources"])
        assert document["template"] == "RootPage"

    def test_why_resolves_oid_display_name(self, workspace, capsys):
        code = main(self._argv(workspace, "YearPage(1997)", "--json"))
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["derivation"]["fn"] == "YearPage"

    def test_why_unknown_target(self, workspace, capsys):
        code = main(self._argv(workspace, "NoSuchPage__.html"))
        assert code == 1
        assert "no lineage" in capsys.readouterr().err

    def test_why_without_target_errors(self, workspace, capsys):
        code = main(self._argv(workspace))
        assert code == 2
        assert "TARGET" in capsys.readouterr().err

    def test_why_leaves_lineage_disabled(self, workspace, capsys):
        from repro.obs.lineage import get_lineage
        main(self._argv(workspace, "--list"))
        assert not get_lineage().enabled


class TestSloCheckCommand:
    """Issue 9: the offline SLO gate (repro slo check)."""

    def _snapshot(self, tmp_path, *, firing=False, violated=False):
        alert_state = "firing" if firing else "ok"
        document = {
            "metrics": {"counters": {"server.requests": 100}},
            "slo": {
                "ticks": 10,
                "slos": [{
                    "name": "server-availability",
                    "objective": "99% of server.requests good",
                    "burn_rate": 20.0 if violated else 0.1,
                    "violated": violated,
                }],
                "alerts": [{
                    "name": "server-availability:page",
                    "state": alert_state,
                    "long_burn": 20.0, "short_burn": 25.0,
                    "factor": 14.4,
                }],
                "firing": 1 if firing else 0,
            },
        }
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(document))
        return str(path)

    def test_healthy_snapshot_passes(self, tmp_path, capsys):
        assert main(["slo", "check",
                     self._snapshot(tmp_path)]) == 0
        printed = capsys.readouterr().out
        assert "slo check: ok" in printed
        assert "ok  server-availability" in printed

    def test_firing_snapshot_fails(self, tmp_path, capsys):
        code = main(["slo", "check",
                     self._snapshot(tmp_path, firing=True,
                                    violated=True)])
        assert code == 1
        printed = capsys.readouterr().out
        assert "VIOLATED" in printed
        assert "FIRING  server-availability:page" in printed
        assert "slo check: FAIL (1 violated, 1 firing)" in printed

    def test_snapshot_without_slo_state(self, tmp_path, capsys):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps({"slo": {}, "metrics": {}}))
        assert main(["slo", "check", str(path)]) == 0
        assert "without SLO evaluation" in capsys.readouterr().out

    def test_obs_export_violation(self, tmp_path, capsys):
        path = tmp_path / "export.json"
        path.write_text(json.dumps({"metrics": {"counters": {
            "server.requests": 100, "server.errors": 50}}}))
        assert main(["slo", "check", str(path)]) == 1
        printed = capsys.readouterr().out
        assert "VIOLATED  server-availability" in printed
        assert "slo check: FAIL" in printed

    def test_obs_export_healthy(self, tmp_path, capsys):
        path = tmp_path / "export.json"
        path.write_text(json.dumps({"metrics": {"counters": {
            "server.requests": 10000}}}))
        assert main(["slo", "check", str(path)]) == 0
        assert "slo check: ok" in capsys.readouterr().out

    def test_snapshot_with_matview_section(self, tmp_path, capsys):
        """A current snapshot's matview section is summarized."""
        path = tmp_path / "snapshot.json"
        document = json.loads(
            open(self._snapshot(tmp_path), encoding="utf-8").read())
        document["matviews"] = {
            "enabled": True, "views": 7, "hits": 42, "misses": 9,
            "invalidations": 3, "views_dropped": 5,
        }
        path.write_text(json.dumps(document))
        assert main(["slo", "check", str(path)]) == 0
        printed = capsys.readouterr().out
        assert "matviews: 7 views, 42 hits / 9 misses, " \
            "3 invalidations (5 views dropped)" in printed

    def test_snapshot_predating_matviews_still_checks(self, tmp_path,
                                                      capsys):
        """Snapshots from versions without the matview section (or
        with a malformed one) must neither crash nor print it."""
        assert main(["slo", "check",
                     self._snapshot(tmp_path)]) == 0
        printed = capsys.readouterr().out
        assert "slo check: ok" in printed
        assert "matviews:" not in printed
        # A malformed section is ignored the same way.
        path = tmp_path / "weird.json"
        document = json.loads(
            open(self._snapshot(tmp_path), encoding="utf-8").read())
        document["matviews"] = "not-a-dict"
        path.write_text(json.dumps(document))
        assert main(["slo", "check", str(path)]) == 0
        assert "matviews:" not in capsys.readouterr().out

    def test_prometheus_dump(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        path.write_text(
            "strudel_server_requests_total 100\n"
            "strudel_server_errors_total 50\n")
        assert main(["slo", "check", str(path)]) == 1
        assert "VIOLATED  server-availability" in \
            capsys.readouterr().out

    def test_prometheus_histogram_dump(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        path.write_text(
            'strudel_server_request_seconds_bucket{le="0.25"} 1\n'
            'strudel_server_request_seconds_bucket{le="0.5"} 100\n'
            'strudel_server_request_seconds_bucket{le="+Inf"} 100\n'
            "strudel_server_request_seconds_count 100\n"
            "strudel_server_request_seconds_sum 99.0\n")
        assert main(["slo", "check", str(path)]) == 1
        assert "VIOLATED  server-latency" in capsys.readouterr().out

    def test_prometheus_without_relevant_samples(self, tmp_path,
                                                 capsys):
        path = tmp_path / "metrics.prom"
        path.write_text("unrelated_total 5\n")
        assert main(["slo", "check", str(path)]) == 2
        assert "no SLO-relevant" in capsys.readouterr().err

    def test_missing_dump(self, tmp_path, capsys):
        assert main(["slo", "check",
                     str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_array_rejected(self, tmp_path, capsys):
        path = tmp_path / "weird.json"
        path.write_text("[1, 2]")
        assert main(["slo", "check", str(path)]) == 2
        assert "expected a JSON object" in capsys.readouterr().err

    def test_json_without_metrics_rejected(self, tmp_path, capsys):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"foo": 1}))
        assert main(["slo", "check", str(path)]) == 2
        assert "neither a snapshot.json" in capsys.readouterr().err

    def test_custom_config_changes_the_verdict(self, tmp_path,
                                               capsys):
        dump = tmp_path / "export.json"
        dump.write_text(json.dumps({"counters": {
            "req": 100, "err": 30}}))
        lax = tmp_path / "lax.toml"
        lax.write_text('[[slo]]\nname = "avail"\n'
                       'kind = "availability"\n'
                       'total = "req"\nbad = "err"\ntarget = 0.5\n')
        strict = tmp_path / "strict.toml"
        strict.write_text('[[slo]]\nname = "avail"\n'
                          'kind = "availability"\n'
                          'total = "req"\nbad = "err"\n'
                          'target = 0.99\n')
        assert main(["slo", "check", str(dump),
                     "--config", str(lax)]) == 0
        capsys.readouterr()
        assert main(["slo", "check", str(dump),
                     "--config", str(strict)]) == 1
        assert "VIOLATED  avail" in capsys.readouterr().out

    def test_bad_config_path(self, tmp_path, capsys):
        dump = tmp_path / "export.json"
        dump.write_text(json.dumps({"counters": {"req": 1}}))
        assert main(["slo", "check", str(dump),
                     "--config", str(tmp_path / "nope.toml")]) == 2
        assert "bad --config" in capsys.readouterr().err
