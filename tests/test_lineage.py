"""End-to-end provenance and freshness (PR 8 tentpole).

The contract under test: every generated page resolves backward through
the full derivation chain — source record -> query block -> Skolem
function and binding args -> template — and the lineage index survives
serialization, both its own (``lineage.json`` next to the build-cache
manifest) and the graph's (Skolem fn/args round-trip through
``graph/serialization.py``).
"""

import os

import pytest

from repro.graph import Atom, Oid
from repro.graph.serialization import graph_from_json, graph_to_json
from repro.obs.lineage import (
    MAX_DEPS_PER_NODE,
    LineageIndex,
    NullLineage,
    SourceRecord,
    disable_lineage,
    enable_lineage,
    freshness_report,
    get_lineage,
    graph_content_hash,
    lineage_path,
    lineage_recording,
    render_why,
    update_freshness_gauges,
)
from repro.obs.metrics import MetricsRegistry
from repro.graph.model import Graph
from repro.site.builder import Website
from repro.sites.homepage import FIG3_QUERY, fig2_data, fig7_templates


def _site(data=None):
    return Website(data or fig2_data(), FIG3_QUERY,
                   templates=fig7_templates())


def _source(name="src", age=0.0, now=1000.0):
    return SourceRecord(source=name, kind="loader",
                        fetched_at=now - age, content_hash="abcd",
                        nodes=3, edges=5)


class TestNullObject:
    def test_disabled_by_default(self):
        disable_lineage()
        lineage = get_lineage()
        assert isinstance(lineage, NullLineage)
        assert not lineage.enabled
        assert len(lineage) == 0
        # Every recording call is a silent no-op.
        lineage.record_node(Oid("x"), "F", ())
        lineage.record_page("x.html", Oid("x"))
        lineage.record_dep(Oid("x"), Oid("y"))
        with lineage.query_context(fingerprint="f", block="Q1"):
            pass
        assert lineage.sources() == []
        assert lineage.page_records() == []

    def test_enable_disable_cycle(self):
        index = enable_lineage()
        try:
            assert get_lineage() is index
            assert index.enabled
        finally:
            disable_lineage()
        assert not get_lineage().enabled

    def test_recording_scope_restores_previous(self):
        disable_lineage()
        with lineage_recording() as index:
            assert get_lineage() is index
        assert not get_lineage().enabled


class TestRecording:
    def test_node_record_merges_query_context(self):
        index = LineageIndex()
        oid = Oid.skolem("PersonPage", (Oid("p1"),))
        with index.query_context(fingerprint="fp1", block="Q2",
                                 input="DATA"):
            index.record_node(oid, "PersonPage", oid.skolem_args)
        record = index.node(oid.name)
        assert record.fn == "PersonPage"
        assert record.block == "Q2"
        assert record.fingerprint == "fp1"
        assert record.input == "DATA"
        assert record.args == [{"kind": "oid", "value": "p1"}]

    def test_context_bearing_mint_upgrades_context_free(self):
        index = LineageIndex()
        oid = Oid.skolem("RootPage", ())
        index.record_node(oid, "RootPage", ())
        assert index.node(oid.name).block == ""
        with index.query_context(fingerprint="fp", block="(top)"):
            index.record_node(oid, "RootPage", ())
        assert index.node(oid.name).block == "(top)"
        # ...but an established context is never overwritten.
        with index.query_context(fingerprint="fp2", block="Q9"):
            index.record_node(oid, "RootPage", ())
        assert index.node(oid.name).block == "(top)"

    def test_dep_recording_skips_self_and_caps(self):
        index = LineageIndex()
        page = Oid.skolem("Index", ())
        index.record_dep(page, page)
        index.record_dep(page, Atom.string("not a node"))
        for i in range(MAX_DEPS_PER_NODE + 10):
            index.record_dep(page, Oid(f"n{i}"))
        deps = index.to_dict()["deps"][page.name]
        assert page.name not in deps
        assert len(deps) == MAX_DEPS_PER_NODE

    def test_source_membership(self):
        index = LineageIndex()
        graph = Graph("G")
        graph.add_node(Oid("a"))
        graph.add_node(Oid("b"))
        index.record_source(_source("feed"))
        index.record_source_nodes("feed", graph)
        assert index.source_of("a").source == "feed"
        assert index.source_of("missing") is None


class TestSkolemSerializationRoundTrip:
    def test_oid_json_round_trip_preserves_fn_and_args(self):
        """oid -> JSON -> oid keeps the Skolem identity the lineage
        index keys on, so lineage recorded before serialization still
        resolves nodes loaded after it."""
        inner = Oid.skolem("Person", (Atom.string("alice"),))
        page = Oid.skolem("PersonPage", (inner,))
        graph = Graph("G")
        graph.add_node(page)
        graph.add_edge(page, "name", Atom.string("alice"))

        loaded = graph_from_json(graph_to_json(graph))
        reloaded = next(n for n in loaded.nodes()
                        if isinstance(n, Oid) and n.skolem_fn)
        assert reloaded.skolem_fn == "PersonPage"
        assert reloaded.name == page.name
        (arg,) = reloaded.skolem_args
        assert isinstance(arg, Oid)
        assert arg.skolem_fn == "Person"
        assert arg.skolem_args == inner.skolem_args

    def test_lineage_resolves_reloaded_oid(self):
        index = LineageIndex()
        oid = Oid.skolem("YearPage", (Atom.int(1997),))
        with index.query_context(fingerprint="fp", block="Q1",
                                 input="BIB"):
            index.record_node(oid, "YearPage", oid.skolem_args)
        graph = Graph("G")
        graph.add_node(oid)
        reloaded = next(n for n in graph_from_json(
            graph_to_json(graph)).nodes() if isinstance(n, Oid))
        record = index.node(reloaded.name)
        assert record is not None and record.fn == "YearPage"
        assert index.why(reloaded.name)["derivation"]["block"] == "Q1"

    def test_content_hash_is_stable_and_sensitive(self):
        graph = Graph("G")
        graph.add_node(Oid("a"))
        graph.add_edge(Oid("a"), "x", Atom.int(1))
        twin = graph_from_json(graph_to_json(graph))
        assert graph_content_hash(graph) == graph_content_hash(twin)
        twin.add_edge(Oid("a"), "y", Atom.int(2))
        assert graph_content_hash(graph) != graph_content_hash(twin)


class TestIndexPersistence:
    def test_save_load_round_trip(self, tmp_path):
        index = LineageIndex()
        index.record_source(_source("feed"))
        oid = Oid.skolem("Page", (Oid("p"),))
        with index.query_context(fingerprint="fp", block="Q3",
                                 input="G"):
            index.record_node(oid, "Page", oid.skolem_args)
        index.record_dep(oid, Oid("other"))
        index.record_page("Page_p_.html", oid, "PageTmpl")
        graph = Graph("G")
        graph.add_node(Oid("p"))
        index.record_source_nodes("feed", graph)

        path = str(tmp_path / "lineage.json")
        index.save(path)
        fresh = LineageIndex()
        assert fresh.load(path)
        assert fresh.to_dict() == index.to_dict()
        doc = fresh.why("Page_p_.html")
        assert doc["template"] == "PageTmpl"
        assert doc["derivation"]["fn"] == "Page"
        assert [s["source"] for s in doc["sources"]] == ["feed"]

    def test_load_missing_or_corrupt_is_harmless(self, tmp_path):
        index = LineageIndex()
        assert not index.load(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert not index.load(str(bad))
        wrong_schema = tmp_path / "old.json"
        wrong_schema.write_text('{"schema": 99, "nodes": []}')
        assert index.load(str(wrong_schema))  # parses, merges nothing
        assert len(index) == 0

    def test_merge_keeps_fresh_records(self):
        index = LineageIndex()
        index.record_page("a.html", Oid("a"), "Fresh")
        index.merge_dict({
            "schema": 1, "sources": [], "nodes": [], "members": {},
            "deps": {},
            "pages": [{"url": "a.html", "oid": "a", "template": "Stale"},
                      {"url": "b.html", "oid": "b", "template": "Old"}],
        })
        pages = {p.url: p.template for p in index.page_records()}
        assert pages == {"a.html": "Fresh", "b.html": "Old"}


class TestBuildIntegration:
    def test_every_generated_page_resolves_full_chain(self, tmp_path):
        with lineage_recording() as lineage:
            site = _site()
            report = site.build_site(str(tmp_path / "www"))
            assert report.pages_rendered > 0
            pages = lineage.page_records()
            assert len(pages) == report.pages_rendered
            for page in pages:
                doc = lineage.why(page.url)
                assert doc, f"unresolvable page {page.url}"
                assert doc["template"], page.url
                assert doc["derivation"].get("fn"), page.url

    def test_website_why_shortcut(self, tmp_path):
        with lineage_recording():
            site = _site()
            site.build()
            url = site.generator().url_for(Oid.skolem("RootPage", ()))
            doc = site.why(url)
            assert doc and doc["derivation"]["fn"] == "RootPage"
        assert _site().why("anything") is None  # lineage disabled

    def test_lineage_persists_across_incremental_rebuild(self, tmp_path):
        out, cache = str(tmp_path / "www"), str(tmp_path / "cache")
        with lineage_recording():
            cold = _site().build_site(out, cache_dir=cache)
            assert cold.pages_rendered > 0
        path = lineage_path(cache)
        assert os.path.exists(path)

        # A fresh process (fresh index) rebuilding warm: nothing
        # renders, yet every page still resolves because the saved
        # index is merged into the new one.
        with lineage_recording() as lineage:
            warm = _site().build_site(out, cache_dir=cache)
            assert warm.pages_rendered == 0
            for page in lineage.page_records():
                doc = lineage.why(page.url)
                assert doc and doc["derivation"].get("fn"), page.url

        # And the file itself keeps a loadable, page-bearing index.
        offline = LineageIndex()
        assert offline.load(path)
        assert offline.page_records()


class TestFreshness:
    def _index_with_stale_page(self, now):
        index = LineageIndex()
        index.record_source(_source("fresh", age=10.0, now=now))
        index.record_source(_source("old", age=5000.0, now=now))
        fresh_page = Oid.skolem("FreshPage", (Oid("f1"),))
        old_page = Oid.skolem("OldPage", (Oid("o1"),))
        index.record_node(fresh_page, "FreshPage",
                          fresh_page.skolem_args)
        index.record_node(old_page, "OldPage", old_page.skolem_args)
        graph_f, graph_o = Graph("F"), Graph("O")
        graph_f.add_node(Oid("f1"))
        graph_o.add_node(Oid("o1"))
        index.record_source_nodes("fresh", graph_f)
        index.record_source_nodes("old", graph_o)
        index.record_page("fresh.html", fresh_page, "T")
        index.record_page("old.html", old_page, "T")
        return index

    def test_stale_is_newest_contributing_source(self):
        now = 10_000.0
        index = self._index_with_stale_page(now)
        report = freshness_report(index, max_age=600.0, now=now)
        assert report["stale_pages"] == ["old.html"]
        assert report["pages"] == 2
        ages = {s["source"]: s["age_seconds"]
                for s in report["sources"]}
        assert ages["fresh"] == pytest.approx(10.0)
        assert ages["old"] == pytest.approx(5000.0)

    def test_why_flags_stale_target(self):
        now = 10_000.0
        index = self._index_with_stale_page(now)
        assert index.why("old.html", now=now, max_age=600.0)["stale"]
        assert not index.why("fresh.html", now=now,
                             max_age=600.0)["stale"]

    def test_gauges_exported_with_flat_names(self):
        now = 10_000.0
        index = self._index_with_stale_page(now)
        metrics = MetricsRegistry()
        update_freshness_gauges(metrics, index, max_age=600.0, now=now)
        gauges = metrics.as_dict()["gauges"]
        assert gauges["lineage.sources"] == 2
        assert gauges["lineage.pages_stale_total"] == 1
        assert gauges["lineage.source_age_seconds.old"] == \
            pytest.approx(5000.0)

    def test_render_why_mentions_chain_and_staleness(self):
        now = 10_000.0
        index = self._index_with_stale_page(now)
        text = render_why(index.why("old.html", now=now, max_age=600.0))
        assert "old.html" in text
        assert "template T" in text
        assert "Skolem OldPage" in text
        assert "STALE" in text
        assert "old (loader" in text
